#!/usr/bin/env python3
"""Quickstart: tune a kernel lock from userspace in ~40 lines.

Builds a simulated 8-socket machine, registers one contended kernel
lock, measures it, then uses Concord to load the NUMA-awareness policy
(the paper's Figure 2b experiment) — all at "run time", no recompile.

Run:  python examples/quickstart.py
"""

from repro import Concord, Kernel, paper_machine
from repro.concord.policies import make_numa_policy
from repro.locks import ShflLock
from repro.sim import ops


def measure(kernel, site, threads=40, window_ns=2_000_000):
    """Spawn workers for a fixed window and count their operations."""
    rng = kernel.engine.rng
    start = kernel.now
    stop_at = start + 50_000 + window_ns

    def worker(task):
        task.stats["ops"] = 0
        while task.engine.now < stop_at:
            yield from site.acquire(task)
            yield ops.Delay(100)          # the critical section
            yield from site.release(task)
            task.stats["ops"] += 1
            yield ops.Delay(rng.randint(0, 400))

    order = kernel.topology.fill_order()
    tasks = [
        kernel.spawn(worker, cpu=order[i], at=start + rng.randint(0, 50_000))
        for i in range(threads)
    ]
    kernel.run(until=stop_at + 200_000)  # let the last holders drain
    return sum(t.stats.get("ops", 0) for t in tasks)


def main():
    # --- the "kernel": one ShflLock registered as a patchable call site
    kernel = Kernel(paper_machine(), seed=42)
    site = kernel.add_lock("demo.lock", ShflLock(kernel.engine, name="demo"))

    before = measure(kernel, site)
    print(f"FIFO ShflLock, 40 threads        : {before:>6} ops")

    # --- userspace loads the NUMA policy through Concord
    concord = Concord(kernel)
    loaded = concord.load_policy(make_numa_policy(lock_selector="demo.lock"))
    print(f"\npolicy {loaded.name!r} verified and attached:")
    for event in concord.events:
        print(f"  [{event.kind}] {event.message}")

    after = measure(kernel, site)
    print(f"\nNUMA policy via Concord          : {after:>6} ops "
          f"({after / before:.2f}x)")
    print(f"queue reorderings performed      : {site.core.impl.shuffle_moves}")


if __name__ == "__main__":
    main()
