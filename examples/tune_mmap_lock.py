#!/usr/bin/env python3
"""The paper's end-to-end workflow: profile, then specialize.

"Using Concord an application developer can choose and profile a single
contending lock ... After profiling, the developer can specialize the
locking primitive to further improve the application performance."

A fault-heavy application runs against the simulated mm subsystem:

1. profile ``mm.mmap_lock`` (and only it) under load;
2. the report shows a read-dominated, heavily contended lock;
3. install BRAVO over it at run time (Figure 2a's modification);
4. re-profile and compare.

Run:  python examples/tune_mmap_lock.py
"""

from repro import AddressSpace, Concord, Kernel, paper_machine
from repro.concord import LockProfiler
from repro.concord.policies import install_bravo
from repro.sim import ops

THREADS = 40
PAGES = 256
WINDOW_NS = 2_000_000


def spawn_fault_workers(kernel, mm, stop_at):
    rng = kernel.engine.rng

    def worker(task, base):
        task.stats["ops"] = 0
        first = True
        while task.engine.now < stop_at["t"]:
            if not first:
                yield from mm.mmap(task, base, PAGES)
            first = False
            for page in range(base, base + PAGES):
                if task.engine.now >= stop_at["t"]:
                    return
                yield from mm.page_fault(task, page)
                task.stats["ops"] += 1
                yield ops.Delay(rng.randint(60, 240))
            yield from mm.munmap(task, base)

    order = kernel.topology.fill_order()
    tasks = []
    for index in range(THREADS):
        base = (index + 1) * 1_000_000
        mm._vmas[base] = PAGES  # pre-mapped, like the benchmark's setup
        tasks.append(
            kernel.spawn(
                lambda t, b=base: worker(t, b),
                cpu=order[index],
                at=kernel.now + rng.randint(0, 50_000),
            )
        )
    return tasks


def run_window(kernel, mm, concord, label):
    stop = {"t": kernel.now + WINDOW_NS}
    session = LockProfiler(concord).start("mm.mmap_lock")
    tasks = spawn_fault_workers(kernel, mm, stop)
    kernel.run(until=stop["t"] + 300_000)
    report = session.stop()
    faults = sum(t.stats.get("ops", 0) for t in tasks)
    profile = report.by_name("mm.mmap_lock")
    print(f"--- {label}")
    print(f"  faults completed : {faults}")
    print(f"  lock acquisitions: {profile.acquired}")
    print(f"  contention ratio : {profile.contention_ratio:.1%}")
    print(f"  avg wait         : {profile.avg_wait_ns:.0f} ns")
    print(f"  avg hold         : {profile.avg_hold_ns:.0f} ns")
    return faults


def main():
    kernel = Kernel(paper_machine(), seed=7)
    mm = AddressSpace(kernel, name="mm")
    concord = Concord(kernel)

    baseline = run_window(kernel, mm, concord, "stock rw-semaphore (profiled)")

    print("\nThe profile shows a hot, read-mostly lock -> install BRAVO:")
    install_bravo(concord, "mm.mmap_lock")
    kernel.run(until=kernel.now + 100_000)  # drain the switch
    latency = concord.switch_latency("mm.mmap_lock")
    print(f"  livepatch engaged after {latency} ns of draining\n")

    tuned = run_window(kernel, mm, concord, "BRAVO installed at run time (profiled)")
    print(f"\nspeedup: {tuned / baseline:.2f}x — without rebooting the 'kernel'")


if __name__ == "__main__":
    main()
