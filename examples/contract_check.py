#!/usr/bin/env python3
"""Performance contracts (§3.2): reason about what policies guarantee.

A latency-critical service states its requirement — "my lock waits stay
under 30 µs" — as a contract.  The monitor relates it to Table 1's
hazard classes *statically* (which attached policies put the bound at
risk?) and checks it *dynamically* against a profiled run.

Run:  python examples/contract_check.py
"""

from repro import Concord, Kernel, paper_machine
from repro.concord import ContractMonitor, ContractSpec
from repro.concord.policies import make_numa_policy
from repro.locks import ShflLock
from repro.sim import ops


def run_workload(kernel, site, threads, window_ns=1_500_000):
    rng = kernel.engine.rng
    stop = kernel.now + window_ns

    def worker(task):
        while task.engine.now < stop:
            yield from site.acquire(task)
            yield ops.Delay(400)
            yield from site.release(task)
            yield ops.Delay(rng.randint(0, 400))

    order = kernel.topology.fill_order()
    for index in range(threads):
        kernel.spawn(worker, cpu=order[index], at=kernel.now + rng.randint(0, 10_000))
    kernel.run(until=stop + 200_000)


def main():
    kernel = Kernel(paper_machine(), seed=13)
    site = kernel.add_lock("svc.lock", ShflLock(kernel.engine, name="svc"))
    concord = Concord(kernel)
    concord.load_policy(make_numa_policy(lock_selector="svc.lock"))
    monitor = ContractMonitor(concord)

    contract = ContractSpec(
        name="svc-latency",
        lock_selector="svc.lock",
        max_avg_wait_ns=30_000,
    )

    print("static analysis (Table 1 hazards vs the contract's bounds):")
    for risk in monitor.static_check(contract):
        print(f"  {risk}")

    print("\nlight load (8 threads):")
    session = monitor.start(contract)
    run_workload(kernel, site, threads=8)
    print("  " + session.stop().format().replace("\n", "\n  "))

    print("\nheavy load (64 threads):")
    session = monitor.start(contract)
    run_workload(kernel, site, threads=64)
    print("  " + session.stop().format().replace("\n", "\n  "))
    print("\nThe violated contract tells the developer *which* lock broke the")
    print("budget and by how much — the input to the next tuning decision.")


if __name__ == "__main__":
    main()
