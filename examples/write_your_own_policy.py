#!/usr/bin/env python3
"""Author a custom lock policy, watch the verifier work, steer it live.

Demonstrates the full C3 authoring surface:

1. a policy the verifier REJECTS (unbounded loop — can't prove
   termination), with the verifier log the user gets back;
2. a policy the lock-safety layer REJECTS (map writes on the
   spin-path decision hook);
3. a correct policy: boost any waiter whose TID is in a userspace-
   controlled map — then flip the map at run time and watch the lock's
   behaviour follow.

Run:  python examples/write_your_own_policy.py
"""

from repro import Concord, Kernel, PolicySpec, paper_machine
from repro.bpf import HashMap
from repro.bpf.errors import BPFError
from repro.locks import ShflLock
from repro.sim import ops

BAD_LOOP = """
def policy(ctx):
    total = 0
    for i in range(1000):       # 1000 unrolled iterations: too big
        total += i
    return total
"""

BAD_WRITE = """
def policy(ctx):
    state.update(ctx.curr_tid, 1)   # map write on the spin path
    return 0
"""

GOOD_BOOST = """
def policy(ctx):
    if vip.contains(ctx.shuffler_tid):
        return 0
    return vip.contains(ctx.curr_tid)
"""


def try_load(concord, spec, label):
    print(f"--- loading {label!r}")
    try:
        concord.load_policy(spec)
        print("    ACCEPTED")
    except BPFError as exc:
        print(f"    REJECTED: {exc}")
        event = concord.events[-1]
        print(f"    (user notified via event log: [{event.kind}] {event.message})")
    print()


def measure_waits(kernel, site, vip_map=None, seconds_ns=1_200_000):
    """Spawn 20 workers; the first two are the latency-critical ones.
    If ``vip_map`` is given, their TIDs are written into it (this is the
    userspace control plane — no policy reload involved)."""
    rng = kernel.engine.rng
    waits = {"vip": [], "other": []}
    stop = kernel.now + seconds_ns

    def worker(task, label):
        while task.engine.now < stop:
            start = task.engine.now
            yield from site.acquire(task)
            waits[label].append(task.engine.now - start)
            yield ops.Delay(200)
            yield from site.release(task)
            yield ops.Delay(rng.randint(0, 300))

    order = kernel.topology.fill_order()
    for index in range(20):
        label = "vip" if index < 2 else "other"
        task = kernel.spawn(
            lambda t, lb=label: worker(t, lb),
            cpu=order[index],
            at=kernel.now + rng.randint(0, 10_000),
        )
        if vip_map is not None and label == "vip":
            vip_map[task.tid] = 1
    kernel.run(until=stop + 200_000)
    avg = lambda xs: sum(xs) / len(xs) if xs else 0.0
    return avg(waits["vip"]), avg(waits["other"])


def main():
    kernel = Kernel(paper_machine(), seed=3)
    site = kernel.add_lock("app.lock", ShflLock(kernel.engine, name="app"))
    concord = Concord(kernel)
    state = HashMap("state")
    vip = HashMap("vip")

    try_load(
        concord,
        PolicySpec("too-long", "cmp_node", BAD_LOOP, lock_selector="app.lock"),
        "unbounded-ish loop",
    )
    try_load(
        concord,
        PolicySpec("writer", "cmp_node", BAD_WRITE, maps={"state": state},
                   lock_selector="app.lock"),
        "map write on a decision hook",
    )
    try_load(
        concord,
        PolicySpec("vip-boost", "cmp_node", GOOD_BOOST, maps={"vip": vip},
                   lock_selector="app.lock"),
        "VIP boosting",
    )

    # Userspace steers the live policy through the map: first nobody is
    # a VIP, then the two critical workers are.
    print("map empty (no VIPs):")
    vip_wait, other_wait = measure_waits(kernel, site)
    print(f"  avg wait  critical: {vip_wait:>8.0f} ns   others: {other_wait:>8.0f} ns\n")

    print("userspace writes the critical TIDs into 'vip' (no reload needed):")
    vip_wait, other_wait = measure_waits(kernel, site, vip_map=vip)
    print(f"  avg wait  critical: {vip_wait:>8.0f} ns   others: {other_wait:>8.0f} ns")
    print(f"  -> boosted waiters wait {other_wait / max(vip_wait, 1):.1f}x less")


if __name__ == "__main__":
    main()
