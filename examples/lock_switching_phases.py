#!/usr/bin/env python3
"""Phase-aware lock switching (§3.1.1, scenario i).

An application alternates between a read-heavy phase (enumerating a
shared structure) and a write-heavy phase (rebuilding it).  No single
rw-lock design wins both:

* the per-CPU distributed lock is unbeatable for readers but makes every
  writer scan all per-CPU counters;
* the neutral rw-semaphore handles writers fine but serializes reader
  entry on one cache line.

With C3 the application switches the *kernel's* lock to match its phase,
live, through Concord.

Run:  python examples/lock_switching_phases.py
"""

from repro import Concord, Kernel, paper_machine
from repro.locks import PerCPURWLock, RWSemaphore
from repro.sim import ops

THREADS = 32
PHASE_NS = 1_500_000


def run_phase(kernel, site, read_ratio, label):
    rng = kernel.engine.rng
    stop = kernel.now + PHASE_NS
    done = {"ops": 0}

    def worker(task):
        while task.engine.now < stop:
            if rng.random() < read_ratio:
                yield from site.read_acquire(task)
                yield ops.Delay(350)
                yield from site.read_release(task)
            else:
                yield from site.write_acquire(task)
                yield ops.Delay(350)
                yield from site.write_release(task)
            done["ops"] += 1
            yield ops.Delay(rng.randint(0, 200))

    order = kernel.topology.fill_order()
    for index in range(THREADS):
        kernel.spawn(worker, cpu=order[index], at=kernel.now + rng.randint(0, 10_000))
    kernel.run(until=stop + 150_000)
    impl = type(site.core.impl).__name__
    print(f"  {label:<34} {done['ops']:>7} ops   [{impl}]")
    return done["ops"]


def main():
    kernel = Kernel(paper_machine(), seed=5)
    site = kernel.add_rwlock("app.data_lock", RWSemaphore(kernel.engine, name="sem"))
    concord = Concord(kernel)

    print("phase 1: 100% readers")
    slow = run_phase(kernel, site, 1.0, "neutral rwsem (wrong lock)")

    concord.switch_lock(
        "app.data_lock", lambda old: PerCPURWLock(kernel.engine, name="pcpu")
    )
    kernel.run(until=kernel.now + 50_000)
    print(f"  -> switched in {concord.switch_latency('app.data_lock')} ns")
    fast = run_phase(kernel, site, 1.0, "per-CPU rwlock (switched in)")
    print(f"  read-phase speedup: {fast / slow:.2f}x\n")

    print("phase 2: 40% writers — switch back before the rebuild")
    stuck = run_phase(kernel, site, 0.6, "per-CPU rwlock (now wrong)")
    concord.switch_lock(
        "app.data_lock", lambda old: RWSemaphore(kernel.engine, name="sem2")
    )
    kernel.run(until=kernel.now + 50_000)
    print(f"  -> switched in {concord.switch_latency('app.data_lock')} ns")
    good = run_phase(kernel, site, 0.6, "neutral rwsem (switched back)")
    print(f"  write-phase speedup: {good / stuck:.2f}x")


if __name__ == "__main__":
    main()
