"""Trace generation: schedule × arrivals × tenants → a replayable trace.

A :class:`Trace` is the unit of reproducibility for the load layer: an
immutable, ordered list of :class:`TraceEvent`\\ s plus the metadata
that produced it.  :meth:`Trace.to_jsonl` is canonical (sorted keys,
fixed separators), so "same seed ⇒ byte-identical trace" is a testable
equality on strings, not an approximate comparison of floats.

:class:`TraceGenerator` drives one seeded ``Random`` through the phases
in order — arrival draws, then tenant/op draws per event — so the whole
trace is a pure function of (schedule, arrivals, tenants, seed).
"""

from __future__ import annotations

import json
from random import Random
from typing import Dict, Iterator, List, NamedTuple, Sequence, Tuple

from .arrivals import ArrivalProcess
from .phases import PhaseSchedule
from .tenants import TenantSet

__all__ = ["TraceEvent", "Trace", "TraceGenerator"]


class TraceEvent(NamedTuple):
    """One arriving request."""

    seq: int
    time_ns: int
    phase: str
    tenant: str
    op: str


class Trace:
    """An immutable arrival trace plus its provenance."""

    def __init__(
        self,
        events: Sequence[TraceEvent],
        seed: int,
        total_ns: int,
        description: str = "",
    ) -> None:
        self.events: Tuple[TraceEvent, ...] = tuple(events)
        self.seed = seed
        self.total_ns = total_ns
        self.description = description

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self.events)

    # -- queries -------------------------------------------------------
    def phase_names(self) -> List[str]:
        """Phase names in order of first appearance."""
        seen: List[str] = []
        for ev in self.events:
            if ev.phase not in seen:
                seen.append(ev.phase)
        return seen

    def events_in(self, phase: str) -> List[TraceEvent]:
        return [ev for ev in self.events if ev.phase == phase]

    def counts_by_phase(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for ev in self.events:
            out[ev.phase] = out.get(ev.phase, 0) + 1
        return out

    def counts_by_tenant(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for ev in self.events:
            out[ev.tenant] = out.get(ev.tenant, 0) + 1
        return out

    # -- canonical serialization --------------------------------------
    def to_jsonl(self) -> str:
        """Canonical JSONL: header line, then one line per event.

        Key order, separators, and integer times are all fixed, so two
        traces are byte-identical iff they are the same trace.
        """
        header = json.dumps(
            {
                "description": self.description,
                "events": len(self.events),
                "seed": self.seed,
                "total_ns": self.total_ns,
            },
            sort_keys=True,
            separators=(",", ":"),
        )
        lines = [header]
        for ev in self.events:
            lines.append(
                json.dumps(
                    {
                        "op": ev.op,
                        "phase": ev.phase,
                        "seq": ev.seq,
                        "tenant": ev.tenant,
                        "time_ns": ev.time_ns,
                    },
                    sort_keys=True,
                    separators=(",", ":"),
                )
            )
        return "\n".join(lines) + "\n"

    def describe(self) -> str:
        by_phase = self.counts_by_phase()
        phases = ", ".join(f"{name}={n}" for name, n in by_phase.items())
        return (
            f"trace(seed={self.seed}, {len(self.events)} events over "
            f"{self.total_ns / 1e6:.2f}ms: {phases})"
        )


class TraceGenerator:
    """Deterministic trace factory: one RNG, phases in order."""

    def __init__(
        self,
        schedule: PhaseSchedule,
        arrivals: ArrivalProcess,
        tenants: TenantSet,
        seed: int = 0,
    ) -> None:
        self.schedule = schedule
        self.arrivals = arrivals
        self.tenants = tenants
        self.seed = seed

    def generate(self) -> Trace:
        rng = Random(self.seed)
        events: List[TraceEvent] = []
        seq = 0
        for start, phase in self.schedule.boundaries():
            end = start + phase.duration_ns
            for t in self.arrivals.times(rng, start, end, phase.rate_scale):
                tenant, op = self.tenants.assign(rng)
                events.append(TraceEvent(seq, t, phase.name, tenant, op))
                seq += 1
        description = f"{self.arrivals.describe()} | {self.schedule.describe()}"
        return Trace(events, self.seed, self.schedule.total_ns, description)
