"""Composable load-phase schedules.

A :class:`PhaseSchedule` is an ordered list of :class:`Phase` segments,
each scaling the base arrival rate for a fixed span of simulated time.
Builders cover the three shapes every capacity story needs:

* :meth:`PhaseSchedule.steady` — constant load (the control run);
* :meth:`PhaseSchedule.diurnal` — a stepped ramp up to a peak and back
  down, the day/night cycle of a user-facing service;
* :meth:`PhaseSchedule.burst` — steady load with one spike in the
  middle, the shape that makes a canary verdict load-dependent: the
  same policy that clears guards in the pre-burst window breaches them
  when the spike lands inside the bake window.

Phases carry no randomness themselves — the arrival process draws from
the generator's seeded RNG — so a schedule is a pure description and
two traces over the same schedule differ only via the seed.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterator, List, Sequence, Tuple

__all__ = ["Phase", "PhaseSchedule"]


@dataclass(frozen=True)
class Phase:
    """One load segment: ``rate_scale`` × base rate for ``duration_ns``."""

    name: str
    duration_ns: int
    rate_scale: float = 1.0

    def __post_init__(self) -> None:
        if self.duration_ns <= 0:
            raise ValueError(f"phase {self.name!r}: duration must be positive")
        if self.rate_scale < 0:
            raise ValueError(f"phase {self.name!r}: rate_scale must be >= 0")


class PhaseSchedule:
    """An ordered sequence of phases covering ``[0, total_ns)``."""

    def __init__(self, phases: Sequence[Phase]) -> None:
        if not phases:
            raise ValueError("a schedule needs at least one phase")
        self.phases: Tuple[Phase, ...] = tuple(phases)
        self.total_ns = sum(p.duration_ns for p in self.phases)

    # -- queries -------------------------------------------------------
    def boundaries(self) -> List[Tuple[int, Phase]]:
        """``(start_offset_ns, phase)`` for each phase, in order."""
        out, offset = [], 0
        for phase in self.phases:
            out.append((offset, phase))
            offset += phase.duration_ns
        return out

    def phase_at(self, offset_ns: int) -> Phase:
        """The phase covering ``offset_ns`` (clamped to the last phase)."""
        if offset_ns < 0:
            raise ValueError("offset must be >= 0")
        for start, phase in self.boundaries():
            if offset_ns < start + phase.duration_ns:
                return phase
        return self.phases[-1]

    def __len__(self) -> int:
        return len(self.phases)

    def __iter__(self) -> Iterator[Phase]:
        return iter(self.phases)

    def describe(self) -> str:
        parts = [
            f"{p.name}[{p.duration_ns / 1e6:.2f}ms x{p.rate_scale:g}]"
            for p in self.phases
        ]
        return " -> ".join(parts)

    # -- builders ------------------------------------------------------
    @classmethod
    def steady(cls, duration_ns: int, rate_scale: float = 1.0) -> "PhaseSchedule":
        """One constant-rate phase — the control run."""
        return cls([Phase("steady", duration_ns, rate_scale)])

    @classmethod
    def burst(
        cls,
        pre_ns: int,
        burst_ns: int,
        post_ns: int,
        burst_scale: float = 4.0,
        base_scale: float = 1.0,
    ) -> "PhaseSchedule":
        """Steady load with one spike: pre → burst → post."""
        return cls(
            [
                Phase("pre", pre_ns, base_scale),
                Phase("burst", burst_ns, burst_scale),
                Phase("post", post_ns, base_scale),
            ]
        )

    @classmethod
    def diurnal(
        cls,
        period_ns: int,
        steps: int = 8,
        trough_scale: float = 0.25,
        peak_scale: float = 1.0,
    ) -> "PhaseSchedule":
        """A stepped half-sine day cycle: trough → peak → trough.

        ``steps`` equal-duration segments whose scales follow a sine arc,
        so the first and last steps sit near ``trough_scale`` and the
        middle steps near ``peak_scale``.
        """
        if steps < 2:
            raise ValueError("diurnal schedule needs at least 2 steps")
        if peak_scale < trough_scale:
            raise ValueError("peak_scale must be >= trough_scale")
        step_ns = period_ns // steps
        if step_ns <= 0:
            raise ValueError("period too short for the requested steps")
        phases = []
        for i in range(steps):
            # Midpoint of step i mapped onto [0, pi]: sin gives the arc.
            frac = math.sin(math.pi * (i + 0.5) / steps)
            scale = trough_scale + (peak_scale - trough_scale) * frac
            phases.append(Phase(f"diurnal-{i}", step_ns, round(scale, 6)))
        return cls(phases)
