"""Trace replay: feed a generated trace into live kernels.

:class:`TraceRunner` turns :class:`~repro.traffic.trace.TraceEvent`\\ s
into short-lived simulated tasks on a target kernel.  Each event spawns
one request task at its arrival instant (round-robin over CPUs by event
sequence, so replay is deterministic): the task acquires the lock its
op is bound to, holds it for the binding's critical-section time, and
releases.  Because requests are spawned *open-loop at trace time*, a
burst phase keeps arriving while the lock queue backs up — the
queueing behaviour a rollout guard should be judged against.

Per-(kernel, phase) latency stats are recorded at the Python level
(zero simulated cost): arrivals, completions, and acquire-wait samples,
with p50/p99 summaries.  :meth:`TraceRunner.drive_fleet` installs one
trace into every active member of a :class:`~repro.fleet.manager.
FleetManager`, so a subsequent `FleetCoordinator.execute` bakes each
wave against load that shifts mid-rollout.

Fault site ``traffic.phase.shift``: consulted once per phase at install
time.  An injected stall of N ns moves that phase's arrivals N ns
*earlier* — the chaos story where the burst lands mid-bake instead of
where the plan expected it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..faults.registry import SITE_TRAFFIC_PHASE_SHIFT, fault_point
from ..kernel.core import Kernel
from ..sim.ops import Delay
from .trace import Trace

__all__ = ["LockBinding", "PhaseStats", "TraceRunner"]


@dataclass(frozen=True)
class LockBinding:
    """How one op key maps onto a kernel lock."""

    lock: str            #: registry name of the call site on the target kernel
    cs_ns: int = 400     #: critical-section hold time per request
    read: bool = False   #: use the read side (RW call sites only)
    #: Per-active-waiter critical-section inflation (the Malthusian
    #: collapse physics: every *spinning* contender makes the hold
    #: itself slower through cache-line bouncing).  0 — the default,
    #: which keeps existing trace replays byte-identical — models a
    #: coherence-insensitive section.  Waiters a culling impl has
    #: parked (``parked_count``) are descheduled and charge nothing,
    #: which is what lets a cull restore throughput under burst load.
    waiter_penalty_ns: int = 0


def _quantile(samples: List[int], q: float) -> int:
    if not samples:
        return 0
    ordered = sorted(samples)
    idx = min(len(ordered) - 1, int(q * len(ordered)))
    return ordered[idx]


@dataclass
class PhaseStats:
    """Replay outcomes for one (kernel, phase) pair."""

    arrivals: int = 0
    completions: int = 0
    waits: List[int] = field(default_factory=list)

    def wait_p50(self) -> int:
        return _quantile(self.waits, 0.50)

    def wait_p99(self) -> int:
        return _quantile(self.waits, 0.99)


class TraceRunner:
    """Replays one trace into one or more kernels."""

    def __init__(self, trace: Trace, bindings: Dict[str, LockBinding]) -> None:
        missing = [ev.op for ev in trace if ev.op not in bindings]
        if missing:
            raise KeyError(f"trace ops with no binding: {sorted(set(missing))}")
        self.trace = trace
        self.bindings = bindings
        #: (kernel_tag, phase_name) -> PhaseStats
        self.stats: Dict[Tuple[str, str], PhaseStats] = {}
        self._installed: List[str] = []
        #: per-site in-flight request counts (id(site) -> count), the
        #: crowd the waiter-penalty cost model charges against.
        self._crowd: Dict[int, int] = {}

    # -- installation --------------------------------------------------
    def _phase_shifts(self, tag: str) -> Dict[str, int]:
        """Consult the phase-shift fault site once per phase."""
        shifts: Dict[str, int] = {}
        for phase in self.trace.phase_names():
            shifts[phase] = fault_point(
                SITE_TRAFFIC_PHASE_SHIFT, phase=phase, kernel=tag
            )
        return shifts

    def install(self, kernel: Kernel, tag: str = "kernel") -> int:
        """Spawn one request task per trace event on ``kernel``.

        Arrivals are offset from the kernel's current time, so a trace
        can be installed mid-run.  Returns the number of events
        installed.
        """
        base = kernel.now
        nr_cpus = kernel.topology.nr_cpus
        shifts = self._phase_shifts(tag)
        self._installed.append(tag)
        for event in self.trace:
            binding = self.bindings[event.op]
            site = kernel.locks.get(binding.lock)
            key = (tag, event.phase)
            stats = self.stats.get(key)
            if stats is None:
                stats = self.stats[key] = PhaseStats()
            stats.arrivals += 1
            at = base + max(0, event.time_ns - shifts[event.phase])
            kernel.spawn(
                lambda task, s=site, b=binding, st=stats: self._request(
                    task, s, b, st
                ),
                cpu=event.seq % nr_cpus,
                name=f"{tag}-req{event.seq}",
                at=at,
            )
        return len(self.trace)

    def _request(self, task, site, binding: LockBinding, stats: PhaseStats):
        arrived = task.engine.now
        crowd_key = id(site)
        self._crowd[crowd_key] = self._crowd.get(crowd_key, 0) + 1
        if binding.read:
            yield from site.read_acquire(task)
        else:
            yield from site.acquire(task)
        stats.waits.append(task.engine.now - arrived)
        cs_ns = binding.cs_ns
        if binding.waiter_penalty_ns:
            # Active crowd = everyone in this site's request path minus
            # the holder minus whoever the impl has parked (descheduled
            # waiters bounce no cache lines).
            core = getattr(site, "core", None)
            impl = core.impl if core is not None else site
            parked = getattr(impl, "parked_count", 0)
            crowd = max(0, self._crowd[crowd_key] - 1 - parked)
            cs_ns += binding.waiter_penalty_ns * crowd
        yield Delay(cs_ns)
        if binding.read:
            yield from site.read_release(task)
        else:
            yield from site.release(task)
        self._crowd[crowd_key] -= 1
        stats.completions += 1

    def drive_fleet(self, fleet) -> int:
        """Install the trace into every active fleet member."""
        total = 0
        for member in fleet.active_members():
            total += self.install(member.kernel, tag=member.name)
        return total

    # -- reporting -----------------------------------------------------
    def phase_stats(self, phase: str, tag: Optional[str] = None) -> PhaseStats:
        """Aggregate stats for one phase (one kernel, or all)."""
        merged = PhaseStats()
        for (t, p), stats in self.stats.items():
            if p != phase or (tag is not None and t != tag):
                continue
            merged.arrivals += stats.arrivals
            merged.completions += stats.completions
            merged.waits.extend(stats.waits)
        return merged

    def report(self) -> str:
        """Human-readable per-phase replay table (aggregated over kernels)."""
        lines = [
            f"{'phase':<12} {'arrivals':>9} {'completed':>10} "
            f"{'wait p50':>10} {'wait p99':>10}"
        ]
        for phase in self.trace.phase_names():
            stats = self.phase_stats(phase)
            lines.append(
                f"{phase:<12} {stats.arrivals:>9} {stats.completions:>10} "
                f"{stats.wait_p50():>8}ns {stats.wait_p99():>8}ns"
            )
        return "\n".join(lines)
