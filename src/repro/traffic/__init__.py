"""Trace-driven load generation for fleet rollouts.

The paper's pitch is tuning kernel concurrency *to the workload*; this
package supplies the workloads-with-structure that make such tuning
observable.  Pipeline::

    schedule  = PhaseSchedule.burst(pre, burst, post, burst_scale=8)
    arrivals  = PoissonProcess(rate_per_ms=200)
    tenants   = TenantSet.single([("shard0", 3), ("shard1", 1)])
    trace     = TraceGenerator(schedule, arrivals, tenants, seed=7).generate()
    runner    = TraceRunner(trace, {"shard0": LockBinding("svc.shard0.lock"),
                                    "shard1": LockBinding("svc.shard1.lock")})
    runner.drive_fleet(fleet)          # load now arrives mid-rollout
    coordinator.execute(plan, ...)     # guards judged under that load

Everything downstream of the seed is deterministic: the trace is a pure
function of (schedule, arrivals, tenants, seed) and serializes to
canonical JSONL, so reproducibility is byte-equality.
"""

from .arrivals import ArrivalProcess, ClosedLoopProcess, PoissonProcess
from .phases import Phase, PhaseSchedule
from .runner import LockBinding, PhaseStats, TraceRunner
from .tenants import Tenant, TenantSet
from .trace import Trace, TraceEvent, TraceGenerator

__all__ = [
    "ArrivalProcess",
    "ClosedLoopProcess",
    "PoissonProcess",
    "Phase",
    "PhaseSchedule",
    "LockBinding",
    "PhaseStats",
    "TraceRunner",
    "Tenant",
    "TenantSet",
    "Trace",
    "TraceEvent",
    "TraceGenerator",
]
