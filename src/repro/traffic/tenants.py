"""Per-tenant request mixes.

A :class:`Tenant` is a named traffic source with a relative weight (its
share of arrivals) and an op mix (which lock workload each of its
requests exercises, by op key).  A :class:`TenantSet` assigns every
arrival to a tenant and an op with two weighted draws from the trace
generator's RNG — deterministic given the seed, and recorded in the
trace so per-tenant attribution survives into guard evidence.
"""

from __future__ import annotations

from random import Random
from typing import Sequence, Tuple

__all__ = ["Tenant", "TenantSet"]


def _weighted(rng: Random, pairs: Sequence[Tuple[str, float]]) -> str:
    """One weighted draw; cumulative scan keeps draw count fixed at 1."""
    total = sum(w for _, w in pairs)
    roll = rng.random() * total
    acc = 0.0
    for name, weight in pairs:
        acc += weight
        if roll < acc:
            return name
    return pairs[-1][0]


class Tenant:
    """One traffic source: a share of arrivals and an op mix."""

    def __init__(
        self, name: str, weight: float, mix: Sequence[Tuple[str, float]]
    ) -> None:
        if weight <= 0:
            raise ValueError(f"tenant {name!r}: weight must be positive")
        if not mix or any(w <= 0 for _, w in mix):
            raise ValueError(f"tenant {name!r}: mix needs positive-weight ops")
        self.name = name
        self.weight = weight
        self.mix: Tuple[Tuple[str, float], ...] = tuple(mix)

    def draw_op(self, rng: Random) -> str:
        return _weighted(rng, self.mix)

    def __repr__(self) -> str:
        ops = "/".join(op for op, _ in self.mix)
        return f"Tenant({self.name}, w={self.weight:g}, {ops})"


class TenantSet:
    """A weighted population of tenants."""

    def __init__(self, tenants: Sequence[Tenant]) -> None:
        if not tenants:
            raise ValueError("a tenant set needs at least one tenant")
        names = [t.name for t in tenants]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate tenant names: {names}")
        self.tenants: Tuple[Tenant, ...] = tuple(tenants)
        self._weights = tuple((t.name, t.weight) for t in self.tenants)
        self._by_name = {t.name: t for t in self.tenants}

    def assign(self, rng: Random) -> Tuple[str, str]:
        """Draw ``(tenant_name, op_key)`` for one arrival."""
        tenant = self._by_name[_weighted(rng, self._weights)]
        return tenant.name, tenant.draw_op(rng)

    def op_keys(self) -> Tuple[str, ...]:
        """Every op key any tenant can emit (sorted, deduplicated)."""
        keys = {op for t in self.tenants for op, _ in t.mix}
        return tuple(sorted(keys))

    def __len__(self) -> int:
        return len(self.tenants)

    def __iter__(self):
        return iter(self.tenants)

    @classmethod
    def single(cls, ops: Sequence[Tuple[str, float]], name: str = "default") -> "TenantSet":
        """Convenience: one tenant owning the whole mix."""
        return cls([Tenant(name, 1.0, ops)])
