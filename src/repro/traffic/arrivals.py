"""Seeded arrival processes: when requests hit the system.

Two standard shapes from the load-testing literature:

* :class:`PoissonProcess` — **open loop**: arrivals are memoryless and
  independent of service times, the model for a large population of
  uncoordinated users.  Open-loop load keeps arriving while the system
  chokes, which is what exposes queueing collapse.
* :class:`ClosedLoopProcess` — **closed loop**: a fixed client pool,
  each client thinking between requests.  Load self-limits when the
  system slows down, the model for a connection-pooled upstream.

Both draw every random variate from the ``Random`` handed in by the
trace generator, in a fixed order — same seed, same schedule, same
process ⇒ byte-identical arrival times.  All times are integer ns.
"""

from __future__ import annotations

import heapq
from random import Random
from typing import List

__all__ = ["ArrivalProcess", "PoissonProcess", "ClosedLoopProcess"]


class ArrivalProcess:
    """Base class: produce sorted arrival times inside one phase window."""

    kind = "arrival"

    def times(
        self, rng: Random, start_ns: int, end_ns: int, rate_scale: float = 1.0
    ) -> List[int]:
        raise NotImplementedError

    def describe(self) -> str:
        return self.kind


class PoissonProcess(ArrivalProcess):
    """Open-loop Poisson arrivals at ``rate_per_ms`` (scaled per phase)."""

    kind = "poisson"

    def __init__(self, rate_per_ms: float) -> None:
        if rate_per_ms <= 0:
            raise ValueError("rate_per_ms must be positive")
        self.rate_per_ms = rate_per_ms

    def times(
        self, rng: Random, start_ns: int, end_ns: int, rate_scale: float = 1.0
    ) -> List[int]:
        if rate_scale <= 0 or end_ns <= start_ns:
            return []
        rate_per_ns = self.rate_per_ms * rate_scale / 1e6
        out: List[int] = []
        t = float(start_ns)
        while True:
            t += rng.expovariate(rate_per_ns)
            if t >= end_ns:
                return out
            out.append(int(t))

    def describe(self) -> str:
        return f"poisson({self.rate_per_ms:g}/ms)"


class ClosedLoopProcess(ArrivalProcess):
    """Closed-loop think-time arrivals from a fixed client pool.

    Each of ``clients`` issues a request, waits a *nominal* service time
    ``service_ns``, thinks for ``Uniform(0.5, 1.5) × think_ns``, and
    repeats.  The trace records intended arrival instants; the actual
    completion time on the target kernel may differ — that gap is the
    open/closed distinction collapsing, and it is visible in the
    runner's per-phase latency stats rather than hidden in the trace.

    ``rate_scale`` divides the think time (busier phase ⇒ shorter
    thinks), so one client pool follows a diurnal schedule naturally.
    Client chains are merged through a heap keyed on (time, client), so
    draw order — and therefore the byte stream — is deterministic.
    """

    kind = "closed-loop"

    def __init__(self, clients: int, think_ns: int, service_ns: int = 1_000) -> None:
        if clients <= 0:
            raise ValueError("clients must be positive")
        if think_ns <= 0:
            raise ValueError("think_ns must be positive")
        self.clients = clients
        self.think_ns = think_ns
        self.service_ns = service_ns

    def times(
        self, rng: Random, start_ns: int, end_ns: int, rate_scale: float = 1.0
    ) -> List[int]:
        if rate_scale <= 0 or end_ns <= start_ns:
            return []
        think = self.think_ns / rate_scale
        # Stagger first arrivals over one think interval.
        heap = [
            (start_ns + int(rng.uniform(0, think)), client)
            for client in range(self.clients)
        ]
        heapq.heapify(heap)
        out: List[int] = []
        while heap:
            t, client = heapq.heappop(heap)
            if t >= end_ns:
                continue
            out.append(int(t))
            nxt = t + self.service_ns + int(rng.uniform(0.5 * think, 1.5 * think))
            heapq.heappush(heap, (nxt, client))
        return out

    def describe(self) -> str:
        return f"closed-loop({self.clients} clients, think={self.think_ns}ns)"
