"""Memory-management subsystem: the page-fault path under ``mmap_lock``.

The paper's Figure 2(a) workload (will-it-scale ``page_fault2``) stresses
``mmap_sem`` readers: every minor fault takes the mm's rw-semaphore for
read, walks the VMA tree, allocates and zeroes a page, installs the PTE,
and drops the lock.  ``mmap``/``munmap`` take it for write.

Costs are calibrated to public numbers for an anonymous minor fault
(~1–2 µs of work outside the lock-acquisition itself, dominated by page
zeroing).
"""

from __future__ import annotations

from typing import Dict, Iterator, Set, Tuple

from ..locks.mcs import MCSLock
from ..locks.rwsem import RWSemaphore
from ..sim.errors import SimError
from ..sim.ops import Delay
from ..sim.task import Task
from .core import Kernel

__all__ = ["AddressSpace", "PAGE_SIZE", "FaultError", "PAGEVEC_SIZE"]

PAGE_SIZE = 4096

# Fault-path work (ns), outside lock acquisition costs.
_VMA_WALK_NS = 250
_PAGE_ALLOC_NS = 350
_PAGE_ZERO_NS = 900
_PTE_INSTALL_NS = 150
_MMAP_WORK_NS = 1200
_MUNMAP_PER_PAGE_NS = 25

#: Faults batched per LRU drain (Linux's pagevec size).
PAGEVEC_SIZE = 15
#: Critical section of one pagevec drain under the LRU lock.
_LRU_DRAIN_NS = 700


class FaultError(SimError):
    """Access to an unmapped address (SIGSEGV equivalent)."""


class AddressSpace:
    """One process address space (``struct mm_struct``).

    The mmap lock is registered with the kernel as a patchable rw call
    site named ``{name}.mmap_lock`` so Concord can retarget it (e.g.
    install BRAVO at run time, as in Figure 2a).
    """

    def __init__(self, kernel: Kernel, name: str = "mm") -> None:
        self.kernel = kernel
        self.name = name
        self.mmap_lock = kernel.add_rwlock(
            f"{name}.mmap_lock", RWSemaphore(kernel.engine, name=f"{name}.rwsem")
        )
        #: The page allocator / LRU side of the fault path: a global
        #: spinlock taken once per pagevec drain.  This is the secondary
        #: bottleneck that caps fault scalability even with a perfectly
        #: scalable mmap_lock (as on real kernels).
        self.lru_lock = MCSLock(kernel.engine, name=f"{name}.lru_lock")
        #: vma ranges: start page -> page count
        self._vmas: Dict[int, int] = {}
        #: populated pages
        self._present: Set[int] = set()
        #: per-task pagevec fill levels
        self._pagevec: Dict[int, int] = {}
        self.faults = 0
        self.mmaps = 0
        self.munmaps = 0
        self.lru_drains = 0

    # ------------------------------------------------------------------
    def mmap(self, task: Task, start_page: int, nr_pages: int) -> Iterator:
        """Map an anonymous region (takes mmap_lock for write)."""
        yield from self.mmap_lock.write_acquire(task)
        yield Delay(_MMAP_WORK_NS)
        self._vmas[start_page] = nr_pages
        self.mmaps += 1
        yield from self.mmap_lock.write_release(task)

    def munmap(self, task: Task, start_page: int) -> Iterator:
        """Unmap a region, tearing down its pages (write lock)."""
        yield from self.mmap_lock.write_acquire(task)
        nr_pages = self._vmas.pop(start_page, 0)
        torn = 0
        for page in range(start_page, start_page + nr_pages):
            if page in self._present:
                self._present.discard(page)
                torn += 1
        yield Delay(_MMAP_WORK_NS + torn * _MUNMAP_PER_PAGE_NS)
        self.munmaps += 1
        yield from self.mmap_lock.write_release(task)

    def page_fault(self, task: Task, page: int) -> Iterator:
        """Handle a minor fault on ``page`` (read lock, like the kernel).

        Raises :class:`FaultError` for an unmapped address.
        """
        yield from self.mmap_lock.read_acquire(task)
        yield Delay(_VMA_WALK_NS)
        if not self._covers(page):
            yield from self.mmap_lock.read_release(task)
            raise FaultError(f"{self.name}: page {page} not mapped")
        if page not in self._present:
            yield Delay(_PAGE_ALLOC_NS + _PAGE_ZERO_NS + _PTE_INSTALL_NS)
            self._present.add(page)
            self.faults += 1
            filled = self._pagevec.get(task.tid, 0) + 1
            if filled >= PAGEVEC_SIZE:
                self._pagevec[task.tid] = 0
                yield from self._drain_pagevec(task)
            else:
                self._pagevec[task.tid] = filled
        yield from self.mmap_lock.read_release(task)

    def touch(self, task: Task, page: int) -> Iterator:
        """Write one byte to a page: fault if not yet populated."""
        if page in self._present:
            yield Delay(4)  # TLB/L1 hit
            return
        yield from self.page_fault(task, page)

    def _drain_pagevec(self, task: Task) -> Iterator:
        """Push a full pagevec onto the LRU under the global LRU lock."""
        yield from self.lru_lock.acquire(task)
        yield Delay(_LRU_DRAIN_NS)
        self.lru_drains += 1
        yield from self.lru_lock.release(task)

    # ------------------------------------------------------------------
    def _covers(self, page: int) -> bool:
        for start, count in self._vmas.items():
            if start <= page < start + count:
                return True
        return False

    def vma_ranges(self) -> Tuple[Tuple[int, int], ...]:
        return tuple(sorted(self._vmas.items()))
