"""The simulated kernel: one object tying the substrate together.

A :class:`Kernel` owns the engine, the lock registry (kallsyms for
locks), the livepatcher, and the shadow-variable store.  Subsystems
(:mod:`.mm`, :mod:`.vfs`) register their locks here as *patchable call
sites*, which is what makes them addressable by Concord.
"""

from __future__ import annotations

from typing import Optional

from ..livepatch.patcher import Patcher
from ..livepatch.shadow import ShadowStore
from ..locks.base import Lock, RWLock
from ..locks.registry import LockRegistry
from ..locks.switchable import SwitchableLock, SwitchableRWLock
from ..sim.engine import Engine
from ..sim.topology import Topology

__all__ = ["Kernel"]


class Kernel:
    """Engine + lock registry + livepatch, i.e. the machine being tuned."""

    def __init__(self, topology: Topology, seed: int = 0, **engine_kwargs) -> None:
        self.engine = Engine(topology, seed=seed, **engine_kwargs)
        self.topology = topology
        self.locks = LockRegistry()
        self.patcher = Patcher(self.engine, self.locks)
        self.shadow = ShadowStore()
        self._lock_ids = {}
        self._impl_to_site = {}

    # ------------------------------------------------------------------
    def add_lock(self, name: str, impl: Lock) -> SwitchableLock:
        """Register an exclusive lock as a patchable call site."""
        site = SwitchableLock(self.engine, impl, name=name)
        self.locks.register(name, site)
        self._track_site(site)
        return site

    def add_rwlock(self, name: str, impl: RWLock) -> SwitchableRWLock:
        """Register a readers-writer lock as a patchable call site."""
        site = SwitchableRWLock(self.engine, impl, name=name)
        self.locks.register(name, site)
        self._track_site(site)
        return site

    def _track_site(self, site) -> None:
        """Keep impl -> site resolution current across livepatch switches,
        so hook programs see the *site's* lock id no matter which
        implementation currently backs it."""
        self._impl_to_site[id(site.core.impl)] = site
        site.core._on_switch.append(
            lambda old, new, s=site: self._impl_to_site.__setitem__(id(new), s)
        )

    def lock_id(self, lock: Lock) -> int:
        """Stable small integer id for a lock (used as a BPF map key).

        Implementations backing a registered call site resolve to the
        site's id, so profiling survives implementation switches.
        """
        canonical = self._impl_to_site.get(id(lock), lock)
        key = id(canonical)
        if key not in self._lock_ids:
            self._lock_ids[key] = len(self._lock_ids) + 1
        return self._lock_ids[key]

    def lock_id_by_name(self, name: str) -> int:
        return self.lock_id(self.locks.get(name))

    # Convenience passthroughs --------------------------------------------
    @property
    def now(self) -> int:
        return self.engine.now

    def spawn(self, body, cpu: int, name: str = "", priority: int = 0, at: Optional[int] = None):
        return self.engine.spawn(body, cpu, name=name, priority=priority, at=at)

    def run(self, until: Optional[int] = None) -> int:
        return self.engine.run(until=until)
