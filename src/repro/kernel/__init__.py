"""Simulated kernel subsystems: core object, mm, VFS, syscall annotations."""

from .core import Kernel
from .mm import PAGE_SIZE, AddressSpace, FaultError
from .rcu import RCU, RCUError
from .syscall import (
    SYSCALL_IDS,
    TAG_BOOST,
    TAG_HELD_HINT,
    TAG_SYSCALL,
    annotate_priority_path,
    clear_priority_path,
    current_syscall,
    syscall_id,
)
from .vfs import VFS, Inode, VFSError

__all__ = [
    "Kernel",
    "PAGE_SIZE",
    "AddressSpace",
    "FaultError",
    "RCU",
    "RCUError",
    "SYSCALL_IDS",
    "TAG_BOOST",
    "TAG_HELD_HINT",
    "TAG_SYSCALL",
    "annotate_priority_path",
    "clear_priority_path",
    "current_syscall",
    "syscall_id",
    "VFS",
    "Inode",
    "VFSError",
]
