"""Syscall-path annotations: how applications hand context to the kernel.

§3.1.1 lock priority boosting: "For a system call, the developer can
share information about a set of locks and the prioritized threads on
the critical path."  Annotations are task tags — the open key/value
store policies read through the ``tag()`` BPF helper or that userspace
mirrors into maps.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Dict, Iterator

from ..sim.task import Task

__all__ = [
    "SYSCALL_IDS",
    "syscall_id",
    "annotate_priority_path",
    "clear_priority_path",
    "current_syscall",
    "TAG_SYSCALL",
    "TAG_BOOST",
    "TAG_HELD_HINT",
]

# Well-known tag names shared between the kernel layer and policies.
TAG_SYSCALL = "syscall"
TAG_BOOST = "boost"
TAG_HELD_HINT = "held_hint"

SYSCALL_IDS: Dict[str, int] = {}


def syscall_id(name: str) -> int:
    """Intern a syscall name to a stable id (usable as a map key)."""
    if name not in SYSCALL_IDS:
        SYSCALL_IDS[name] = len(SYSCALL_IDS) + 1
    return SYSCALL_IDS[name]


@contextmanager
def current_syscall(task: Task, name: str):
    """Mark the task as executing syscall ``name`` for the duration.

    Policies can then match on ``tag("syscall") == syscall_id(name)``.
    """
    previous = task.tags.get(TAG_SYSCALL, 0)
    task.tags[TAG_SYSCALL] = syscall_id(name)
    try:
        yield
    finally:
        if previous:
            task.tags[TAG_SYSCALL] = previous
        else:
            task.tags.pop(TAG_SYSCALL, None)


def annotate_priority_path(task: Task, level: int = 1) -> None:
    """Userspace marks this task as being on a prioritized path."""
    task.tags[TAG_BOOST] = int(level)


def clear_priority_path(task: Task) -> None:
    task.tags.pop(TAG_BOOST, None)
