"""A small VFS: directories, per-inode locks, and multi-lock operations.

This exists for the §3.1.1 *lock inheritance* use case: "a process in
Linux can acquire up to 12 locks (e.g., rename operation)".  ``rename``
here follows the kernel's locking protocol — the filesystem-wide rename
mutex, then both directory inode locks in address order — so workloads
naturally produce the L1-then-L2 chains whose FIFO pathology the paper
describes.

Each inode lock is registered as a patchable call site
(``vfs.inode.<ino>.lock``), as is the global ``vfs.rename_lock``.
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional

from ..locks.shfllock import NumaPolicy, ShflLock
from ..locks.switchable import SwitchableLock
from ..sim.errors import SimError
from ..sim.ops import Delay
from ..sim.task import Task
from .core import Kernel

__all__ = ["Inode", "VFS", "VFSError"]

_DIR_OP_NS = 300
_RENAME_WORK_NS = 500
_LOOKUP_NS = 120


class VFSError(SimError):
    """Bad path / duplicate name / missing entry."""


class Inode:
    """A directory or file inode with its own (patchable) lock."""

    def __init__(self, kernel: Kernel, ino: int, is_dir: bool) -> None:
        self.ino = ino
        self.is_dir = is_dir
        self.lock: SwitchableLock = kernel.add_lock(
            f"vfs.inode.{ino}.lock",
            ShflLock(kernel.engine, name=f"inode.{ino}", policy=NumaPolicy()),
        )
        self.children: Dict[str, "Inode"] = {}
        self.nlink = 1

    def __repr__(self) -> str:
        kind = "dir" if self.is_dir else "file"
        return f"Inode({self.ino}, {kind}, {len(self.children)} entries)"


class VFS:
    """Filesystem namespace rooted at ``/``."""

    def __init__(self, kernel: Kernel) -> None:
        self.kernel = kernel
        self._next_ino = 1
        self.rename_lock = kernel.add_lock(
            "vfs.rename_lock", ShflLock(kernel.engine, name="s_vfs_rename")
        )
        self.root = self._alloc(is_dir=True)
        self.renames = 0
        self.creates = 0

    def _alloc(self, is_dir: bool) -> Inode:
        inode = Inode(self.kernel, self._next_ino, is_dir)
        self._next_ino += 1
        return inode

    # ------------------------------------------------------------------
    def mkdir(self, task: Task, parent: Inode, name: str) -> Iterator:
        """Create a directory under ``parent``.  Returns the new inode."""
        inode = yield from self._create_common(task, parent, name, is_dir=True)
        return inode

    def create(self, task: Task, parent: Inode, name: str) -> Iterator:
        """Create a regular file (``creat``)."""
        inode = yield from self._create_common(task, parent, name, is_dir=False)
        return inode

    def _create_common(self, task: Task, parent: Inode, name: str, is_dir: bool) -> Iterator:
        if not parent.is_dir:
            raise VFSError(f"inode {parent.ino} is not a directory")
        # Note: no try/finally around lock sections — a yielding finally
        # block breaks generator close() semantics, so error paths
        # release explicitly before raising.
        yield from parent.lock.acquire(task)
        if name in parent.children:
            yield from parent.lock.release(task)
            raise VFSError(f"{name!r} already exists")
        yield Delay(_DIR_OP_NS)
        inode = self._alloc(is_dir)
        parent.children[name] = inode
        self.creates += 1
        yield from parent.lock.release(task)
        return inode

    def unlink(self, task: Task, parent: Inode, name: str) -> Iterator:
        yield from parent.lock.acquire(task)
        if name not in parent.children:
            yield from parent.lock.release(task)
            raise VFSError(f"{name!r} not found")
        yield Delay(_DIR_OP_NS)
        del parent.children[name]
        yield from parent.lock.release(task)

    def lookup(self, task: Task, parent: Inode, name: str) -> Iterator:
        """Directory entry lookup under the parent's lock."""
        yield from parent.lock.acquire(task)
        yield Delay(_LOOKUP_NS)
        inode = parent.children.get(name)
        yield from parent.lock.release(task)
        if inode is None:
            raise VFSError(f"{name!r} not found")
        return inode

    def readdir(self, task: Task, parent: Inode) -> Iterator:
        """Enumerate a directory (the §3.1.1 read-intensive example)."""
        yield from parent.lock.acquire(task)
        yield Delay(_LOOKUP_NS + 40 * len(parent.children))
        names = sorted(parent.children)
        yield from parent.lock.release(task)
        return names

    def rename(
        self,
        task: Task,
        src_dir: Inode,
        src_name: str,
        dst_dir: Inode,
        dst_name: str,
    ) -> Iterator:
        """Move an entry, following the kernel's multi-lock protocol.

        Cross-directory renames take (1) the filesystem rename mutex and
        (2) both directory locks in inode order — a three-lock chain.
        """
        cross = src_dir is not dst_dir
        if cross:
            yield from self.rename_lock.acquire(task)
        first, second = (src_dir, dst_dir) if src_dir.ino <= dst_dir.ino else (dst_dir, src_dir)
        yield from first.lock.acquire(task)
        if cross:
            yield from second.lock.acquire(task)
        missing = src_name not in src_dir.children
        if not missing:
            yield Delay(_RENAME_WORK_NS)
            inode = src_dir.children.pop(src_name)
            dst_dir.children[dst_name] = inode
            self.renames += 1
        if cross:
            yield from second.lock.release(task)
        yield from first.lock.release(task)
        if cross:
            yield from self.rename_lock.release(task)
        if missing:
            raise VFSError(f"{src_name!r} not found")
