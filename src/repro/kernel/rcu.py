"""Read-Copy-Update — the §6 extension target.

"Besides locks, there are other synchronization mechanisms, that are
heavily used in the kernel, such as RCU, seqlocks, wait events, etc.
Extending Concord to support them will further allow applications to
improve their performance."

This is a classical (non-preemptible) RCU over the simulator's
scheduling model:

* readers bracket critical sections with ``read_lock``/``read_unlock``
  — free of shared-memory traffic (a per-CPU nesting counter), which is
  RCU's whole point;
* a grace period ends when every CPU has been observed outside a read
  section since the grace period began (quiescent-state detection);
* writers either block in ``synchronize_rcu`` or defer with
  ``call_rcu``.

The C3 hook surface: ``grace_hint_ns`` is the tunable batching knob —
the analogue of the kernel's expedited-vs-normal grace-period decision —
and :class:`RCU` registers per-instance statistics so the profiler story
extends naturally.
"""

from __future__ import annotations

from typing import Callable, Iterator, List, Optional, Tuple

from ..sim.errors import SimError
from ..sim.ops import Delay
from ..sim.task import Task
from .core import Kernel

__all__ = ["RCU", "RCUError"]


class RCUError(SimError):
    """RCU API misuse (unbalanced read_unlock, waiting inside a reader)."""


class RCU:
    """One RCU domain.

    Args:
        kernel: the owning kernel (for CPUs, time, callbacks).
        grace_hint_ns: how long the grace-period machinery waits between
            quiescent-state scans.  Smaller = lower synchronize latency,
            more scan work — the knob a C3 policy would tune.
    """

    def __init__(self, kernel: Kernel, name: str = "rcu", grace_hint_ns: int = 5_000) -> None:
        self.kernel = kernel
        self.name = name
        self.grace_hint_ns = grace_hint_ns
        nr = kernel.topology.nr_cpus
        #: Per-CPU reader nesting depth (host-level: RCU readers generate
        #: no coherence traffic — that IS the mechanism being modelled).
        self._nesting = [0] * nr
        #: Per-CPU count of completed read sections (quiescent evidence).
        self._qs_counter = [0] * nr
        self.completed_grace_periods = 0
        self.read_sections = 0
        self._pending_callbacks: List[Tuple[Callable[[], None], int]] = []
        self._gp_running = False

    # ------------------------------------------------------------------
    # Reader side
    # ------------------------------------------------------------------
    def read_lock(self, task: Task) -> Iterator:
        """Enter a read-side critical section (nests)."""
        self._nesting[task.cpu_id] += 1
        yield Delay(2)  # preempt_disable-equivalent: a couple of cycles

    def read_unlock(self, task: Task) -> Iterator:
        cpu = task.cpu_id
        if self._nesting[cpu] <= 0:
            raise RCUError(f"{self.name}: read_unlock without read_lock on cpu {cpu}")
        self._nesting[cpu] -= 1
        if self._nesting[cpu] == 0:
            self._qs_counter[cpu] += 1
            self.read_sections += 1
        yield Delay(2)

    def assert_not_reading(self, task: Task) -> None:
        if self._nesting[task.cpu_id] > 0:
            raise RCUError(
                f"{self.name}: blocking call inside a read-side critical "
                f"section on cpu {task.cpu_id}"
            )

    # ------------------------------------------------------------------
    # Writer side
    # ------------------------------------------------------------------
    def synchronize(self, task: Task) -> Iterator:
        """Block until a full grace period elapses.

        Quiescent-state detection: snapshot each CPU's state; a CPU is
        clear once it is observed with nesting == 0 *or* its completed-
        section counter has advanced.  Idle CPUs count as quiescent
        (classical RCU's dynticks reasoning, simplified).
        """
        self.assert_not_reading(task)
        nr = self.kernel.topology.nr_cpus
        snapshot = list(self._qs_counter)
        cleared = [
            self._nesting[cpu] == 0 for cpu in range(nr)
        ]
        while not all(cleared):
            yield Delay(self.grace_hint_ns)
            for cpu in range(nr):
                if cleared[cpu]:
                    continue
                if self._nesting[cpu] == 0 or self._qs_counter[cpu] != snapshot[cpu]:
                    cleared[cpu] = True
        self.completed_grace_periods += 1
        self._drain_callbacks()

    def call_rcu(self, task: Task, callback: Callable[[], None]) -> Iterator:
        """Deferred free: run ``callback`` after a grace period.

        A background grace-period "thread" (an engine callback chain)
        drives detection so the caller never blocks.
        """
        self._pending_callbacks.append((callback, self.kernel.now))
        yield Delay(8)
        if not self._gp_running:
            self._gp_running = True
            self._start_background_gp()

    def _start_background_gp(self) -> None:
        nr = self.kernel.topology.nr_cpus
        snapshot = list(self._qs_counter)
        cleared = [self._nesting[cpu] == 0 for cpu in range(nr)]

        def scan():
            for cpu in range(nr):
                if not cleared[cpu] and (
                    self._nesting[cpu] == 0 or self._qs_counter[cpu] != snapshot[cpu]
                ):
                    cleared[cpu] = True
            if all(cleared):
                self.completed_grace_periods += 1
                self._drain_callbacks()
                if self._pending_callbacks:
                    self._start_background_gp()
                else:
                    self._gp_running = False
            else:
                self.kernel.engine.call_after(self.grace_hint_ns, scan)

        self.kernel.engine.call_after(self.grace_hint_ns, scan)

    def _drain_callbacks(self) -> None:
        callbacks, self._pending_callbacks = self._pending_callbacks, []
        for callback, _enqueued_at in callbacks:
            callback()

    # ------------------------------------------------------------------
    @property
    def callbacks_pending(self) -> int:
        return len(self._pending_callbacks)

    def __repr__(self) -> str:
        return (
            f"RCU({self.name}, gps={self.completed_grace_periods}, "
            f"pending={self.callbacks_pending})"
        )
