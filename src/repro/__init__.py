"""Reproduction of "Contextual Concurrency Control" (HotOS '21).

The package implements the paper's Concord framework and every substrate
it needs, over a deterministic multicore simulator:

* :mod:`repro.sim` — discrete-event NUMA machine (cache-coherence cost
  model, per-CPU scheduling, park/wake-up);
* :mod:`repro.locks` — kernel lock algorithms (MCS, CNA, cohort,
  ShflLock, rwsem, BRAVO, per-CPU rw, phase-fair, ...) with the Table 1
  hook points;
* :mod:`repro.bpf` — eBPF-like VM, verifier, maps, helpers, and a
  restricted-Python policy compiler;
* :mod:`repro.livepatch` — run-time patching of lock call sites and
  shadow variables;
* :mod:`repro.kernel` — the simulated kernel (mm page-fault path, VFS);
* :mod:`repro.concord` — the paper's contribution: load/verify/attach
  userspace lock policies, switch lock implementations on the fly, and
  profile individual locks;
* :mod:`repro.workloads` — will-it-scale-style benchmarks reproducing
  the evaluation.

Quickstart::

    from repro import Kernel, Concord, paper_machine
    from repro.concord.policies import make_numa_policy

    kernel = Kernel(paper_machine(), seed=42)
    # ... register locks / build subsystems ...
    concord = Concord(kernel)
    concord.load_policy(make_numa_policy(lock_selector="*"))
"""

from . import bpf, concord, kernel, livepatch, locks, sim, tools, userspace, workloads
from .concord import Concord, LockProfiler, PolicySpec
from .kernel import VFS, AddressSpace, Kernel
from .sim import Engine, LatencyModel, Topology, amp_machine, paper_machine

__version__ = "0.1.0"

__all__ = [
    "bpf",
    "concord",
    "kernel",
    "livepatch",
    "locks",
    "sim",
    "tools",
    "userspace",
    "workloads",
    "Concord",
    "LockProfiler",
    "PolicySpec",
    "VFS",
    "AddressSpace",
    "Kernel",
    "Engine",
    "LatencyModel",
    "Topology",
    "amp_machine",
    "paper_machine",
    "__version__",
]
