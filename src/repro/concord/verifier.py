"""Concord's lock-safety verification layer (on top of the BPF verifier).

The BPF verifier proves memory safety and termination; this layer adds
the *lock-specific* rules §4.2 describes — the reason Concord "provides
more safety properties with respect to locks":

* a program may only attach to a hook whose context layout it was
  compiled against (no type confusion between hook points);
* decision hooks (``cmp_node``, ``skip_shuffle``, ``schedule_waiter``)
  get a narrow helper whitelist — no tracing, no unbounded-cost helpers
  — and a tight instruction budget, because they run while a CPU spins;
* profiling hooks allow map writes and tracing but still carry an
  instruction budget (the Table 1 hazard is a *longer critical
  section*, not a broken one);
* mutual exclusion is structurally safe no matter what the program
  returns: decision hooks only yield booleans/integers consumed as
  *decisions* — "cmp_node() does not modify the locking behavior but
  only returns the decision for moving a node" — and the lock-side
  runtime bounds (shuffle rounds/window) cap fairness damage.

Rejection raises :class:`~repro.bpf.errors.VerificationError` with the
combined log, which the framework surfaces in its notify step.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..bpf.errors import VerificationError
from ..bpf.program import Program
from ..bpf.verifier import Verifier, VerifierReport
from ..faults import fault_point
from ..locks.base import ALL_HOOKS, DECISION_HOOKS, PROFILING_HOOKS
from .api import LAYOUT_FOR_HOOK

__all__ = ["ConcordVerifier", "ConcordVerdict", "DECISION_HELPER_WHITELIST", "PROFILING_HELPER_WHITELIST"]

#: Helpers a decision-hook program may call.
DECISION_HELPER_WHITELIST = (
    "get_smp_processor_id",
    "get_numa_node_id",
    "ktime_get_ns",
    "get_current_pid",
    "get_task_priority",
    "get_task_tag",
    "prandom_u32",
    "map_lookup_elem",
    "map_contains",
)

#: Profiling hooks may additionally mutate maps and trace.
PROFILING_HELPER_WHITELIST = DECISION_HELPER_WHITELIST + (
    "map_update_elem",
    "map_delete_elem",
    "map_add",
    "trace",
)

#: Instruction budgets per hook class (spin path vs observe path).
DECISION_MAX_INSNS = 256
PROFILING_MAX_INSNS = 1024


class ConcordVerdict:
    """The outcome handed to the user (Figure 1, step 4)."""

    def __init__(self, hook: str, bpf_report: VerifierReport, checks: List[str]) -> None:
        self.hook = hook
        self.bpf_report = bpf_report
        self.checks = checks
        self.ok = True

    def __repr__(self) -> str:
        return f"ConcordVerdict({self.hook}, ok={self.ok}, checks={len(self.checks)})"


class ConcordVerifier:
    """Validates (program, hook) pairs before they touch any lock."""

    def __init__(self) -> None:
        self._verifiers: Dict[str, Verifier] = {}
        for hook in DECISION_HOOKS:
            self._verifiers[hook] = Verifier(
                allowed_helpers=DECISION_HELPER_WHITELIST, max_insns=DECISION_MAX_INSNS
            )
        for hook in PROFILING_HOOKS:
            self._verifiers[hook] = Verifier(
                allowed_helpers=PROFILING_HELPER_WHITELIST, max_insns=PROFILING_MAX_INSNS
            )

    def verify(self, hook: str, program: Program) -> ConcordVerdict:
        # Transient verifier unavailability (flakes) injects here, before
        # any real analysis — a retry may legitimately succeed.
        fault_point(
            "concord.verifier",
            default_exc=VerificationError,
            program=program.name,
            hook=hook,
        )
        checks: List[str] = []
        if hook not in ALL_HOOKS:
            raise VerificationError(f"unknown hook point {hook!r}", checks)
        expected_layout = LAYOUT_FOR_HOOK[hook]
        if program.ctx_layout is not expected_layout:
            raise VerificationError(
                f"program {program.name!r} compiled for context "
                f"{program.ctx_layout.name!r}, hook {hook!r} requires "
                f"{expected_layout.name!r}",
                checks,
            )
        checks.append(f"context layout matches hook {hook!r}")

        bpf_report = self._verifiers[hook].verify(program)
        checks.append(
            f"bpf verification passed ({bpf_report.insn_count} insns, "
            f"budget {self._verifiers[hook].max_insns})"
        )
        if hook in DECISION_HOOKS:
            checks.append(
                "decision hook: read-only helper whitelist enforced "
                "(no map writes on the spin path)"
            )
        else:
            checks.append("profiling hook: map writes allowed; hazard is CS length")
        return ConcordVerdict(hook, bpf_report, checks)
