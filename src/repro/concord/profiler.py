"""Dynamic lock profiling (§3.2).

"With C3, application developers can profile information about any
kernel lock, unlike current tools, in which all locks are profiled
together."  The profiler is built entirely out of the framework's own
machinery: four BPF programs (one per profiling hook) sharing a set of
maps, loaded against a lock *selector* — a single instance
(``vfs.inode.17.lock``), a class (``vfs.inode.*.lock``), or everything
(``*``).

Collected per lock: attempts, contended acquisitions, acquisitions,
total/average wait time, releases, total/average hold time, a
log₂-bucketed **wait-time histogram** (bucket *b* counts acquisitions
whose wait fell in ``[2^b, 2^(b+1))`` ns, bucket 0 additionally holds
sub-2ns waits, the top bucket is open-ended), and **per-socket
acquisition counters** (which NUMA socket each acquisition landed on —
the fairness guard's raw signal).  Because the programs run on the hook
path, profiling has a measurable cost — the Table 1 "increase critical
section" hazard — which the benchmark suite quantifies.

Stats-map layout: one 64-slot stride per lock id
(``key = lock_id * LOCK_STRIDE + slot``):

====================  =========================================
slot 0..5             attempts, contended, wait_total, acquired,
                      hold_total, releases
slot 8..8+23          wait histogram buckets (``WAIT_BUCKETS``)
slot 32..32+7         per-socket acquired (``MAX_SOCKETS``, the
                      last slot absorbs any higher socket id)
====================  =========================================
"""

from __future__ import annotations

from typing import Dict, List, NamedTuple, Optional, Sequence, Tuple, Union

from ..bpf.errors import BPFError
from ..bpf.maps import HashMap
from ..faults import SITE_PROFILER_HISTOGRAM, SITE_PROFILER_SNAPSHOT, fault_point
from ..locks.base import (
    HOOK_LOCK_ACQUIRE,
    HOOK_LOCK_ACQUIRED,
    HOOK_LOCK_CONTENDED,
    HOOK_LOCK_RELEASE,
)
from .framework import Concord
from .policy import PolicySpec

__all__ = [
    "LockProfiler",
    "ProfileSession",
    "ProfileReport",
    "LockProfile",
    "ProfilerStall",
    "bucket_bounds",
    "LOCK_STRIDE",
    "WAIT_BUCKETS",
    "MAX_SOCKETS",
]


class ProfilerStall(BPFError):
    """A counter read did not complete in time (transient; retryable).

    The canary watchdog counts consecutive stalls to detect a watch
    window that will never produce a verdict.
    """

#: Stats-map slots per lock id (was 8 before histograms landed).
LOCK_STRIDE = 64
#: Number of log₂ wait-histogram buckets; the last is open-ended.
WAIT_BUCKETS = 24
#: Per-socket counters kept per lock; socket ids above this clamp into
#: the last slot.
MAX_SOCKETS = 8

# Counter slots within the stats map, keyed by lock_id * LOCK_STRIDE + slot.
_SLOT_ATTEMPTS = 0
_SLOT_CONTENDED = 1
_SLOT_WAIT_TOTAL = 2
_SLOT_ACQUIRED = 3
_SLOT_HOLD_TOTAL = 4
_SLOT_RELEASES = 5
_SLOT_HIST_BASE = 8
_SLOT_SOCKET_BASE = 32

_ON_ACQUIRE = """
def on_acquire(ctx):
    wait_ts.update(ctx.tid, ctx.now_ns)
    stats.add(ctx.lock_id * 64 + 0, 1)
"""

_ON_CONTENDED = """
def on_contended(ctx):
    stats.add(ctx.lock_id * 64 + 1, 1)
"""

# The acquired-side program computes floor(log2(wait)) with a binary
# reduction — five shift/test steps instead of a 24-iteration unrolled
# loop — to keep the Table 1 profiling overhead bounded.
_ON_ACQUIRED = """
def on_acquired(ctx):
    start = wait_ts.lookup(ctx.tid)
    if start > 0:
        w = ctx.now_ns - start
        stats.add(ctx.lock_id * 64 + 2, w)
        b = 0
        if w >> 32:
            b = 32
            w = w >> 32
        if w >> 16:
            b = b + 16
            w = w >> 16
        if w >> 8:
            b = b + 8
            w = w >> 8
        if w >> 4:
            b = b + 4
            w = w >> 4
        if w >> 2:
            b = b + 2
            w = w >> 2
        if w >> 1:
            b = b + 1
        if b > 23:
            b = 23
        stats.add(ctx.lock_id * 64 + 8 + b, 1)
    s = ctx.socket
    if s > 7:
        s = 7
    stats.add(ctx.lock_id * 64 + 32 + s, 1)
    hold_ts.update(ctx.tid, ctx.now_ns)
    stats.add(ctx.lock_id * 64 + 3, 1)
"""

_ON_RELEASE = """
def on_release(ctx):
    start = hold_ts.lookup(ctx.tid)
    if start > 0:
        stats.add(ctx.lock_id * 64 + 4, ctx.now_ns - start)
    stats.add(ctx.lock_id * 64 + 5, 1)
"""


def bucket_bounds(index: int) -> Tuple[float, float]:
    """``[lo, hi)`` wait range of histogram bucket ``index`` in ns.

    Bucket 0 starts at 0 (it also holds sub-2ns waits); the top bucket
    is open-ended but interpolation treats it as one more doubling.
    """
    lo = 0.0 if index == 0 else float(1 << index)
    return lo, float(1 << (index + 1))


class LockProfile(NamedTuple):
    """Aggregated statistics for one lock."""

    lock_name: str
    attempts: int
    contended: int
    acquired: int
    wait_total_ns: int
    hold_total_ns: int
    releases: int
    #: log₂ wait buckets (``WAIT_BUCKETS`` long when collected by a
    #: session; may be empty for hand-built profiles).
    wait_histogram: Tuple[int, ...] = ()
    #: acquisitions per NUMA socket (``MAX_SOCKETS`` long).
    per_socket_acquired: Tuple[int, ...] = ()

    @property
    def avg_wait_ns(self) -> float:
        return self.wait_total_ns / self.acquired if self.acquired else 0.0

    @property
    def avg_hold_ns(self) -> float:
        return self.hold_total_ns / self.releases if self.releases else 0.0

    @property
    def contention_ratio(self) -> float:
        return self.contended / self.attempts if self.attempts else 0.0

    def quantile(self, q: float) -> float:
        """Estimated wait-time quantile ``q`` from the log₂ histogram.

        Linear interpolation inside the bucket the rank lands in — the
        standard histogram-quantile estimate (same scheme Prometheus
        uses), so the error is bounded by one bucket's width.  Returns
        0.0 when the histogram is empty.
        """
        q = min(max(q, 0.0), 1.0)
        total = sum(self.wait_histogram)
        if not total:
            return 0.0
        rank = q * total
        seen = 0
        for index, count in enumerate(self.wait_histogram):
            if not count:
                continue
            if seen + count >= rank:
                lo, hi = bucket_bounds(index)
                return lo + (hi - lo) * max(rank - seen, 0.0) / count
            seen += count
        # Unreachable in practice (rank <= total); be safe anyway.
        return bucket_bounds(len(self.wait_histogram) - 1)[1]

    @property
    def p99_wait_ns(self) -> float:
        return self.quantile(0.99)


class ProfileReport:
    """The result of one profiling session."""

    def __init__(self, profiles: List[LockProfile], started_ns: int, stopped_ns: int) -> None:
        self.profiles = profiles
        self.started_ns = started_ns
        self.stopped_ns = stopped_ns
        # Name -> profile, built once: the SLO guards look up every
        # canary lock, which was an O(locks²) scan on wide selectors.
        self._by_name: Dict[str, LockProfile] = {p.lock_name: p for p in profiles}

    @property
    def duration_ns(self) -> int:
        return self.stopped_ns - self.started_ns

    def by_name(self, lock_name: str) -> Optional[LockProfile]:
        return self._by_name.get(lock_name)

    def hottest(self) -> Optional[LockProfile]:
        """The lock with the most total wait time (the usual culprit)."""
        candidates = [p for p in self.profiles if p.acquired]
        if not candidates:
            return None
        return max(candidates, key=lambda p: p.wait_total_ns)

    def rate_per_ms(self, lock_name: str) -> float:
        """Acquisition throughput of one lock over this window
        (acquisitions per simulated millisecond) — the collapse
        detector's throughput axis, paired with the histogram p99."""
        profile = self._by_name.get(lock_name)
        if profile is None or self.duration_ns <= 0:
            return 0.0
        return profile.acquired / (self.duration_ns / 1e6)

    def format(self) -> str:
        header = (
            f"{'lock':<28} {'acq':>8} {'cont%':>6} {'avg wait':>10} "
            f"{'p99 wait':>10} {'avg hold':>10}"
        )
        rows = [header, "-" * len(header)]
        for p in sorted(self.profiles, key=lambda p: -p.wait_total_ns):
            rows.append(
                f"{p.lock_name:<28} {p.acquired:>8} "
                f"{100 * p.contention_ratio:>5.1f}% "
                f"{p.avg_wait_ns:>8.0f}ns {p.p99_wait_ns:>8.0f}ns "
                f"{p.avg_hold_ns:>8.0f}ns"
            )
        return "\n".join(rows)


class ProfileSession:
    """A live profiling session; stop() yields the report.

    ``selector`` is either a registry glob (``"vfs.inode.*.lock"``) or
    an explicit sequence of lock names — the control plane profiles
    canary subsets that no single glob describes.  :meth:`snapshot`
    reads the counters mid-flight (the SLO guard's watch window) without
    detaching the profiling programs.
    """

    _seq = 0

    def __init__(self, concord: Concord, selector: Union[str, Sequence[str]]) -> None:
        ProfileSession._seq += 1
        self.concord = concord
        self.selector = selector
        self.prefix = f"profile{ProfileSession._seq}"
        self.started_ns = concord.kernel.now
        self.stats = HashMap(f"{self.prefix}.stats", max_entries=65536)
        self.wait_ts = HashMap(f"{self.prefix}.wait_ts", max_entries=65536)
        self.hold_ts = HashMap(f"{self.prefix}.hold_ts", max_entries=65536)
        maps = {"stats": self.stats, "wait_ts": self.wait_ts, "hold_ts": self.hold_ts}
        self._policy_names: List[str] = []
        if isinstance(selector, str):
            names = concord.kernel.locks.select_names(selector)
            targets = None
            spec_selector = selector
        else:
            names = list(dict.fromkeys(selector))
            targets = names
            spec_selector = "*"
        #: lock name -> lock id captured at start (ids are allocated
        #: lazily; we force them now so report decoding is stable).
        self.lock_ids: Dict[str, int] = {}
        for name in names:
            self.lock_ids[name] = concord.kernel.lock_id(concord.kernel.locks.get(name))
        try:
            for hook, source in (
                (HOOK_LOCK_ACQUIRE, _ON_ACQUIRE),
                (HOOK_LOCK_CONTENDED, _ON_CONTENDED),
                (HOOK_LOCK_ACQUIRED, _ON_ACQUIRED),
                (HOOK_LOCK_RELEASE, _ON_RELEASE),
            ):
                spec = PolicySpec(
                    name=f"{self.prefix}.{hook}",
                    hook=hook,
                    source=source,
                    maps=maps,
                    lock_selector=spec_selector,
                )
                concord.load_policy(spec, targets=targets)
                self._policy_names.append(spec.name)
        except Exception:
            # A partially-started session must not leak hook programs.
            for name in self._policy_names:
                concord.unload_policy(name)
            raise
        self.active = True

    def _collect(self, stopped_ns: int) -> ProfileReport:
        if self.active:
            # The histogram bucket-range read is a separate, wider map
            # scan than the six scalar counters; on a *live* session
            # (snapshot path) it races the counting programs and gets
            # its own stall site.  stop() collects from quiesced maps —
            # the programs are already unloaded — so it never stalls.
            stall_ns = fault_point(
                SITE_PROFILER_HISTOGRAM,
                default_exc=ProfilerStall,
                session=self.prefix,
            )
            if stall_ns:
                raise ProfilerStall(
                    f"{self.prefix}: histogram bucket read stalled "
                    f"({stall_ns}ns, injected)"
                )
        profiles = []
        for lock_name, lock_id in sorted(self.lock_ids.items()):
            base = lock_id * LOCK_STRIDE

            def slot(index: int) -> int:
                return self.stats.lookup(base + index) or 0

            profiles.append(
                LockProfile(
                    lock_name=lock_name,
                    attempts=slot(_SLOT_ATTEMPTS),
                    contended=slot(_SLOT_CONTENDED),
                    acquired=slot(_SLOT_ACQUIRED),
                    wait_total_ns=slot(_SLOT_WAIT_TOTAL),
                    hold_total_ns=slot(_SLOT_HOLD_TOTAL),
                    releases=slot(_SLOT_RELEASES),
                    wait_histogram=tuple(
                        slot(_SLOT_HIST_BASE + b) for b in range(WAIT_BUCKETS)
                    ),
                    per_socket_acquired=tuple(
                        slot(_SLOT_SOCKET_BASE + s) for s in range(MAX_SOCKETS)
                    ),
                )
            )
        return ProfileReport(profiles, self.started_ns, stopped_ns)

    def snapshot(self) -> ProfileReport:
        """Counters as of *now*, programs left attached and counting."""
        if not self.active:
            raise RuntimeError("profiling session already stopped")
        stall_ns = fault_point(
            SITE_PROFILER_SNAPSHOT,
            default_exc=ProfilerStall,
            session=self.prefix,
        )
        if stall_ns:
            raise ProfilerStall(
                f"{self.prefix}: counter read stalled ({stall_ns}ns, injected)"
            )
        return self._collect(self.concord.kernel.now)

    def stop(self) -> ProfileReport:
        if not self.active:
            raise RuntimeError("profiling session already stopped")
        # Unload first: even if the final collect stalls, the hook
        # programs are gone and the session cannot leak them.
        self.active = False
        for name in self._policy_names:
            self.concord.unload_policy(name)
        return self._collect(self.concord.kernel.now)


class LockProfiler:
    """Entry point: ``LockProfiler(concord).start("mm.mmap_lock")``."""

    def __init__(self, concord: Concord) -> None:
        self.concord = concord

    def start(self, selector: Union[str, Sequence[str]]) -> ProfileSession:
        return ProfileSession(self.concord, selector)
