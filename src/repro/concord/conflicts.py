"""Static analysis of policy composition (§6 "Composing policies").

"Composing multiple policies is a difficult task, especially when some
of the policies could be conflicting.  We would like to automate this
process ... and also provide a safe way to compose conflicting
policies."

This module is the automation: given compiled programs sharing a (hook,
lock) chain, it extracts each program's *footprint* — maps read/written,
context fields consulted, helpers called, and whether the program is a
constant function — and reports composition hazards:

* a chain member that constantly returns truthy under an ``or`` combiner
  (it shadows everything after it) or constantly falsy under ``and``
  (it vetoes everything);
* write/read and write/write overlap on shared maps between policies on
  the same chain (order-dependent behaviour);
* decision programs whose decisions consult *no* context at all
  (usually an authoring bug).

Findings are advisory: the framework surfaces them through the Figure 1
notify channel rather than refusing the load (hard conflicts —
exclusivity, combiner disagreement — are still errors in
:mod:`.policy`).
"""

from __future__ import annotations

from typing import Dict, List, NamedTuple, Optional, Sequence, Set, Tuple

from ..bpf.helpers import HELPER_IDS
from ..bpf.insn import (
    OP_CALL,
    OP_EXIT,
    OP_LDC,
    OP_LD_MAP,
    OP_LDX,
    OP_MOV,
    R0,
    R1,
    R6,
    R7,
)
from ..bpf.program import Program

__all__ = ["ProgramFootprint", "Finding", "footprint_of", "analyze_chain"]

#: Helpers that mutate map state.
_MAP_WRITERS = {"map_update_elem", "map_delete_elem", "map_add"}
_MAP_READERS = {"map_lookup_elem", "map_contains"}


class ProgramFootprint(NamedTuple):
    """What a program touches."""

    name: str
    ctx_fields: Tuple[str, ...]
    maps_read: Tuple[str, ...]
    maps_written: Tuple[str, ...]
    helpers: Tuple[str, ...]
    #: The single constant the program always returns, or None.
    constant_return: Optional[int]


class Finding(NamedTuple):
    """One composition hazard."""

    severity: str  # "warning" | "info"
    policies: Tuple[str, ...]
    message: str

    def __str__(self) -> str:
        return f"[{self.severity}] {'+'.join(self.policies)}: {self.message}"


def footprint_of(program: Program) -> ProgramFootprint:
    """Extract a program's footprint from its bytecode."""
    ctx_fields: Set[str] = set()
    maps_read: Set[str] = set()
    maps_written: Set[str] = set()
    helpers: Set[str] = set()
    last_map: Optional[str] = None

    for insn in program.insns:
        if insn.op == OP_LDX and insn.src in (R1, R6):
            # The frontend keeps the context pointer in R6 (R1 at entry).
            index = insn.off // 8
            if 0 <= index < len(program.ctx_layout.fields):
                ctx_fields.add(program.ctx_layout.fields[index])
        elif insn.op == OP_LD_MAP:
            if 0 <= insn.imm < len(program.maps):
                last_map = program.maps[insn.imm].name
        elif insn.op == OP_CALL:
            spec = HELPER_IDS.get(insn.imm)
            if spec is None:
                continue
            helpers.add(spec.name)
            if spec.takes_map and last_map is not None:
                if spec.name in _MAP_WRITERS:
                    maps_written.add(last_map)
                elif spec.name in _MAP_READERS:
                    maps_read.add(last_map)

    return ProgramFootprint(
        name=program.name,
        ctx_fields=tuple(sorted(ctx_fields)),
        maps_read=tuple(sorted(maps_read)),
        maps_written=tuple(sorted(maps_written)),
        helpers=tuple(sorted(helpers)),
        constant_return=_constant_return(program),
    )


def _constant_return(program: Program) -> Optional[int]:
    """Detect a program that returns the same constant on every path.

    Pattern-matches the code shapes the frontend emits for ``return
    <const>`` (``LDC R7; MOV R0, R7; EXIT`` and ``LDC R0; EXIT``); any
    exit whose R0 provenance is not a recognized constant makes the
    result None (unknown), which is always safe.
    """
    insns = program.insns
    reachable = _reachable_pcs(insns)
    constants: Set[int] = set()
    reachable_exits = 0
    for index, insn in enumerate(insns):
        if insn.op != OP_EXIT or index not in reachable:
            continue  # dead exits (e.g. the implicit trailing return 0)
        reachable_exits += 1
        value = None
        if index >= 1 and insns[index - 1].op == OP_LDC and insns[index - 1].dst == R0:
            value = insns[index - 1].imm
        elif (
            index >= 2
            and insns[index - 1].op == OP_MOV
            and insns[index - 1].dst == R0
            and insns[index - 1].src == R7
            and insns[index - 2].op == OP_LDC
            and insns[index - 2].dst == R7
        ):
            value = insns[index - 2].imm
        if value is None:
            return None
        constants.add(value)
    if reachable_exits and len(constants) == 1:
        return constants.pop()
    return None


def _reachable_pcs(insns) -> Set[int]:
    """Forward reachability over the (forward-jump-only) CFG."""
    from ..bpf.insn import JMP_OPS, OP_JA

    reachable: Set[int] = set()
    work = [0]
    while work:
        pc = work.pop()
        if pc in reachable or not 0 <= pc < len(insns):
            continue
        reachable.add(pc)
        insn = insns[pc]
        if insn.op == OP_EXIT:
            continue
        if insn.op == OP_JA:
            work.append(pc + insn.off)
        elif insn.op in JMP_OPS:
            work.append(pc + insn.off)
            work.append(pc + 1)
        else:
            work.append(pc + 1)
    return reachable


def analyze_chain(
    footprints: Sequence[ProgramFootprint],
    combiner: str = "or",
    decision_hook: bool = True,
) -> List[Finding]:
    """Analyze one (hook, lock) chain for composition hazards."""
    findings: List[Finding] = []

    for position, fp in enumerate(footprints):
        if fp.constant_return is not None and len(footprints) > 1:
            if combiner == "or" and fp.constant_return != 0:
                findings.append(
                    Finding(
                        "warning",
                        (fp.name,),
                        f"always returns {fp.constant_return}; under 'or' it "
                        f"shadows every other policy in the chain",
                    )
                )
            elif combiner == "and" and fp.constant_return == 0:
                findings.append(
                    Finding(
                        "warning",
                        (fp.name,),
                        "always returns 0; under 'and' it vetoes the whole chain",
                    )
                )
            elif combiner == "first" and position == 0:
                findings.append(
                    Finding(
                        "warning",
                        (fp.name,),
                        f"always returns {fp.constant_return} and runs first; "
                        f"the rest of the chain is dead",
                    )
                )
        if (
            decision_hook
            and fp.constant_return is None
            and not fp.ctx_fields
            and not fp.maps_read
            and "get_task_tag" not in fp.helpers
        ):
            findings.append(
                Finding(
                    "info",
                    (fp.name,),
                    "decision program consults neither context nor maps",
                )
            )

    # Pairwise map overlap.
    for i, a in enumerate(footprints):
        for b in footprints[i + 1 :]:
            waw = set(a.maps_written) & set(b.maps_written)
            for name in sorted(waw):
                findings.append(
                    Finding(
                        "warning",
                        (a.name, b.name),
                        f"both write map {name!r}: results depend on chain order",
                    )
                )
            war = (set(a.maps_written) & set(b.maps_read)) | (
                set(b.maps_written) & set(a.maps_read)
            )
            for name in sorted(war - waw):
                findings.append(
                    Finding(
                        "info",
                        (a.name, b.name),
                        f"map {name!r} is written by one policy and read by the "
                        f"other: coupled behaviour",
                    )
                )
    return findings
