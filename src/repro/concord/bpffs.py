"""The BPF filesystem: where verified programs are pinned.

Figure 1, step 5: after verification the compiled program is stored in
the BPF file system so its lifetime outlives the loading process and so
other tools can inspect it.  Paths follow the bpffs convention, e.g.
``/sys/fs/bpf/concord/<policy>/<hook>``.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..bpf.errors import BPFError
from ..bpf.program import Program
from ..faults import fault_point

__all__ = ["BpfFS", "BpfPinError", "BpfIOError"]


class BpfPinError(BPFError):
    """A pin-path operation addressed a path that was never pinned."""


class BpfIOError(BPFError):
    """A bpffs operation failed at the I/O level (transient; retryable).

    Distinct from :class:`BpfPinError` (a caller bug) — an I/O error
    says nothing about whether the path exists.
    """


class BpfFS:
    """An in-memory bpffs: pin, get, list, unpin."""

    ROOT = "/sys/fs/bpf"

    def __init__(self) -> None:
        self._pinned: Dict[str, Program] = {}

    def pin(self, path: str, program: Program) -> str:
        path = self._normalize(path)
        fault_point("concord.bpffs.pin", default_exc=BpfIOError, path=path)
        if path in self._pinned:
            raise BPFError(f"{path}: already pinned")
        if not program.verified:
            raise BPFError(f"{path}: refusing to pin an unverified program")
        self._pinned[path] = program
        return path

    def get(self, path: str) -> Program:
        path = self._normalize(path)
        try:
            return self._pinned[path]
        except KeyError:
            raise BPFError(f"{path}: no program pinned here") from None

    def unpin(self, path: str) -> Program:
        """Remove and return the program pinned at ``path``.

        Unpinning a path that was never pinned is a caller bug (a stale
        handle, a double-unload); it raises :class:`BpfPinError` rather
        than silently doing nothing.
        """
        path = self._normalize(path)
        fault_point("concord.bpffs.unpin", default_exc=BpfIOError, path=path)
        try:
            return self._pinned.pop(path)
        except KeyError:
            raise BpfPinError(f"{path}: nothing pinned here") from None

    def listdir(self, prefix: str = "") -> List[str]:
        prefix = self._normalize(prefix) if prefix else self.ROOT
        return sorted(path for path in self._pinned if path.startswith(prefix))

    def entries(self) -> List[Tuple[str, Program]]:
        return sorted(self._pinned.items())

    def _normalize(self, path: str) -> str:
        if not path.startswith("/"):
            path = f"{self.ROOT}/{path}"
        return path

    def __len__(self) -> int:
        return len(self._pinned)
