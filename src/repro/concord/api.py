"""The Concord lock APIs — Table 1 of the paper.

Seven hook points, two groups:

===========================  ==========================================  =====================
API                          Description                                 Hazard
===========================  ==========================================  =====================
``cmp_node``                 move current node forward?                  fairness
``skip_shuffle``             skip shuffling / hand over shuffler         fairness
``schedule_waiter``          waking/parking/priority for a lock          performance
``lock_acquire``             invoked when trying to acquire              longer critical section
``lock_contended``           invoked when trylock failed, must wait      longer critical section
``lock_acquired``            invoked when actually acquired              longer critical section
``lock_release``             invoked on release                          longer critical section
===========================  ==========================================  =====================

Each hook has a :class:`~repro.bpf.program.ContextLayout` (the read-only
struct its program receives) and a *packer* that builds the context from
the lock's hook environment.  :func:`make_hook_fn` glues a verified
program to a lock's :class:`~repro.locks.base.HookSet` slot.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Tuple

from ..bpf.program import ContextLayout
from ..bpf.vm import VM
from ..locks.base import (
    ALL_HOOKS,
    HOOK_CMP_NODE,
    HOOK_LOCK_ACQUIRE,
    HOOK_LOCK_ACQUIRED,
    HOOK_LOCK_CONTENDED,
    HOOK_LOCK_RELEASE,
    HOOK_SCHEDULE_WAITER,
    HOOK_SKIP_SHUFFLE,
)

__all__ = [
    "CMP_NODE_LAYOUT",
    "SKIP_SHUFFLE_LAYOUT",
    "SCHEDULE_WAITER_LAYOUT",
    "LOCK_EVENT_LAYOUT",
    "LAYOUT_FOR_HOOK",
    "EVENT_IDS",
    "make_hook_fn",
    "HOOK_HAZARDS",
]

CMP_NODE_LAYOUT = ContextLayout(
    "cmp_node",
    [
        "lock_id",
        "shuffler_tid",
        "shuffler_cpu",
        "shuffler_socket",
        "shuffler_prio",
        "shuffler_wait_ns",
        "shuffler_held_locks",
        "curr_tid",
        "curr_cpu",
        "curr_socket",
        "curr_prio",
        "curr_wait_ns",
        "curr_held_locks",
        "curr_boost",
        "curr_cs_hint",
    ],
)

SKIP_SHUFFLE_LAYOUT = ContextLayout(
    "skip_shuffle",
    [
        "lock_id",
        "shuffler_tid",
        "shuffler_cpu",
        "shuffler_socket",
        "shuffler_prio",
        "shuffler_wait_ns",
    ],
)

SCHEDULE_WAITER_LAYOUT = ContextLayout(
    "schedule_waiter",
    [
        "lock_id",
        "curr_tid",
        "curr_cpu",
        "curr_socket",
        "curr_prio",
        "curr_wait_ns",
        "spin_budget_ns",
    ],
)

#: One layout serves all four profiling hooks; ``event`` discriminates.
LOCK_EVENT_LAYOUT = ContextLayout(
    "lock_event",
    ["lock_id", "event", "tid", "cpu", "socket", "prio", "now_ns"],
)

EVENT_IDS = {
    HOOK_LOCK_ACQUIRE: 0,
    HOOK_LOCK_CONTENDED: 1,
    HOOK_LOCK_ACQUIRED: 2,
    HOOK_LOCK_RELEASE: 3,
}

LAYOUT_FOR_HOOK: Dict[str, ContextLayout] = {
    HOOK_CMP_NODE: CMP_NODE_LAYOUT,
    HOOK_SKIP_SHUFFLE: SKIP_SHUFFLE_LAYOUT,
    HOOK_SCHEDULE_WAITER: SCHEDULE_WAITER_LAYOUT,
    HOOK_LOCK_ACQUIRE: LOCK_EVENT_LAYOUT,
    HOOK_LOCK_CONTENDED: LOCK_EVENT_LAYOUT,
    HOOK_LOCK_ACQUIRED: LOCK_EVENT_LAYOUT,
    HOOK_LOCK_RELEASE: LOCK_EVENT_LAYOUT,
}

HOOK_HAZARDS: Dict[str, str] = {
    HOOK_CMP_NODE: "fairness",
    HOOK_SKIP_SHUFFLE: "fairness",
    HOOK_SCHEDULE_WAITER: "performance",
    HOOK_LOCK_ACQUIRE: "increase critical section",
    HOOK_LOCK_CONTENDED: "increase critical section",
    HOOK_LOCK_ACQUIRED: "increase critical section",
    HOOK_LOCK_RELEASE: "increase critical section",
}

assert set(LAYOUT_FOR_HOOK) == set(ALL_HOOKS)


def _node_fields(prefix: str, node, now: int) -> Dict[str, int]:
    if node is None:
        return {}
    task = node.task
    return {
        f"{prefix}_tid": task.tid,
        f"{prefix}_cpu": node.cpu,
        f"{prefix}_socket": node.socket,
        f"{prefix}_prio": node.priority,
        f"{prefix}_wait_ns": max(0, now - node.enqueue_time),
        f"{prefix}_held_locks": len(task.held_locks),
    }


def _pack_cmp_node(env: Dict[str, Any], lock_id: int, now: int) -> Dict[str, int]:
    values: Dict[str, int] = {"lock_id": lock_id}
    values.update(_node_fields("shuffler", env.get("shuffler_node"), now))
    curr = env.get("curr_node")
    values.update(_node_fields("curr", curr, now))
    if curr is not None:
        values["curr_boost"] = curr.task.tags.get("boost", 0)
        values["curr_cs_hint"] = curr.meta.get("cs_hint", 0)
    return values


def _pack_skip_shuffle(env: Dict[str, Any], lock_id: int, now: int) -> Dict[str, int]:
    values: Dict[str, int] = {"lock_id": lock_id}
    values.update(_node_fields("shuffler", env.get("shuffler_node"), now))
    return values


def _pack_schedule_waiter(env: Dict[str, Any], lock_id: int, now: int) -> Dict[str, int]:
    values: Dict[str, int] = {"lock_id": lock_id}
    values.update(_node_fields("curr", env.get("curr_node"), now))
    lock = env.get("lock")
    values["spin_budget_ns"] = getattr(lock, "spin_budget_ns", 0)
    return values


def _pack_lock_event(env: Dict[str, Any], lock_id: int, now: int, event: int) -> Dict[str, int]:
    task = env["task"]
    return {
        "lock_id": lock_id,
        "event": event,
        "tid": task.tid,
        "cpu": task.cpu_id,
        "socket": task.numa_node,
        "prio": task.priority,
        "now_ns": now,
    }


def make_hook_fn(
    hook: str,
    program,
    vm: VM,
    lock_id_of: Callable[[Any], int],
) -> Callable[[Dict[str, Any]], Tuple[int, int]]:
    """Build the HookSet entry for one verified program.

    The returned callable packs the hook environment into the program's
    context layout, runs the VM, and returns ``(r0, cost_ns)`` — the
    cost is charged as simulated time by the lock's ``_fire``.
    """
    layout = LAYOUT_FOR_HOOK[hook]
    if program.ctx_layout is not layout:
        raise ValueError(
            f"program {program.name!r} was compiled against layout "
            f"{program.ctx_layout.name!r}; hook {hook!r} needs {layout.name!r}"
        )
    event = EVENT_IDS.get(hook)

    def fn(env: Dict[str, Any]) -> Tuple[int, int]:
        lock = env["lock"]
        engine = lock.engine
        lock_id = lock_id_of(lock)
        if event is None:
            if hook == HOOK_CMP_NODE:
                values = _pack_cmp_node(env, lock_id, engine.now)
            elif hook == HOOK_SKIP_SHUFFLE:
                values = _pack_skip_shuffle(env, lock_id, engine.now)
            else:
                values = _pack_schedule_waiter(env, lock_id, engine.now)
        else:
            values = _pack_lock_event(env, lock_id, engine.now, event)
        return vm.run(program, layout.pack(values), task=env.get("task"), engine=engine)

    return fn
