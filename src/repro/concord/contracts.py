"""Performance contracts over locks (§3.2).

"In the future, a developer could also reason about performance
contracts by encoding performance contracts that affect an application's
performance due to various shuffling policies and even reason about some
of the guarantees provided by a set of policies."

A :class:`ContractSpec` states the bounds an application needs from a
set of locks (wait, hold, contention).  Checking has two halves:

* **static** — before running anything, the installed policy chains are
  inspected against Table 1's hazard classes: a contract bounding wait
  time is at risk under any attached fairness-hazard hook
  (``cmp_node``/``skip_shuffle``), and one bounding hold time is at risk
  under profiling hooks (the "increase critical section" hazard);
* **dynamic** — a profiling session measures the selected locks and the
  report is evaluated against the bounds.

Both halves produce findings, not exceptions: contracts are a reasoning
tool for the developer (exactly the paper's framing), so the caller
decides what a violation means.
"""

from __future__ import annotations

from typing import List, NamedTuple, Optional

from ..locks.base import HOOK_CMP_NODE, HOOK_SKIP_SHUFFLE, PROFILING_HOOKS
from .framework import Concord
from .profiler import LockProfiler, ProfileReport

__all__ = ["ContractSpec", "ContractFinding", "ContractReport", "ContractMonitor"]


class ContractSpec(NamedTuple):
    """Bounds an application requires from the selected locks."""

    name: str
    lock_selector: str
    max_avg_wait_ns: Optional[float] = None
    max_avg_hold_ns: Optional[float] = None
    max_contention: Optional[float] = None  # contended / attempts


class ContractFinding(NamedTuple):
    kind: str        # "static-risk" | "violation"
    lock_name: str
    message: str

    def __str__(self) -> str:
        return f"[{self.kind}] {self.lock_name}: {self.message}"


class ContractReport:
    """Outcome of checking one contract."""

    def __init__(self, spec: ContractSpec, findings: List[ContractFinding],
                 profile: Optional[ProfileReport] = None) -> None:
        self.spec = spec
        self.findings = findings
        self.profile = profile

    @property
    def satisfied(self) -> bool:
        return not any(f.kind == "violation" for f in self.findings)

    @property
    def risks(self) -> List[ContractFinding]:
        return [f for f in self.findings if f.kind == "static-risk"]

    def format(self) -> str:
        status = "SATISFIED" if self.satisfied else "VIOLATED"
        lines = [f"contract {self.spec.name!r}: {status}"]
        for finding in self.findings:
            lines.append(f"  {finding}")
        return "\n".join(lines)


class ContractMonitor:
    """Checks contracts against a Concord-managed kernel."""

    def __init__(self, concord: Concord) -> None:
        self.concord = concord

    # ------------------------------------------------------------------
    def static_check(self, spec: ContractSpec) -> List[ContractFinding]:
        """Relate the contract's bounds to Table 1's hazard classes."""
        findings: List[ContractFinding] = []
        for lock_name in self.concord.kernel.locks.select_names(spec.lock_selector):
            chains = self.concord._chains.get(lock_name, {})
            attached = {hook for hook, chain in chains.items() if chain}
            if spec.max_avg_wait_ns is not None:
                fairness = attached & {HOOK_CMP_NODE, HOOK_SKIP_SHUFFLE}
                for hook in sorted(fairness):
                    policies = ", ".join(p.name for p in chains[hook])
                    findings.append(
                        ContractFinding(
                            "static-risk",
                            lock_name,
                            f"wait bound at risk: {hook} (fairness hazard) is "
                            f"attached ({policies})",
                        )
                    )
            if spec.max_avg_hold_ns is not None:
                cs_hooks = attached & set(PROFILING_HOOKS)
                if cs_hooks:
                    findings.append(
                        ContractFinding(
                            "static-risk",
                            lock_name,
                            f"hold bound at risk: profiling hooks attached "
                            f"({', '.join(sorted(cs_hooks))}) lengthen the "
                            f"critical section",
                        )
                    )
        return findings

    # ------------------------------------------------------------------
    def start(self, spec: ContractSpec) -> "_ContractSession":
        """Begin dynamic monitoring (a profiling session under the hood)."""
        return _ContractSession(self, spec)

    def evaluate(self, spec: ContractSpec, profile: ProfileReport) -> ContractReport:
        """Evaluate measured numbers against the bounds."""
        findings = self.static_check(spec)
        for lock_profile in profile.profiles:
            if not lock_profile.acquired:
                continue
            if (
                spec.max_avg_wait_ns is not None
                and lock_profile.avg_wait_ns > spec.max_avg_wait_ns
            ):
                findings.append(
                    ContractFinding(
                        "violation",
                        lock_profile.lock_name,
                        f"avg wait {lock_profile.avg_wait_ns:.0f} ns exceeds "
                        f"bound {spec.max_avg_wait_ns:.0f} ns",
                    )
                )
            if (
                spec.max_avg_hold_ns is not None
                and lock_profile.avg_hold_ns > spec.max_avg_hold_ns
            ):
                findings.append(
                    ContractFinding(
                        "violation",
                        lock_profile.lock_name,
                        f"avg hold {lock_profile.avg_hold_ns:.0f} ns exceeds "
                        f"bound {spec.max_avg_hold_ns:.0f} ns",
                    )
                )
            if (
                spec.max_contention is not None
                and lock_profile.contention_ratio > spec.max_contention
            ):
                findings.append(
                    ContractFinding(
                        "violation",
                        lock_profile.lock_name,
                        f"contention {lock_profile.contention_ratio:.1%} exceeds "
                        f"bound {spec.max_contention:.1%}",
                    )
                )
        return ContractReport(spec, findings, profile)


class _ContractSession:
    def __init__(self, monitor: ContractMonitor, spec: ContractSpec) -> None:
        self.monitor = monitor
        self.spec = spec
        self._profiling = LockProfiler(monitor.concord).start(spec.lock_selector)

    def stop(self) -> ContractReport:
        profile = self._profiling.stop()
        report = self.monitor.evaluate(self.spec, profile)
        self.monitor.concord._notify(
            "contract",
            f"{self.spec.name}: "
            + ("satisfied" if report.satisfied else
               f"VIOLATED ({sum(1 for f in report.findings if f.kind == 'violation')} findings)"),
        )
        return report
