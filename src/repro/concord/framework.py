"""The Concord framework: Figure 1's workflow, end to end.

    1. userspace specifies a lock policy        -> PolicySpec
    2. compile + eBPF verification              -> frontend + Verifier
    3. lock-safety validation                   -> ConcordVerifier
    4. notify the user of the outcome           -> events + return value
    5. store the program in the BPF filesystem  -> BpfFS pin
    6. livepatch the annotated lock functions   -> Patcher + HookSet

One :class:`Concord` instance manages one simulated kernel.  Policies
chain per (hook, lock); lock implementations can be switched on the fly;
the dynamic profiler (§3.2) is built on the four profiling hooks.
"""

from __future__ import annotations

from typing import Callable, Dict, List, NamedTuple, Optional, Sequence, Tuple

from ..bpf.errors import BPFError, RuntimeFault, VerificationError
from ..bpf.frontend import compile_policy
from ..bpf.vm import VM
from ..kernel.core import Kernel
from ..locks.base import HookSet, Lock
from ..locks.switchable import SwitchableLock, SwitchableRWLock
from .api import LAYOUT_FOR_HOOK, make_hook_fn
from .bpffs import BpfFS, BpfIOError
from .policy import (
    LoadedPolicy,
    PolicySpec,
    check_conflicts,
    combine_results,
)
from .verifier import ConcordVerifier

__all__ = ["Concord", "ConcordEvent"]


class ConcordEvent(NamedTuple):
    """One entry in the user-visible event log (the "notify" channel)."""

    time_ns: int
    kind: str
    message: str


class Concord:
    """A privileged userspace process's handle for tuning kernel locks.

    Args:
        kernel: the kernel whose locks we modify.
        dispatch_ns: per-hook-invocation trampoline + dispatch cost.
        vm: optionally share/tune the BPF interpreter (cost knobs).
        fault_threshold: runtime circuit breaker — a policy whose hook
            programs raise this many :class:`RuntimeFault`\\ s is
            auto-detached (fail-open: the lock falls back to stock
            behaviour instead of the fault poisoning the lock path).
    """

    def __init__(
        self,
        kernel: Kernel,
        dispatch_ns: int = 35,
        vm: Optional[VM] = None,
        fault_threshold: int = 5,
    ) -> None:
        self.kernel = kernel
        self.dispatch_ns = dispatch_ns
        self.vm = vm or VM()
        self.fault_threshold = fault_threshold
        self.verifier = ConcordVerifier()
        self.bpffs = BpfFS()
        self.events: List[ConcordEvent] = []
        self.policies: Dict[str, LoadedPolicy] = {}
        #: lock name -> hook -> ordered policy chain
        self._chains: Dict[str, Dict[str, List[LoadedPolicy]]] = {}
        #: lock name -> live HookSet installed on that site
        self._hooksets: Dict[str, HookSet] = {}
        self._carryover_installed: Dict[str, bool] = {}
        self._subscribers: List[Callable[[ConcordEvent], None]] = []

    # ------------------------------------------------------------------
    # Notification channel (Figure 1, step 4)
    # ------------------------------------------------------------------
    def _notify(self, kind: str, message: str) -> None:
        event = ConcordEvent(self.kernel.now, kind, message)
        self.events.append(event)
        for subscriber in list(self._subscribers):
            subscriber(event)

    def subscribe(self, fn: Callable[[ConcordEvent], None]) -> None:
        """Receive every future event as it is emitted (the concordd
        audit bridge).  Subscribers must not raise."""
        self._subscribers.append(fn)

    def unsubscribe(self, fn: Callable[[ConcordEvent], None]) -> None:
        """Stop delivering events to ``fn``; unknown fns are a no-op (a
        dead daemon must be able to detach unconditionally)."""
        try:
            self._subscribers.remove(fn)
        except ValueError:
            pass

    # ------------------------------------------------------------------
    # Policy lifecycle
    # ------------------------------------------------------------------
    def verify_policy(self, spec: PolicySpec) -> Tuple[object, object]:
        """Compile and verify a policy without loading it.

        The control plane uses this to gate a submission (Figure 1,
        steps 2–4) before any lock is touched.  Returns
        ``(program, verdict)``; raises :class:`BPFError` on rejection,
        recording the rejection in :attr:`events`.
        """
        layout = LAYOUT_FOR_HOOK[spec.hook]
        try:
            program = compile_policy(spec.source, layout, maps=spec.maps, name=spec.name)
            verdict = self.verifier.verify(spec.hook, program)
        except BPFError as exc:
            self._notify("verify-failed", f"{spec.name}: {exc}")
            raise
        return program, verdict

    def _resolve_targets(self, spec: PolicySpec, targets: Optional[Sequence[str]]) -> List[str]:
        if targets is None:
            found = self.kernel.locks.select_names(spec.lock_selector)
            if not found:
                self._notify(
                    "load-failed",
                    f"{spec.name}: selector {spec.lock_selector!r} matches no locks",
                )
                raise BPFError(
                    f"lock selector {spec.lock_selector!r} matches no registered locks"
                )
            return found
        explicit = list(dict.fromkeys(targets))
        for name in explicit:
            if name not in self.kernel.locks:
                raise BPFError(f"{spec.name}: target lock {name!r} is not registered")
        if not explicit:
            raise BPFError(f"{spec.name}: empty target list")
        return explicit

    def load_policy(
        self, spec: PolicySpec, targets: Optional[Sequence[str]] = None
    ) -> LoadedPolicy:
        """Compile, verify, store, and attach one policy.

        Args:
            spec: the policy to load.
            targets: explicit lock names to attach to, overriding the
                selector match (the canary rollout installs on a subset
                this way).  Every name must be registered.

        Raises :class:`~repro.bpf.errors.BPFError` (with the verifier
        log) on rejection; the rejection is also recorded in
        :attr:`events`, mirroring the paper's notify step.
        """
        if spec.name in self.policies:
            raise BPFError(f"policy {spec.name!r} is already loaded")
        program, verdict = self.verify_policy(spec)

        attach_to = self._resolve_targets(spec, targets)
        for name in attach_to:
            chain = self._chains.get(name, {}).get(spec.hook, [])
            check_conflicts(chain, spec, name)

        try:
            path = self.bpffs.pin(f"concord/{spec.name}/{spec.hook}", program)
        except BPFError as exc:
            self._notify("pin-failed", f"{spec.name}: {exc}")
            raise
        loaded = LoadedPolicy(spec, program, verdict, path)
        self.policies[spec.name] = loaded
        self._notify("verified", f"{spec.name}: {spec.hook} program accepted ({len(program)} insns)")

        for name in attach_to:
            self._attach(name, loaded)
        self._notify(
            "attached",
            f"{spec.name}: live on {len(attach_to)} lock(s) matching {spec.lock_selector!r}",
        )
        return loaded

    def unload_policy(self, name: str) -> Optional[LoadedPolicy]:
        """Detach and unpin a policy.  Idempotent: unloading a policy
        that is not loaded (or already unloaded) is a no-op returning
        ``None``; callers that must distinguish check the return value.
        """
        loaded = self.policies.pop(name, None)
        if loaded is None:
            self._notify("detach-noop", f"{name}: not loaded, nothing to do")
            return None
        for lock_name in list(loaded.attached_locks):
            chain = self._chains.get(lock_name, {}).get(loaded.spec.hook, [])
            if loaded in chain:
                chain.remove(loaded)
            self._rebuild_hookset(lock_name)
        loaded.attached_locks.clear()
        try:
            self.bpffs.unpin(loaded.pinned_path)
        except BpfIOError as exc:
            # Transient unpin I/O failure must not wedge an unload: the
            # policy is already off every lock; the stale pin is debris
            # that recovery's orphan sweep (or a retry) clears later.
            self._notify("unpin-failed", f"{name}: {exc}; pin left behind")
        self._notify("detached", f"{name}: unloaded")
        return loaded

    def attach_policy(self, name: str, lock_names: Sequence[str]) -> List[str]:
        """Attach an already-loaded policy to more locks (canary promote).

        Returns the lock names newly attached; locks the policy already
        covers are skipped.
        """
        loaded = self.policies.get(name)
        if loaded is None:
            raise BPFError(f"policy {name!r} is not loaded")
        fresh = []
        for lock_name in lock_names:
            if lock_name in loaded.attached_locks:
                continue
            if lock_name not in self.kernel.locks:
                raise BPFError(f"{name}: target lock {lock_name!r} is not registered")
            chain = self._chains.get(lock_name, {}).get(loaded.spec.hook, [])
            check_conflicts(chain, loaded.spec, lock_name)
            fresh.append(lock_name)
        for lock_name in fresh:
            self._attach(lock_name, loaded)
        if fresh:
            self._notify("attached", f"{name}: extended to {len(fresh)} more lock(s)")
        return fresh

    def detach_policy(self, name: str, lock_names: Sequence[str]) -> List[str]:
        """Detach a loaded policy from a subset of its locks (canary
        rollback).  The program stays pinned and loaded."""
        loaded = self.policies.get(name)
        if loaded is None:
            raise BPFError(f"policy {name!r} is not loaded")
        removed = []
        for lock_name in lock_names:
            if lock_name not in loaded.attached_locks:
                continue
            chain = self._chains.get(lock_name, {}).get(loaded.spec.hook, [])
            if loaded in chain:
                chain.remove(loaded)
            loaded.attached_locks.remove(lock_name)
            self._rebuild_hookset(lock_name)
            removed.append(lock_name)
        if removed:
            self._notify("detached", f"{name}: detached from {len(removed)} lock(s)")
        return removed

    def replace_policy(self, spec: PolicySpec) -> LoadedPolicy:
        """Atomically swap a loaded policy for a new version.

        The new program is verified *before* the old one is detached, so
        a rejected replacement leaves the running policy untouched.
        """
        self.verify_policy(spec)
        old = self.policies.get(spec.name)
        targets = list(old.attached_locks) if old is not None else None
        self.unload_policy(spec.name)
        return self.load_policy(spec, targets=targets)

    def chain(self, lock_name: str, hook: str) -> Tuple[LoadedPolicy, ...]:
        """The live policy chain on ``(lock, hook)`` (admission checks)."""
        return tuple(self._chains.get(lock_name, {}).get(hook, ()))

    # ------------------------------------------------------------------
    # Attachment plumbing
    # ------------------------------------------------------------------
    def _attach(self, lock_name: str, loaded: LoadedPolicy) -> None:
        chains = self._chains.setdefault(lock_name, {})
        chain = chains.setdefault(loaded.spec.hook, [])
        chain.append(loaded)
        chain.sort(key=lambda p: -p.spec.priority)
        loaded.attached_locks.append(lock_name)
        self._rebuild_hookset(lock_name)
        self._analyze_composition(lock_name, loaded.spec.hook, chain)

    def _analyze_composition(self, lock_name: str, hook: str, chain) -> None:
        """§6 'composing policies': static hazard analysis, advisory only."""
        if len(chain) < 1:
            return
        from ..locks.base import DECISION_HOOKS
        from .conflicts import analyze_chain, footprint_of

        findings = analyze_chain(
            [footprint_of(policy.program) for policy in chain],
            combiner=chain[0].spec.combiner,
            decision_hook=hook in DECISION_HOOKS,
        )
        for finding in findings:
            self._notify("compose-" + finding.severity, f"{hook}@{lock_name}: {finding}")

    def _rebuild_hookset(self, lock_name: str) -> None:
        site = self.kernel.locks.get(lock_name)
        chains = self._chains.get(lock_name, {})
        live = {hook: chain for hook, chain in chains.items() if chain}
        if not live:
            self._set_site_hooks(site, None)
            return
        hookset = HookSet(dispatch_ns=self.dispatch_ns)
        for hook, chain in live.items():
            fns = [
                self._breaker_fn(
                    policy,
                    make_hook_fn(hook, policy.program, self.vm, self.kernel.lock_id),
                )
                for policy in chain
            ]
            combiner = chain[0].spec.combiner
            if len(fns) == 1:
                hookset.attach(hook, fns[0])
            else:
                hookset.attach(hook, _chain_fn(fns, combiner))
        self._hooksets[lock_name] = hookset
        self._set_site_hooks(site, hookset)

    # ------------------------------------------------------------------
    # Fail-open degradation: the per-policy runtime circuit breaker
    # ------------------------------------------------------------------
    def _breaker_fn(self, loaded: LoadedPolicy, fn):
        """Wrap one policy's hook fn with the circuit breaker.

        A :class:`RuntimeFault` (verifier-escaped bug, injected helper
        fault, budget exhaustion) is absorbed: the hook contributes a
        neutral decision (0) and only the entry cost, the fault is
        counted against the policy, and at :attr:`fault_threshold` the
        policy is auto-detached — the lock falls back to stock
        behaviour instead of every acquisition re-raising.
        """

        def guarded(env):
            if loaded.tripped:
                return 0, 0
            try:
                return fn(env)
            except RuntimeFault as exc:
                self._on_policy_fault(loaded, exc)
                return 0, self.vm.entry_cost_ns

        return guarded

    def _on_policy_fault(self, loaded: LoadedPolicy, exc: RuntimeFault) -> None:
        loaded.fault_count += 1
        self._notify(
            "policy-fault",
            f"{loaded.spec.name}: {exc} "
            f"(fault {loaded.fault_count}/{self.fault_threshold})",
        )
        if loaded.fault_count >= self.fault_threshold and not loaded.tripped:
            loaded.tripped = True
            # unload_policy clears attached_locks; capture them first so
            # the trip event names exactly which locks fell back.
            released = ", ".join(loaded.attached_locks) or "none"
            # Safe mid-acquisition: unload is pure bookkeeping (chain
            # removal + hookset rebuild); the in-flight chain invocation
            # holds its own fn references and the tripped flag silences
            # this policy's contribution from here on.
            self.unload_policy(loaded.spec.name)
            self._notify(
                "breaker-tripped",
                f"{loaded.spec.name}: circuit breaker tripped after "
                f"{loaded.fault_count} runtime fault(s); policy detached, "
                f"locks fall back to stock behaviour ({released})",
            )

    def _set_site_hooks(self, site: Lock, hookset: Optional[HookSet]) -> None:
        if isinstance(site, (SwitchableLock, SwitchableRWLock)):
            site.attach_hooks(hookset)
            name = site.name
            if not self._carryover_installed.get(name):
                # Keep hooks attached across implementation switches.
                site.core._on_switch.append(
                    lambda old, new, s=site: setattr(new, "hooks", old.hooks)
                )
                self._carryover_installed[name] = True
        else:
            site.hooks = hookset

    # ------------------------------------------------------------------
    # Lock switching and parameters (the other half of C3)
    # ------------------------------------------------------------------
    def switch_lock(
        self, lock_name: str, new_impl_factory: Callable[[Lock], Lock], **drain_kwargs
    ):
        """Replace a lock's implementation on the fly (drain semantics).

        ``drain_kwargs`` pass through to :meth:`Patcher.enable` — e.g.
        ``quiesce_deadline_ns`` for a bounded drain.
        """
        patch = self.kernel.patcher.switch_lock(
            lock_name, new_impl_factory, **drain_kwargs
        )
        self._notify("switched", f"{lock_name}: implementation switch requested")
        return patch

    def switch_latency(self, lock_name: str) -> Optional[int]:
        return self.kernel.patcher.switch_latency(lock_name)

    def set_lock_param(self, lock_name: str, param: str, value) -> None:
        """Tune a lock parameter (e.g. ``spin_budget_ns``) from userspace."""
        site = self.kernel.locks.get(lock_name)
        impl = site.core.impl if isinstance(site, (SwitchableLock, SwitchableRWLock)) else site
        if not hasattr(impl, param):
            raise BPFError(f"{lock_name}: lock has no parameter {param!r}")
        setattr(impl, param, value)
        self._notify("param", f"{lock_name}: {param} = {value}")

    # ------------------------------------------------------------------
    def describe(self) -> Dict[str, object]:
        return {
            "policies": sorted(self.policies),
            "pinned": self.bpffs.listdir(),
            "patched_locks": sorted(
                name for name, hookset in self._hooksets.items() if hookset
            ),
            "events": len(self.events),
        }


def _chain_fn(fns, combiner):
    """Run a chain of hook programs, combining results and summing costs."""

    def chained(env):
        results = []
        total_cost = 0
        for fn in fns:
            value, cost = fn(env)
            results.append(value)
            total_cost += cost
        return combine_results(combiner, results), total_cost

    return chained
