"""Concord: userspace tuning of kernel concurrency control (the paper's §4).

Typical session::

    from repro.concord import Concord, LockProfiler
    from repro.concord.policies import make_numa_policy

    concord = Concord(kernel)
    concord.load_policy(make_numa_policy(lock_selector="vfs.*"))

    session = LockProfiler(concord).start("mm.mmap_lock")
    ... run workload ...
    print(session.stop().format())
"""

from .api import (
    CMP_NODE_LAYOUT,
    EVENT_IDS,
    HOOK_HAZARDS,
    LAYOUT_FOR_HOOK,
    LOCK_EVENT_LAYOUT,
    SCHEDULE_WAITER_LAYOUT,
    SKIP_SHUFFLE_LAYOUT,
    make_hook_fn,
)
from .bpffs import BpfFS, BpfPinError
from .conflicts import Finding, ProgramFootprint, analyze_chain, footprint_of
from .contracts import ContractFinding, ContractMonitor, ContractReport, ContractSpec
from .framework import Concord, ConcordEvent
from .policy import LoadedPolicy, PolicyConflictError, PolicySpec, combine_results
from .profiler import LockProfile, LockProfiler, ProfileReport, ProfileSession
from .verifier import ConcordVerdict, ConcordVerifier

__all__ = [
    "CMP_NODE_LAYOUT",
    "EVENT_IDS",
    "HOOK_HAZARDS",
    "LAYOUT_FOR_HOOK",
    "LOCK_EVENT_LAYOUT",
    "SCHEDULE_WAITER_LAYOUT",
    "SKIP_SHUFFLE_LAYOUT",
    "make_hook_fn",
    "BpfFS",
    "BpfPinError",
    "Finding",
    "ProgramFootprint",
    "analyze_chain",
    "footprint_of",
    "ContractFinding",
    "ContractMonitor",
    "ContractReport",
    "ContractSpec",
    "Concord",
    "ConcordEvent",
    "LoadedPolicy",
    "PolicyConflictError",
    "PolicySpec",
    "combine_results",
    "LockProfile",
    "LockProfiler",
    "ProfileReport",
    "ProfileSession",
    "ConcordVerdict",
    "ConcordVerifier",
]
