"""Policy objects: what a user hands to Concord, and how policies compose.

A :class:`PolicySpec` is pure data: a name, a hook point, restricted-
Python source, the maps it references, and a lock selector (a glob over
registry names — "this replacement can range from one lock instance to
every lock in the kernel", §4).

Composition (§6 "Composing policies"): several policies may target the
same hook of the same lock.  Concord chains their programs — the eBPF
program-chaining the paper leans on — and combines results with the
hook's combiner:

* decision hooks default to ``"or"`` (any policy voting to move/skip
  wins); ``"and"`` and ``"first"`` are available;
* profiling hooks always run every program (results ignored).

Conflicts are detected, not silently resolved: a policy marked
``exclusive`` refuses to share its (hook, lock) slot.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..bpf.maps import BPFMap
from ..locks.base import ALL_HOOKS, DECISION_HOOKS, LockError

__all__ = ["PolicySpec", "LoadedPolicy", "PolicyConflictError", "combine_results", "COMBINERS"]

COMBINERS = ("or", "and", "first", "sum")


class PolicyConflictError(LockError):
    """Two policies cannot share a (hook, lock) slot."""


class PolicySpec:
    """A userspace policy, before loading.

    Args:
        name: unique policy name.
        hook: one of the seven Table 1 hook points.
        source: restricted-Python source (see :mod:`repro.bpf.frontend`).
        maps: name -> map bindings the source references.
        lock_selector: glob over registered lock names ("*" = all).
        combiner: how to merge this hook's chained results.
        exclusive: refuse to share the (hook, lock) slot.
        priority: chain position — higher runs earlier.
    """

    def __init__(
        self,
        name: str,
        hook: str,
        source: str,
        maps: Optional[Dict[str, BPFMap]] = None,
        lock_selector: str = "*",
        combiner: str = "or",
        exclusive: bool = False,
        priority: int = 0,
    ) -> None:
        if hook not in ALL_HOOKS:
            raise ValueError(f"unknown hook {hook!r}")
        if combiner not in COMBINERS:
            raise ValueError(f"combiner must be one of {COMBINERS}")
        self.name = name
        self.hook = hook
        self.source = source
        self.maps = dict(maps or {})
        self.lock_selector = lock_selector
        self.combiner = combiner
        self.exclusive = exclusive
        self.priority = priority

    def __repr__(self) -> str:
        return f"PolicySpec({self.name!r}, hook={self.hook}, locks={self.lock_selector!r})"


class LoadedPolicy:
    """A policy after compile + verify + store (framework-internal)."""

    def __init__(self, spec: PolicySpec, program, verdict, pinned_path: str) -> None:
        self.spec = spec
        self.program = program
        self.verdict = verdict
        self.pinned_path = pinned_path
        self.attached_locks: List[str] = []
        #: runtime circuit breaker (fail-open degradation)
        self.fault_count = 0
        self.tripped = False

    @property
    def name(self) -> str:
        return self.spec.name

    def __repr__(self) -> str:
        return (
            f"LoadedPolicy({self.name!r}, hook={self.spec.hook}, "
            f"locks={len(self.attached_locks)})"
        )


def check_conflicts(existing: Sequence[LoadedPolicy], new: PolicySpec, lock_name: str) -> None:
    """Raise if ``new`` cannot join the chain on (hook, lock)."""
    for policy in existing:
        if policy.spec.exclusive or new.exclusive:
            raise PolicyConflictError(
                f"policy {new.name!r} conflicts with {policy.name!r} on "
                f"{new.hook}@{lock_name}: "
                + ("existing" if policy.spec.exclusive else "new")
                + " policy is exclusive"
            )
        if policy.spec.combiner != new.combiner:
            raise PolicyConflictError(
                f"policies {policy.name!r} and {new.name!r} disagree on the "
                f"combiner for {new.hook}@{lock_name} "
                f"({policy.spec.combiner!r} vs {new.combiner!r})"
            )


def combine_results(combiner: str, results: Sequence[int]) -> int:
    """Fold chained program results into one hook decision."""
    if not results:
        return 0
    if combiner == "or":
        for value in results:
            if value:
                return value
        return 0
    if combiner == "and":
        for value in results:
            if not value:
                return 0
        return results[-1]
    if combiner == "first":
        return results[0]
    if combiner == "sum":
        return sum(results) & ((1 << 64) - 1)
    raise ValueError(f"unknown combiner {combiner!r}")
