"""BRAVO reader-bias control: the Figure 2(a) lock modification.

"For the BRAVO, we explicitly switch between a neutral readers-writer
lock to a distributed version for readers" — i.e. Concord livepatches a
BRAVO layer over the stock rw-semaphore and userspace can toggle the
reader bias at run time (a *parameter* change rather than a program).
"""

from __future__ import annotations

from ...locks.bravo import BravoLock
from ...locks.switchable import SwitchableRWLock
from ..framework import Concord

__all__ = ["install_bravo", "set_reader_bias"]


def install_bravo(concord: Concord, lock_name: str, start_biased: bool = True):
    """Livepatch a BRAVO layer over an existing rw lock call site.

    Returns the applied patch; the switch engages once in-flight
    critical sections drain (``concord.switch_latency(lock_name)``).
    """
    engine = concord.kernel.engine

    def factory(old_impl):
        return BravoLock(engine, old_impl, name=f"bravo.{lock_name}", start_biased=start_biased)

    return concord.switch_lock(lock_name, factory)


def set_reader_bias(concord: Concord, lock_name: str, enabled: bool) -> None:
    """Toggle an installed BRAVO layer's reader bias from userspace."""
    site = concord.kernel.locks.get(lock_name)
    impl = site.core.impl if isinstance(site, SwitchableRWLock) else site
    if not isinstance(impl, BravoLock):
        raise TypeError(f"{lock_name} is not backed by a BravoLock (got {type(impl).__name__})")
    concord.kernel.engine.external_store(impl.rbias, 1 if enabled else 0)
    concord._notify("param", f"{lock_name}: reader bias {'on' if enabled else 'off'}")
