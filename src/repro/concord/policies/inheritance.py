"""Lock inheritance (§3.1.1).

The FIFO pathology: t1 holds L1 and waits for L2 while t2 waits for L1
— t1 sits at the back of L2's queue although the whole L1 convoy is
blocked behind it.  "A developer can ... declare which locks it already
holds, so that the shuffler can give it a higher priority for acquiring
the next lock."

Two signals, OR-combined: the kernel-visible held-lock count (packed
into ``curr_held_locks``) and an explicit userspace declaration map
(tid -> declared holds) for applications that annotate.
"""

from __future__ import annotations

from typing import Tuple

from ...bpf.maps import HashMap
from ...locks.base import HOOK_CMP_NODE
from ..policy import PolicySpec

__all__ = ["make_inheritance_policy", "INHERITANCE_CMP_SOURCE"]

INHERITANCE_CMP_SOURCE = """
def lock_inheritance(ctx):
    if ctx.curr_held_locks > ctx.shuffler_held_locks:
        return 1
    return declared_holds.lookup(ctx.curr_tid) > declared_holds.lookup(ctx.shuffler_tid)
"""


def make_inheritance_policy(
    lock_selector: str = "*",
    name: str = "lock-inheritance",
) -> Tuple[PolicySpec, HashMap]:
    """Returns (spec, declared_holds map: tid -> held-lock count)."""
    declared = HashMap(f"{name}.holds", max_entries=4096)
    spec = PolicySpec(
        name=name,
        hook=HOOK_CMP_NODE,
        source=INHERITANCE_CMP_SOURCE,
        maps={"declared_holds": declared},
        lock_selector=lock_selector,
    )
    return spec, declared
