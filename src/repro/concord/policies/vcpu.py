"""Exposing hypervisor scheduling to the lock (§3.1.1).

Double scheduling: "the hypervisor may schedule out a vCPU being the
lock holder or the very next lock waiter in a VM.  With C3, the
hypervisor can expose the vCPU scheduling information to the shuffler to
prioritize waiters based on their running time quota."

The hypervisor writes each vCPU's state into a map (1 = running /
plenty of quota left, 0 = preempted or about to be).  The shuffler then
avoids handing the lock to a waiter whose vCPU cannot run — the waiter
would hold the head slot while frozen, stalling everyone.
"""

from __future__ import annotations

from typing import Tuple

from ...bpf.maps import HashMap
from ...locks.base import HOOK_CMP_NODE
from ..policy import PolicySpec

__all__ = ["make_vcpu_policy", "VCPU_CMP_SOURCE"]

VCPU_CMP_SOURCE = """
def vcpu_cmp_node(ctx):
    if vcpu_running.lookup(ctx.shuffler_cpu) == 0:
        return 0
    return vcpu_running.lookup(ctx.curr_cpu) == 1
"""


def make_vcpu_policy(
    nr_vcpus: int,
    lock_selector: str = "*",
    name: str = "vcpu-aware",
) -> Tuple[PolicySpec, HashMap]:
    """Returns (spec, vcpu_running map: cpu -> 0/1, hypervisor-written).

    All vCPUs start marked running.
    """
    vcpu_running = HashMap(f"{name}.running", max_entries=max(nr_vcpus * 2, 8))
    for vcpu in range(nr_vcpus):
        vcpu_running[vcpu] = 1
    spec = PolicySpec(
        name=name,
        hook=HOOK_CMP_NODE,
        source=VCPU_CMP_SOURCE,
        maps={"vcpu_running": vcpu_running},
        lock_selector=lock_selector,
    )
    return spec, vcpu_running
