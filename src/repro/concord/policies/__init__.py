"""Prebuilt Concord policies for the paper's §3 use cases.

Each module exports a ``make_*`` factory returning one or more
:class:`~repro.concord.policy.PolicySpec` objects (plus the userspace
control surface — the maps the application writes to steer the policy):

* :mod:`.numa` — NUMA-aware shuffling (the Figure 2b policy);
* :mod:`.priority` — lock priority boosting for annotated tasks;
* :mod:`.inheritance` — lock inheritance for multi-lock chains;
* :mod:`.scl` — scheduler-cooperative usage fairness;
* :mod:`.amp` — asymmetric-multicore awareness;
* :mod:`.vcpu` — vCPU preemption awareness for virtualized guests;
* :mod:`.parking` — adaptive spin-then-park budgets;
* :mod:`.reader_bias` — BRAVO reader-bias control (Figure 2a).
"""

from .amp import make_amp_policy
from .inheritance import make_inheritance_policy
from .numa import make_numa_policy
from .parking import make_parking_policy
from .priority import make_priority_policy
from .reader_bias import install_bravo, set_reader_bias
from .scl import make_scl_policies
from .vcpu import make_vcpu_policy

__all__ = [
    "make_amp_policy",
    "make_inheritance_policy",
    "make_numa_policy",
    "make_parking_policy",
    "make_priority_policy",
    "install_bravo",
    "set_reader_bias",
    "make_scl_policies",
    "make_vcpu_policy",
]
