"""Scheduler-cooperative locking (§3.1.2, after Patel et al., EuroSys '20).

The *scheduler subversion* problem: a task holding the lock for long
critical sections monopolizes it under FIFO ordering.  SCL's fix is
usage-based fairness — penalize heavy users.  The kernel solution
enforces this always; "C3 allows application developers to encode this
information ... and overcome the problem of scheduler subversion only
when needed."

Composition in action: two *profiling* programs meter per-TID lock
usage into a shared map, and one *decision* program consults it —
waiters with less accumulated hold time than the shuffler move forward.
"""

from __future__ import annotations

from typing import List, Tuple

from ...bpf.maps import HashMap
from ...locks.base import HOOK_CMP_NODE, HOOK_LOCK_ACQUIRED, HOOK_LOCK_RELEASE
from ..policy import PolicySpec

__all__ = ["make_scl_policies"]

_METER_ACQUIRED = """
def scl_on_acquired(ctx):
    cs_start.update(ctx.tid, ctx.now_ns)
"""

_METER_RELEASE = """
def scl_on_release(ctx):
    start = cs_start.lookup(ctx.tid)
    if start > 0:
        usage.add(ctx.tid, ctx.now_ns - start)
"""

_CMP_SOURCE = """
def scl_cmp_node(ctx):
    return usage.lookup(ctx.curr_tid) < usage.lookup(ctx.shuffler_tid)
"""


def make_scl_policies(
    lock_selector: str = "*",
    name: str = "scl",
) -> Tuple[List[PolicySpec], HashMap]:
    """Returns ([meter_acquired, meter_release, cmp], usage map)."""
    usage = HashMap(f"{name}.usage", max_entries=8192)
    cs_start = HashMap(f"{name}.cs_start", max_entries=8192)
    specs = [
        PolicySpec(
            name=f"{name}.meter.acquired",
            hook=HOOK_LOCK_ACQUIRED,
            source=_METER_ACQUIRED,
            maps={"cs_start": cs_start},
            lock_selector=lock_selector,
        ),
        PolicySpec(
            name=f"{name}.meter.release",
            hook=HOOK_LOCK_RELEASE,
            source=_METER_RELEASE,
            maps={"cs_start": cs_start, "usage": usage},
            lock_selector=lock_selector,
        ),
        PolicySpec(
            name=f"{name}.cmp",
            hook=HOOK_CMP_NODE,
            source=_CMP_SOURCE,
            maps={"usage": usage},
            lock_selector=lock_selector,
        ),
    ]
    return specs, usage
