"""NUMA-awareness as a userspace policy (the Figure 2b experiment).

The same decision ShflLock's compiled-in :class:`~repro.locks.shfllock.
NumaPolicy` makes — group waiters from the shuffler's socket — but
expressed as a BPF program installed at run time.  "Concord-ShflLock"
in the evaluation is exactly this policy loaded through the framework.
"""

from __future__ import annotations

from ...locks.base import HOOK_CMP_NODE
from ..policy import PolicySpec

__all__ = ["make_numa_policy", "NUMA_CMP_SOURCE"]

NUMA_CMP_SOURCE = """
def numa_cmp_node(ctx):
    return ctx.curr_socket == ctx.shuffler_socket
"""


def make_numa_policy(lock_selector: str = "*", name: str = "numa-aware") -> PolicySpec:
    """NUMA grouping on ``cmp_node`` for the selected locks."""
    return PolicySpec(
        name=name,
        hook=HOOK_CMP_NODE,
        source=NUMA_CMP_SOURCE,
        lock_selector=lock_selector,
    )
