"""Lock priority boosting (§3.1.1).

"An application might want to prioritize either a system call path or a
set of tasks over others ... The shuffler will then prioritize these
threads over other threads waiting for the locks."

Userspace control surface: a hash map of prioritized TIDs (written with
plain dict syntax, ``tids[tid] = 1``).  Tasks annotated in-kernel via
``annotate_priority_path`` are honored too (the ``curr_boost`` context
field).  A boosted waiter moves forward unless the shuffler itself is
boosted (no point reordering among equals).
"""

from __future__ import annotations

from typing import Tuple

from ...bpf.maps import HashMap
from ...locks.base import HOOK_CMP_NODE
from ..policy import PolicySpec

__all__ = ["make_priority_policy", "PRIORITY_CMP_SOURCE"]

PRIORITY_CMP_SOURCE = """
def priority_boost(ctx):
    if boost_tids.contains(ctx.shuffler_tid):
        return 0
    if boost_tids.contains(ctx.curr_tid):
        return 1
    return ctx.curr_boost > 0
"""


def make_priority_policy(
    lock_selector: str = "*",
    name: str = "priority-boost",
    max_tids: int = 4096,
) -> Tuple[PolicySpec, HashMap]:
    """Returns (spec, tids_map); userspace adds TIDs to the map."""
    boost_tids = HashMap(f"{name}.tids", max_entries=max_tids)
    spec = PolicySpec(
        name=name,
        hook=HOOK_CMP_NODE,
        source=PRIORITY_CMP_SOURCE,
        maps={"boost_tids": boost_tids},
        lock_selector=lock_selector,
    )
    return spec, boost_tids
