"""Task-fair locks on asymmetric multicore (AMP) machines (§3.1.2).

On big.LITTLE-style parts, FIFO ordering lets slow cores throttle the
lock: a critical section on a 3x-slower core takes 3x the lock hold
time.  "Developers can ... reorder the queue of threads waiting to
acquire the lock in such a way that improves the lock throughput."

Userspace declares the fast-core set in a map (it knows the platform);
the policy moves fast-core waiters forward.  The fairness hazard is
real — slow cores see longer waits — which is exactly Table 1's point.
"""

from __future__ import annotations

from typing import Iterable, Tuple

from ...bpf.maps import HashMap
from ...locks.base import HOOK_CMP_NODE
from ...sim.topology import Topology
from ..policy import PolicySpec

__all__ = ["make_amp_policy", "AMP_CMP_SOURCE"]

AMP_CMP_SOURCE = """
def amp_cmp_node(ctx):
    if fast_cpus.contains(ctx.shuffler_cpu):
        return 0
    return fast_cpus.contains(ctx.curr_cpu)
"""


def make_amp_policy(
    topology: Topology,
    lock_selector: str = "*",
    name: str = "amp-aware",
    fast_cpus: Iterable[int] = (),
) -> Tuple[PolicySpec, HashMap]:
    """Returns (spec, fast_cpus map).

    If ``fast_cpus`` is empty, every CPU with speed factor 1.0 (full
    speed) is treated as fast.
    """
    cpus = list(fast_cpus)
    if not cpus:
        cpus = [cpu for cpu in range(topology.nr_cpus) if topology.speed_of(cpu) <= 1.0]
    fast_map = HashMap(f"{name}.fast_cpus", max_entries=max(len(cpus), 1) * 2)
    for cpu in cpus:
        fast_map[cpu] = 1
    spec = PolicySpec(
        name=name,
        hook=HOOK_CMP_NODE,
        source=AMP_CMP_SOURCE,
        maps={"fast_cpus": fast_map},
        lock_selector=lock_selector,
    )
    return spec, fast_map
