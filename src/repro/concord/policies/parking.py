"""Adaptable parking/wake-up strategy (§3.1.1).

Kernel blocking locks "follow spin-then-park strategy ... this spin time
is mostly ad-hoc".  C3 lets the application set it from measured
critical-section lengths: spin roughly as long as a critical section
takes (cheap, avoids the wake-up latency), park beyond that (saves the
CPU when the wait will be long).

The ``schedule_waiter`` program returns the spin budget in ns for this
acquisition (``SpinParkMutex`` consumes it directly; blocking ShflLock
treats nonzero as "may park").  Userspace — or the SCL-style metering
programs — keeps the per-lock CS estimate in a map.
"""

from __future__ import annotations

from typing import Tuple

from ...bpf.maps import HashMap
from ...locks.base import HOOK_SCHEDULE_WAITER
from ..policy import PolicySpec

__all__ = ["make_parking_policy", "PARKING_SOURCE"]

PARKING_SOURCE = """
def adaptive_parking(ctx):
    cs_ns = cs_estimate.lookup(ctx.lock_id)
    if cs_ns == 0:
        return ctx.spin_budget_ns
    budget = 2 * cs_ns
    if budget > 50000:
        return 50000
    return budget
"""


def make_parking_policy(
    lock_selector: str = "*",
    name: str = "adaptive-parking",
) -> Tuple[PolicySpec, HashMap]:
    """Returns (spec, cs_estimate map: lock_id -> estimated CS ns)."""
    cs_estimate = HashMap(f"{name}.cs", max_entries=1024)
    spec = PolicySpec(
        name=name,
        hook=HOOK_SCHEDULE_WAITER,
        source=PARKING_SOURCE,
        maps={"cs_estimate": cs_estimate},
        lock_selector=lock_selector,
        combiner="first",
    )
    return spec, cs_estimate
