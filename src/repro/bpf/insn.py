"""The instruction set of the simulated BPF machine.

A close cousin of real eBPF: eleven 64-bit registers (R0..R10), a
512-byte stack addressed through the read-only frame pointer R10, ALU
and jump instructions in register/immediate forms, helper calls, and a
pseudo-instruction that materializes a map handle into a register.

Word-granular memory: all loads/stores move 8-byte values and offsets
must be 8-byte aligned.  That loses eBPF's sub-word accesses but keeps
the verifier's memory model small without giving up any property the
reproduction needs.
"""

from __future__ import annotations

from typing import List, Optional

__all__ = [
    "Insn",
    "ALU_OPS",
    "JMP_OPS",
    "SIGNED_JMPS",
    "OP_MOV",
    "OP_LDX",
    "OP_STX",
    "OP_ST",
    "OP_CALL",
    "OP_EXIT",
    "OP_JA",
    "OP_LD_MAP",
    "OP_LDC",
    "NR_REGS",
    "STACK_SIZE",
    "R0",
    "R1",
    "R2",
    "R3",
    "R4",
    "R5",
    "R6",
    "R7",
    "R8",
    "R9",
    "R10",
]

NR_REGS = 11
STACK_SIZE = 512  # bytes; 64 eight-byte slots

R0, R1, R2, R3, R4, R5, R6, R7, R8, R9, R10 = range(11)

#: dst = dst <op> (src | imm)
ALU_OPS = ("add", "sub", "mul", "div", "mod", "and", "or", "xor", "lsh", "rsh", "arsh", "neg")
#: conditional jumps: if dst <cond> (src | imm) goto pc+off
JMP_OPS = ("jeq", "jne", "jgt", "jge", "jlt", "jle", "jsgt", "jsge", "jslt", "jsle", "jset")
SIGNED_JMPS = frozenset(("jsgt", "jsge", "jslt", "jsle"))

OP_MOV = "mov"
OP_LDC = "ldc"      # dst = imm (64-bit constant load)
OP_LDX = "ldx"      # dst = *(src + off)
OP_STX = "stx"      # *(dst + off) = src
OP_ST = "st"        # *(dst + off) = imm
OP_CALL = "call"    # call helper #imm
OP_EXIT = "exit"
OP_JA = "ja"        # unconditional: goto pc+off
OP_LD_MAP = "ld_map"  # dst = program.maps[imm] handle


class Insn:
    """One instruction.

    Register-vs-immediate ALU/JMP forms are distinguished by ``src``:
    ``None`` means the immediate form.
    """

    __slots__ = ("op", "dst", "src", "off", "imm")

    def __init__(
        self,
        op: str,
        dst: Optional[int] = None,
        src: Optional[int] = None,
        off: int = 0,
        imm: int = 0,
    ) -> None:
        self.op = op
        self.dst = dst
        self.src = src
        self.off = off
        self.imm = imm

    def __repr__(self) -> str:
        parts = [self.op]
        if self.dst is not None:
            parts.append(f"r{self.dst}")
        if self.src is not None:
            parts.append(f"r{self.src}")
        if self.op in (OP_LDX, OP_STX, OP_ST) or self.op == OP_JA or self.op in JMP_OPS:
            parts.append(f"off={self.off}")
        if self.src is None and self.op not in (OP_EXIT, OP_JA):
            parts.append(f"imm={self.imm}")
        return f"Insn({' '.join(parts)})"


def disassemble(insns: List[Insn]) -> str:
    """Pretty-print a program for verifier logs and debugging."""
    lines = []
    for index, insn in enumerate(insns):
        lines.append(f"{index:4d}: {insn!r}")
    return "\n".join(lines)
