"""Program objects and context layouts.

A :class:`Program` is bytecode plus everything the verifier and VM need
to reason about it: the context layout for its hook type, the maps it
references, and interned tag names.

A :class:`ContextLayout` is the BTF-like type description of the
read-only context structure a hook passes to its program (register R1
at entry).  Each Concord hook type has its own layout (defined in
:mod:`repro.concord.api`); field values are 64-bit scalars.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from .errors import BPFError
from .insn import Insn, disassemble
from .maps import BPFMap

__all__ = ["ContextLayout", "Program"]


class ContextLayout:
    """Named, ordered, read-only 8-byte fields of a hook context."""

    def __init__(self, name: str, fields: Sequence[str]) -> None:
        self.name = name
        self.fields: Tuple[str, ...] = tuple(fields)
        self._offset_of: Dict[str, int] = {
            field: index * 8 for index, field in enumerate(self.fields)
        }

    @property
    def size(self) -> int:
        return len(self.fields) * 8

    def offset_of(self, field: str) -> int:
        try:
            return self._offset_of[field]
        except KeyError:
            raise BPFError(
                f"context {self.name!r} has no field {field!r} "
                f"(available: {', '.join(self.fields)})"
            ) from None

    def valid_offset(self, offset: int) -> bool:
        return offset % 8 == 0 and 0 <= offset < self.size

    def pack(self, values: Dict[str, int]) -> List[int]:
        """Build the context value array for one invocation."""
        return [int(values.get(field, 0)) for field in self.fields]

    def __repr__(self) -> str:
        return f"ContextLayout({self.name}, {len(self.fields)} fields)"


class Program:
    """A loaded (or loadable) BPF program."""

    def __init__(
        self,
        name: str,
        insns: Sequence[Insn],
        ctx_layout: ContextLayout,
        maps: Optional[Sequence[BPFMap]] = None,
        tag_names: Optional[Sequence[str]] = None,
        source: str = "",
    ) -> None:
        self.name = name
        self.insns: List[Insn] = list(insns)
        self.ctx_layout = ctx_layout
        self.maps: List[BPFMap] = list(maps or [])
        self.tag_names: List[str] = list(tag_names or [])
        self.source = source
        #: trace() helper output: list of (sim_time, value).
        self.trace: List[Tuple[int, int]] = []
        #: Set by the verifier on success.
        self.verified = False
        #: Cumulative VM statistics.
        self.run_count = 0
        self.insns_executed = 0

    def __len__(self) -> int:
        return len(self.insns)

    def dis(self) -> str:
        return disassemble(self.insns)

    def __repr__(self) -> str:
        flag = "verified" if self.verified else "unverified"
        return f"Program({self.name!r}, {len(self.insns)} insns, {flag})"
