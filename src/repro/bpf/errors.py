"""Exceptions for the BPF substrate."""

from __future__ import annotations

__all__ = ["BPFError", "VerificationError", "RuntimeFault", "CompileError"]


class BPFError(Exception):
    """Base class for all BPF subsystem errors."""


class VerificationError(BPFError):
    """The verifier rejected a program.

    Carries the verifier log so callers (and the Concord "notify user"
    step) can show *why* the program was rejected.
    """

    def __init__(self, message: str, log=()) -> None:
        super().__init__(message)
        self.log = list(log)

    def full_report(self) -> str:
        return "\n".join([str(self)] + [f"  {line}" for line in self.log])


class RuntimeFault(BPFError):
    """A defense-in-depth runtime guard tripped during interpretation.

    A verified program should never hit one of these; they exist so a
    verifier bug cannot corrupt the simulated kernel (mirroring the real
    kernel's belt-and-suspenders checks).
    """


class CompileError(BPFError):
    """The restricted-Python frontend rejected the policy source."""

    def __init__(self, message: str, node=None) -> None:
        if node is not None and hasattr(node, "lineno"):
            message = f"line {node.lineno}: {message}"
        super().__init__(message)
