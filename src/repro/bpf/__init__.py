"""The eBPF-like substrate: ISA, VM, verifier, maps, helpers, frontend.

Pipeline (mirroring Figure 1 of the paper)::

    source (restricted Python)
      --compile_policy-->  Program (bytecode + maps + ctx layout)
      --Verifier.verify--> VerifierReport (or VerificationError + log)
      --VM.run-->          (r0, simulated cost in ns)
"""

from .errors import BPFError, CompileError, RuntimeFault, VerificationError
from .frontend import compile_policy
from .helpers import HELPERS, HELPER_IDS, HelperSpec, helper_by_name
from .insn import Insn, disassemble
from .maps import ArrayMap, BPFMap, HashMap, PerCPUArrayMap, PerCPUHashMap
from .program import ContextLayout, Program
from .verifier import Verifier, VerifierReport
from .vm import VM

__all__ = [
    "BPFError",
    "CompileError",
    "RuntimeFault",
    "VerificationError",
    "compile_policy",
    "HELPERS",
    "HELPER_IDS",
    "HelperSpec",
    "helper_by_name",
    "Insn",
    "disassemble",
    "ArrayMap",
    "BPFMap",
    "HashMap",
    "PerCPUArrayMap",
    "PerCPUHashMap",
    "ContextLayout",
    "Program",
    "Verifier",
    "VerifierReport",
    "VM",
]
