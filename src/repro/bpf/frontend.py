"""Restricted-Python frontend: how users author Concord policies.

The paper has users write policies in "C-style code, which is translated
into native code and is checked by an eBPF verifier".  Our equivalent
authoring surface is a restricted Python function compiled to the
simulated BPF ISA::

    def numa_policy(ctx):
        return ctx.curr_socket == ctx.shuffler_socket

    program = compile_policy(numa_policy_source, CMP_NODE_LAYOUT)

Supported subset (anything else raises :class:`CompileError`):

* integer/boolean constants, local variables, augmented assignment;
* ``ctx.<field>`` reads (fields come from the hook's context layout);
* ``+ - * // % & | ^ << >>``, unary ``-``/``not``, signed comparisons;
* short-circuit ``and`` / ``or`` (value semantics over ints, like C);
* ``if`` / ``elif`` / ``else``, conditional expressions, ``return``;
* ``for i in range(<const>)`` — unrolled at compile time (≤ 64 total
  iterations), which is exactly how bounded loops reach real verifiers;
* helper calls: ``cpu_id() numa_node() ktime() pid() priority()
  prandom() tag("name") trace(x)``;
* map operations on declared maps: ``m.lookup(k) m.update(k, v)
  m.delete(k) m.contains(k) m.add(k, delta)``.

All arithmetic is 64-bit two's-complement (comparisons are signed);
falling off the end returns 0.
"""

from __future__ import annotations

import ast
import textwrap
from typing import Dict, List, Optional

from .errors import CompileError
from .helpers import helper_by_name
from .insn import (
    Insn,
    OP_CALL,
    OP_EXIT,
    OP_JA,
    OP_LDC,
    OP_LDX,
    OP_LD_MAP,
    OP_MOV,
    OP_STX,
    R0,
    R1,
    R6,
    R7,
    R8,
    R9,
    R10,
    STACK_SIZE,
)
from .maps import BPFMap
from .program import ContextLayout, Program

__all__ = ["compile_policy", "MAX_UNROLL"]

MAX_UNROLL = 64

#: friendly name -> (helper name, fixed literal-string first arg?)
_HELPER_ALIASES = {
    "cpu_id": "get_smp_processor_id",
    "numa_node": "get_numa_node_id",
    "ktime": "ktime_get_ns",
    "pid": "get_current_pid",
    "priority": "get_task_priority",
    "prandom": "prandom_u32",
    "tag": "get_task_tag",
    "trace": "trace",
}

_MAP_METHODS = {
    "lookup": "map_lookup_elem",
    "update": "map_update_elem",
    "delete": "map_delete_elem",
    "contains": "map_contains",
    "add": "map_add",
}

_BINOPS = {
    ast.Add: "add",
    ast.Sub: "sub",
    ast.Mult: "mul",
    ast.FloorDiv: "div",
    ast.Mod: "mod",
    ast.BitAnd: "and",
    ast.BitOr: "or",
    ast.BitXor: "xor",
    ast.LShift: "lsh",
    ast.RShift: "rsh",
}

_CMP_JUMPS = {
    ast.Eq: "jeq",
    ast.NotEq: "jne",
    ast.Lt: "jslt",
    ast.LtE: "jsle",
    ast.Gt: "jsgt",
    ast.GtE: "jsge",
}

_U64 = (1 << 64) - 1


class _Compiler:
    def __init__(self, ctx_layout: ContextLayout, maps: Dict[str, BPFMap]) -> None:
        self.layout = ctx_layout
        self.map_names = list(maps)
        self.maps = maps
        self.insns: List[Insn] = []
        self.locals: Dict[str, int] = {}
        self.tag_names: List[str] = []
        self.temp_depth = 0
        self.max_temp = 0
        self.ctx_name = "ctx"
        self.unrolled = 0

    # -- emission helpers -------------------------------------------------
    def emit(self, insn: Insn) -> int:
        self.insns.append(insn)
        return len(self.insns) - 1

    def emit_jump_placeholder(self, op: str, dst=None, src=None, imm=0) -> int:
        """Emit a jump whose offset is patched later via :meth:`patch`."""
        return self.emit(Insn(op, dst=dst, src=src, off=0, imm=imm))

    def patch(self, index: int) -> None:
        """Point the placeholder at ``index`` to the next emitted insn."""
        off = len(self.insns) - index
        if off <= 0:
            raise CompileError("internal: non-forward jump generated")
        self.insns[index].off = off

    # -- stack management --------------------------------------------------
    def _local_offset(self, name: str) -> int:
        if name not in self.locals:
            index = len(self.locals)
            if index >= 16:
                # Temporaries live at slot 16 and below; capping locals
                # at 16 keeps the two regions disjoint.
                raise CompileError("too many locals (max 16)")
            self.locals[name] = -8 * (index + 1)
        return self.locals[name]

    def _temp_push(self, reg: int) -> int:
        self.temp_depth += 1
        self.max_temp = max(self.max_temp, self.temp_depth)
        offset = -8 * (len(self.locals) + 16 + self.temp_depth)
        if -offset > STACK_SIZE:
            raise CompileError("expression too deep")
        self.emit(Insn(OP_STX, dst=R10, src=reg, off=offset))
        return offset

    def _temp_pop(self, reg: int, offset: int) -> None:
        self.emit(Insn(OP_LDX, dst=reg, src=R10, off=offset))
        self.temp_depth -= 1

    # -- entry point -------------------------------------------------------
    def compile_function(self, func: ast.FunctionDef) -> None:
        args = func.args
        if (
            len(args.args) != 1
            or args.vararg
            or args.kwarg
            or args.kwonlyargs
            or args.posonlyargs
        ):
            raise CompileError(
                "policy function must take exactly one positional argument (the context)",
                func,
            )
        self.ctx_name = args.args[0].arg
        # Save the context pointer into callee-saved R6.
        self.emit(Insn(OP_MOV, dst=R6, src=R1))
        for stmt in func.body:
            self.compile_stmt(stmt)
        # Implicit `return 0`.
        self.emit(Insn(OP_LDC, dst=R0, imm=0))
        self.emit(Insn(OP_EXIT))

    # -- statements ---------------------------------------------------------
    def compile_stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, ast.Return):
            if stmt.value is None:
                self.emit(Insn(OP_LDC, dst=R0, imm=0))
            else:
                self.compile_expr(stmt.value)
                self.emit(Insn(OP_MOV, dst=R0, src=R7))
            self.emit(Insn(OP_EXIT))
        elif isinstance(stmt, ast.Assign):
            if len(stmt.targets) != 1 or not isinstance(stmt.targets[0], ast.Name):
                raise CompileError("only simple `name = expr` assignment", stmt)
            self.compile_expr(stmt.value)
            offset = self._local_offset(stmt.targets[0].id)
            self.emit(Insn(OP_STX, dst=R10, src=R7, off=offset))
        elif isinstance(stmt, ast.AugAssign):
            if not isinstance(stmt.target, ast.Name):
                raise CompileError("augmented assignment target must be a name", stmt)
            op = _BINOPS.get(type(stmt.op))
            if op is None:
                raise CompileError(f"unsupported operator {type(stmt.op).__name__}", stmt)
            self.compile_expr(stmt.value)
            offset = self._local_offset(stmt.target.id)
            self.emit(Insn(OP_LDX, dst=R8, src=R10, off=offset))
            self.emit(Insn(op, dst=R8, src=R7))
            self.emit(Insn(OP_STX, dst=R10, src=R8, off=offset))
        elif isinstance(stmt, ast.If):
            self.compile_expr(stmt.test)
            to_else = self.emit_jump_placeholder("jeq", dst=R7, imm=0)
            for inner in stmt.body:
                self.compile_stmt(inner)
            if stmt.orelse:
                to_end = self.emit_jump_placeholder(OP_JA)
                self.patch(to_else)
                for inner in stmt.orelse:
                    self.compile_stmt(inner)
                self.patch(to_end)
            else:
                self.patch(to_else)
        elif isinstance(stmt, ast.For):
            self._compile_for(stmt)
        elif isinstance(stmt, ast.Expr):
            # Expression statement (e.g. a bare map.update(...) call).
            self.compile_expr(stmt.value)
        elif isinstance(stmt, ast.Pass):
            pass
        else:
            raise CompileError(f"unsupported statement {type(stmt).__name__}", stmt)

    def _compile_for(self, stmt: ast.For) -> None:
        call = stmt.iter
        if (
            not isinstance(call, ast.Call)
            or not isinstance(call.func, ast.Name)
            or call.func.id != "range"
            or stmt.orelse
        ):
            raise CompileError("only `for i in range(<const>)` loops", stmt)
        bounds = []
        for arg in call.args:
            value = _const_int(arg)
            if value is None:
                raise CompileError("range() bounds must be integer constants", stmt)
            bounds.append(value)
        if len(bounds) == 1:
            start, stop, step = 0, bounds[0], 1
        elif len(bounds) == 2:
            start, stop, step = bounds[0], bounds[1], 1
        elif len(bounds) == 3:
            start, stop, step = bounds
        else:
            raise CompileError("range() takes 1-3 arguments", stmt)
        if step == 0:
            raise CompileError("range() step must be nonzero", stmt)
        if not isinstance(stmt.target, ast.Name):
            raise CompileError("loop variable must be a simple name", stmt)
        values = list(range(start, stop, step))
        self.unrolled += len(values)
        if self.unrolled > MAX_UNROLL:
            raise CompileError(
                f"loop unrolling exceeds {MAX_UNROLL} total iterations "
                "(the verifier requires bounded execution)",
                stmt,
            )
        offset = self._local_offset(stmt.target.id)
        for value in values:
            self.emit(Insn(OP_LDC, dst=R8, imm=value & _U64))
            self.emit(Insn(OP_STX, dst=R10, src=R8, off=offset))
            for inner in stmt.body:
                self.compile_stmt(inner)

    # -- expressions ----------------------------------------------------
    def compile_expr(self, expr: ast.expr) -> None:
        """Emit code leaving the expression value in R7."""
        if isinstance(expr, ast.Constant):
            value = expr.value
            if isinstance(value, bool):
                value = int(value)
            if not isinstance(value, int):
                raise CompileError(f"unsupported constant {value!r}", expr)
            self.emit(Insn(OP_LDC, dst=R7, imm=value & _U64))
        elif isinstance(expr, ast.Name):
            if expr.id not in self.locals:
                raise CompileError(f"undefined variable {expr.id!r}", expr)
            self.emit(Insn(OP_LDX, dst=R7, src=R10, off=self.locals[expr.id]))
        elif isinstance(expr, ast.Attribute):
            self._compile_ctx_read(expr)
        elif isinstance(expr, ast.BinOp):
            op = _BINOPS.get(type(expr.op))
            if op is None:
                raise CompileError(f"unsupported operator {type(expr.op).__name__}", expr)
            self.compile_expr(expr.left)
            temp = self._temp_push(R7)
            self.compile_expr(expr.right)
            self._temp_pop(R8, temp)
            self.emit(Insn(op, dst=R8, src=R7))
            self.emit(Insn(OP_MOV, dst=R7, src=R8))
        elif isinstance(expr, ast.UnaryOp):
            if isinstance(expr.op, ast.USub):
                self.compile_expr(expr.operand)
                self.emit(Insn("neg", dst=R7, imm=0))
            elif isinstance(expr.op, ast.Not):
                self.compile_expr(expr.operand)
                skip = self.emit_jump_placeholder("jeq", dst=R7, imm=0)
                self.emit(Insn(OP_LDC, dst=R7, imm=0))
                end = self.emit_jump_placeholder(OP_JA)
                self.patch(skip)
                self.emit(Insn(OP_LDC, dst=R7, imm=1))
                self.patch(end)
            elif isinstance(expr.op, ast.UAdd):
                self.compile_expr(expr.operand)
            else:
                raise CompileError("unsupported unary operator", expr)
        elif isinstance(expr, ast.Compare):
            self._compile_compare(expr)
        elif isinstance(expr, ast.BoolOp):
            self._compile_boolop(expr)
        elif isinstance(expr, ast.IfExp):
            self.compile_expr(expr.test)
            to_else = self.emit_jump_placeholder("jeq", dst=R7, imm=0)
            self.compile_expr(expr.body)
            to_end = self.emit_jump_placeholder(OP_JA)
            self.patch(to_else)
            self.compile_expr(expr.orelse)
            self.patch(to_end)
        elif isinstance(expr, ast.Call):
            self._compile_call(expr)
        else:
            raise CompileError(f"unsupported expression {type(expr).__name__}", expr)

    def _compile_ctx_read(self, expr: ast.Attribute) -> None:
        if not isinstance(expr.value, ast.Name) or expr.value.id != self.ctx_name:
            raise CompileError(
                f"attribute access only on the context argument {self.ctx_name!r}", expr
            )
        try:
            offset = self.layout.offset_of(expr.attr)
        except Exception as exc:
            raise CompileError(str(exc), expr) from exc
        self.emit(Insn(OP_LDX, dst=R7, src=R6, off=offset))

    def _compile_compare(self, expr: ast.Compare) -> None:
        if len(expr.ops) != 1:
            raise CompileError("chained comparisons are not supported; use `and`", expr)
        jump = _CMP_JUMPS.get(type(expr.ops[0]))
        if jump is None:
            raise CompileError(
                f"unsupported comparison {type(expr.ops[0]).__name__}", expr
            )
        self.compile_expr(expr.left)
        temp = self._temp_push(R7)
        self.compile_expr(expr.comparators[0])
        self._temp_pop(R8, temp)
        # lhs in R8, rhs in R7; produce 0/1 in R7.
        self.emit(Insn(OP_LDC, dst=R9, imm=1))
        taken = self.emit_jump_placeholder(jump, dst=R8, src=R7)
        self.emit(Insn(OP_LDC, dst=R9, imm=0))
        self.patch(taken)
        self.emit(Insn(OP_MOV, dst=R7, src=R9))

    def _compile_boolop(self, expr: ast.BoolOp) -> None:
        is_and = isinstance(expr.op, ast.And)
        placeholders = []
        for index, value in enumerate(expr.values):
            self.compile_expr(value)
            if index < len(expr.values) - 1:
                op = "jeq" if is_and else "jne"
                placeholders.append(self.emit_jump_placeholder(op, dst=R7, imm=0))
        for ph in placeholders:
            self.patch(ph)

    def _compile_call(self, expr: ast.Call) -> None:
        if expr.keywords:
            raise CompileError("keyword arguments are not supported", expr)
        # Map method?
        if isinstance(expr.func, ast.Attribute) and isinstance(expr.func.value, ast.Name):
            owner = expr.func.value.id
            if owner in self.maps:
                self._compile_map_call(expr, owner, expr.func.attr)
                return
            if owner != self.ctx_name:
                raise CompileError(f"unknown object {owner!r}", expr)
        if not isinstance(expr.func, ast.Name):
            raise CompileError("unsupported call target", expr)
        name = expr.func.id
        helper_name = _HELPER_ALIASES.get(name)
        if helper_name is None:
            raise CompileError(
                f"unknown function {name!r} (available: {', '.join(sorted(_HELPER_ALIASES))})",
                expr,
            )
        spec = helper_by_name(helper_name)
        assert spec is not None
        if name == "tag":
            if len(expr.args) != 1 or not (
                isinstance(expr.args[0], ast.Constant)
                and isinstance(expr.args[0].value, str)
            ):
                raise CompileError('tag() takes one literal string, e.g. tag("prio")', expr)
            tag = expr.args[0].value
            if tag not in self.tag_names:
                self.tag_names.append(tag)
            self.emit(Insn(OP_LDC, dst=R1, imm=self.tag_names.index(tag)))
            self.emit(Insn(OP_CALL, imm=spec.helper_id))
            self.emit(Insn(OP_MOV, dst=R7, src=R0))
            return
        if len(expr.args) != spec.nargs:
            raise CompileError(
                f"{name}() takes {spec.nargs} argument(s), got {len(expr.args)}", expr
            )
        temps = []
        for arg in expr.args:
            self.compile_expr(arg)
            temps.append(self._temp_push(R7))
        for index, temp in enumerate(temps):
            self.emit(Insn(OP_LDX, dst=R1 + index, src=R10, off=temp))
        self.temp_depth -= len(temps)
        self.emit(Insn(OP_CALL, imm=spec.helper_id))
        self.emit(Insn(OP_MOV, dst=R7, src=R0))

    def _compile_map_call(self, expr: ast.Call, map_name: str, method: str) -> None:
        helper_name = _MAP_METHODS.get(method)
        if helper_name is None:
            raise CompileError(
                f"maps support {', '.join(sorted(_MAP_METHODS))}; not {method!r}", expr
            )
        spec = helper_by_name(helper_name)
        assert spec is not None
        expected = spec.nargs - 1  # minus the map handle
        if len(expr.args) != expected:
            raise CompileError(
                f"{map_name}.{method}() takes {expected} argument(s)", expr
            )
        temps = []
        for arg in expr.args:
            self.compile_expr(arg)
            temps.append(self._temp_push(R7))
        self.emit(Insn(OP_LD_MAP, dst=R1, imm=self.map_names.index(map_name)))
        for index, temp in enumerate(temps):
            self.emit(Insn(OP_LDX, dst=R1 + 1 + index, src=R10, off=temp))
        self.temp_depth -= len(temps)
        self.emit(Insn(OP_CALL, imm=spec.helper_id))
        self.emit(Insn(OP_MOV, dst=R7, src=R0))


def _const_int(node: ast.expr) -> Optional[int]:
    if isinstance(node, ast.Constant) and isinstance(node.value, int):
        return int(node.value)
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.USub):
        inner = _const_int(node.operand)
        return None if inner is None else -inner
    return None


def compile_policy(
    source: str,
    ctx_layout: ContextLayout,
    maps: Optional[Dict[str, BPFMap]] = None,
    name: Optional[str] = None,
) -> Program:
    """Compile restricted-Python policy source into a :class:`Program`.

    ``source`` must contain exactly one function definition; ``maps``
    binds names the policy may reference to map objects.
    """
    maps = maps or {}
    try:
        tree = ast.parse(textwrap.dedent(source))
    except SyntaxError as exc:
        raise CompileError(f"syntax error: {exc}") from exc
    funcs = [node for node in tree.body if isinstance(node, ast.FunctionDef)]
    if len(funcs) != 1 or len(tree.body) != 1:
        raise CompileError("source must contain exactly one function definition")
    func = funcs[0]
    compiler = _Compiler(ctx_layout, maps)
    compiler.compile_function(func)
    return Program(
        name=name or func.name,
        insns=compiler.insns,
        ctx_layout=ctx_layout,
        maps=[maps[key] for key in compiler.map_names],
        tag_names=compiler.tag_names,
        source=source,
    )
