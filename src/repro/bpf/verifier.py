"""The BPF verifier: static safety proof before anything is loaded.

Mirrors the structure of the kernel verifier at the scale this
reproduction needs — "the verifier performs symbolic execution before
loading the native code into the kernel, such as memory access control
or allowing only whitelisted helper functions" (§4.2):

* **Termination** — all jumps must be forward, so every execution path
  is bounded by the program length.  (The restricted-Python frontend
  unrolls its constant-trip loops, matching how clang+verifier handle
  bounded loops in practice.)
* **Memory safety** — symbolic (abstract) interpretation tracks, per
  register and stack slot, whether it holds an uninitialized value, a
  scalar, a context pointer, a stack pointer, or a map handle.  Loads
  must hit the read-only context (at a valid field offset) or an
  initialized stack slot; stores may only hit the stack.
* **Helper discipline** — only whitelisted helpers, with the right
  argument count, and a map handle in R1 where required.  Callers (the
  Concord lock-safety layer) can narrow the whitelist per hook type.
* **Defined result** — R0 must hold an initialized scalar at every exit.

The verifier writes a human-readable log; on rejection the log rides
along in :class:`VerificationError` so the framework can "notify the
user of the verification outcome" (Figure 1, step 4).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

from .errors import VerificationError
from .helpers import HELPER_IDS
from .insn import (
    ALU_OPS,
    JMP_OPS,
    NR_REGS,
    OP_CALL,
    OP_EXIT,
    OP_JA,
    OP_LDC,
    OP_LD_MAP,
    OP_LDX,
    OP_MOV,
    OP_ST,
    OP_STX,
    R0,
    R1,
    R10,
    STACK_SIZE,
)
from .program import Program

__all__ = ["Verifier", "VerifierReport", "MAX_INSNS"]

MAX_INSNS = 4096

# Abstract value kinds.
UNINIT = "uninit"
SCALAR = "scalar"      # payload: known constant or None
PTR_CTX = "ptr_ctx"    # payload: byte offset from ctx base
PTR_STACK = "ptr_stack"  # payload: byte offset from stack top (<= 0)
MAP_HANDLE = "map"     # payload: map index
BOT = "bot"            # join of incompatible types: unusable

_AVal = Tuple  # (kind, payload)


def _join_val(a: _AVal, b: _AVal) -> _AVal:
    if a == b:
        return a
    if a[0] == b[0]:
        if a[0] == SCALAR:
            return (SCALAR, None)
        if a[0] in (PTR_CTX, PTR_STACK, MAP_HANDLE) and a[1] == b[1]:
            return a
        return (BOT, None)
    if UNINIT in (a[0], b[0]):
        return (UNINIT, None)
    return (BOT, None)


class _AbsState:
    """Abstract machine state at one program point."""

    __slots__ = ("regs", "stack")

    def __init__(self, regs, stack) -> None:
        self.regs: List[_AVal] = regs
        self.stack: List[_AVal] = stack

    @classmethod
    def entry(cls) -> "_AbsState":
        regs = [(UNINIT, None)] * NR_REGS
        regs[R1] = (PTR_CTX, 0)
        regs[R10] = (PTR_STACK, 0)
        stack = [(UNINIT, None)] * (STACK_SIZE // 8)
        return cls(regs, stack)

    def copy(self) -> "_AbsState":
        return _AbsState(list(self.regs), list(self.stack))

    def join(self, other: "_AbsState") -> Tuple["_AbsState", bool]:
        """Pointwise join; returns (state, changed)."""
        changed = False
        regs = list(self.regs)
        for i in range(NR_REGS):
            joined = _join_val(self.regs[i], other.regs[i])
            if joined != self.regs[i]:
                regs[i] = joined
                changed = True
        stack = list(self.stack)
        for i in range(len(stack)):
            joined = _join_val(self.stack[i], other.stack[i])
            if joined != self.stack[i]:
                stack[i] = joined
                changed = True
        return _AbsState(regs, stack), changed


class VerifierReport:
    """Outcome of a successful verification."""

    def __init__(self, program: Program, log: List[str], insn_count: int, max_path: int) -> None:
        self.program = program
        self.log = log
        self.insn_count = insn_count
        #: Upper bound on executed instructions for any input.
        self.max_path_insns = max_path

    def __repr__(self) -> str:
        return (
            f"VerifierReport({self.program.name!r}, insns={self.insn_count}, "
            f"max_path={self.max_path_insns})"
        )


class Verifier:
    """Static checker for :class:`Program` objects.

    Args:
        allowed_helpers: helper-name whitelist; ``None`` allows all
            registered helpers.  The Concord lock-safety layer narrows
            this per hook type.
        max_insns: program size limit.
    """

    def __init__(
        self,
        allowed_helpers: Optional[Sequence[str]] = None,
        max_insns: int = MAX_INSNS,
    ) -> None:
        self.allowed_helpers: Optional[Set[str]] = (
            set(allowed_helpers) if allowed_helpers is not None else None
        )
        self.max_insns = max_insns

    # ------------------------------------------------------------------
    def verify(self, program: Program) -> VerifierReport:
        log: List[str] = []
        insns = program.insns
        if not insns:
            raise VerificationError("empty program", log)
        if len(insns) > self.max_insns:
            raise VerificationError(
                f"program too large: {len(insns)} > {self.max_insns}", log
            )

        self._check_structure(program, log)

        # Forward-only jumps make the CFG a DAG ordered by pc: one pass
        # in pc order with state joins is a complete fixpoint.
        states: Dict[int, _AbsState] = {0: _AbsState.entry()}
        reachable = 0
        for pc, insn in enumerate(insns):
            state = states.get(pc)
            if state is None:
                log.append(f"{pc}: unreachable (dead code)")
                continue
            reachable += 1
            self._step(program, pc, insn, state, states, log)

        report = VerifierReport(program, log, len(insns), len(insns))
        program.verified = True
        log.append(f"verification OK: {reachable}/{len(insns)} insns reachable")
        return report

    # ------------------------------------------------------------------
    def _check_structure(self, program: Program, log: List[str]) -> None:
        insns = program.insns
        n = len(insns)
        for pc, insn in enumerate(insns):
            for reg in (insn.dst, insn.src):
                if reg is not None and not 0 <= reg < NR_REGS:
                    raise VerificationError(f"{pc}: register r{reg} does not exist", log)
            writes_dst = insn.op in ALU_OPS or insn.op in (OP_MOV, OP_LDC, OP_LDX, OP_LD_MAP)
            if writes_dst and insn.dst == R10:
                raise VerificationError(f"{pc}: write to frame pointer r10", log)
            if insn.op == OP_JA or insn.op in JMP_OPS:
                if insn.off <= 0:
                    raise VerificationError(
                        f"{pc}: backward or self jump (off={insn.off}) — "
                        "loops must be unrolled", log
                    )
                if pc + insn.off >= n:
                    raise VerificationError(f"{pc}: jump target out of bounds", log)
            if insn.op == OP_CALL:
                spec = HELPER_IDS.get(insn.imm)
                if spec is None:
                    raise VerificationError(f"{pc}: unknown helper #{insn.imm}", log)
                if self.allowed_helpers is not None and spec.name not in self.allowed_helpers:
                    raise VerificationError(
                        f"{pc}: helper {spec.name!r} not allowed for this hook type", log
                    )
            if insn.op == OP_LD_MAP and not 0 <= insn.imm < len(program.maps):
                raise VerificationError(f"{pc}: map index {insn.imm} not attached", log)
        if insns[-1].op not in (OP_EXIT, OP_JA) and insns[-1].op not in JMP_OPS:
            # Conservative: simplest guarantee that control cannot run off
            # the end is requiring the last instruction to be an exit (a
            # trailing jump would have been caught as out-of-bounds).
            if insns[-1].op != OP_EXIT:
                raise VerificationError("control flow can fall off the end", log)

    # ------------------------------------------------------------------
    def _step(
        self,
        program: Program,
        pc: int,
        insn,
        state: _AbsState,
        states: Dict[int, _AbsState],
        log: List[str],
    ) -> None:
        op = insn.op

        def use(reg: int, what: str = "operand") -> _AVal:
            val = state.regs[reg]
            if val[0] == UNINIT:
                raise VerificationError(f"{pc}: r{reg} used as {what} before init", log)
            if val[0] == BOT:
                raise VerificationError(
                    f"{pc}: r{reg} has incompatible types on merging paths", log
                )
            return val

        def flow_to(target: int, new_state: _AbsState) -> None:
            if target >= len(program.insns):
                raise VerificationError(f"{pc}: control flow runs off the end", log)
            existing = states.get(target)
            if existing is None:
                states[target] = new_state
            else:
                states[target], _ = existing.join(new_state)

        nxt = state.copy()

        if op == OP_MOV:
            if insn.src is not None:
                nxt.regs[insn.dst] = use(insn.src)
            else:
                nxt.regs[insn.dst] = (SCALAR, insn.imm)
        elif op == OP_LDC:
            nxt.regs[insn.dst] = (SCALAR, insn.imm)
        elif op == OP_LD_MAP:
            nxt.regs[insn.dst] = (MAP_HANDLE, insn.imm)
        elif op in ALU_OPS:
            dst_val = use(insn.dst, "ALU dst")
            rhs = use(insn.src, "ALU src") if insn.src is not None else (SCALAR, insn.imm)
            nxt.regs[insn.dst] = self._alu(pc, op, dst_val, rhs, log)
        elif op == OP_LDX:
            base = use(insn.src, "load base")
            nxt.regs[insn.dst] = self._check_load(program, pc, base, insn.off, state, log)
        elif op in (OP_STX, OP_ST):
            base = use(insn.dst, "store base")
            if op == OP_STX:
                stored = use(insn.src, "store value")
            else:
                stored = (SCALAR, insn.imm)
            self._check_store(pc, base, insn.off, stored, nxt, log)
        elif op == OP_CALL:
            spec = HELPER_IDS[insn.imm]
            for i in range(spec.nargs):
                arg = use(R1 + i, f"helper arg{i+1}")
                if i == 0 and spec.takes_map:
                    if arg[0] != MAP_HANDLE:
                        raise VerificationError(
                            f"{pc}: helper {spec.name!r} needs a map handle in r1", log
                        )
                elif arg[0] != SCALAR:
                    raise VerificationError(
                        f"{pc}: helper {spec.name!r} arg{i+1} must be a scalar, "
                        f"got {arg[0]}", log
                    )
            for i in range(1, 6):
                nxt.regs[i] = (UNINIT, None)
            nxt.regs[R0] = (SCALAR, None)
        elif op == OP_JA:
            flow_to(pc + insn.off, nxt)
            return
        elif op in JMP_OPS:
            lhs = use(insn.dst, "jump lhs")
            if insn.src is not None:
                rhs = use(insn.src, "jump rhs")
            else:
                rhs = (SCALAR, insn.imm)
            if lhs[0] != SCALAR or rhs[0] != SCALAR:
                raise VerificationError(f"{pc}: comparison on non-scalar values", log)
            flow_to(pc + insn.off, nxt.copy())
            flow_to(pc + 1, nxt)
            return
        elif op == OP_EXIT:
            result = state.regs[R0]
            if result[0] != SCALAR:
                raise VerificationError(
                    f"{pc}: exit with R0 {result[0]} (must be an initialized scalar)", log
                )
            return
        else:
            raise VerificationError(f"{pc}: illegal opcode {op!r}", log)

        flow_to(pc + 1, nxt)

    # ------------------------------------------------------------------
    def _alu(self, pc: int, op: str, dst: _AVal, rhs: _AVal, log) -> _AVal:
        # Pointer arithmetic: ptr +/- known-constant scalar only.
        if dst[0] in (PTR_CTX, PTR_STACK):
            if op not in ("add", "sub"):
                raise VerificationError(f"{pc}: {op} on a pointer", log)
            if rhs[0] != SCALAR or rhs[1] is None:
                raise VerificationError(
                    f"{pc}: pointer arithmetic needs a known constant", log
                )
            delta = rhs[1] if op == "add" else -rhs[1]
            return (dst[0], dst[1] + delta)
        if dst[0] == MAP_HANDLE or rhs[0] == MAP_HANDLE:
            raise VerificationError(f"{pc}: arithmetic on a map handle", log)
        if rhs[0] in (PTR_CTX, PTR_STACK):
            raise VerificationError(f"{pc}: pointer as ALU right-hand side", log)
        # scalar op scalar: constant-fold when both known.
        if dst[1] is not None and rhs[1] is not None:
            from .vm import _ALU_DISPATCH  # reuse exact semantics

            return (SCALAR, _ALU_DISPATCH[op](dst[1], rhs[1]))
        return (SCALAR, None)

    def _check_load(self, program: Program, pc: int, base: _AVal, off: int, state, log) -> _AVal:
        if base[0] == PTR_CTX:
            offset = base[1] + off
            if not program.ctx_layout.valid_offset(offset):
                raise VerificationError(
                    f"{pc}: context read at invalid offset {offset} "
                    f"(layout {program.ctx_layout.name}, size {program.ctx_layout.size})",
                    log,
                )
            return (SCALAR, None)
        if base[0] == PTR_STACK:
            slot = self._stack_slot(pc, base[1] + off, log)
            val = state.stack[slot]
            if val[0] == UNINIT:
                raise VerificationError(f"{pc}: read of uninitialized stack slot", log)
            if val[0] == BOT:
                raise VerificationError(f"{pc}: stack slot has conflicting types", log)
            return val
        raise VerificationError(f"{pc}: load from non-pointer ({base[0]})", log)

    def _check_store(self, pc: int, base: _AVal, off: int, stored: _AVal, nxt, log) -> None:
        if base[0] == PTR_CTX:
            raise VerificationError(f"{pc}: the context is read-only", log)
        if base[0] != PTR_STACK:
            raise VerificationError(f"{pc}: store to non-stack pointer ({base[0]})", log)
        if stored[0] not in (SCALAR,):
            raise VerificationError(
                f"{pc}: only scalars may be spilled to the stack (got {stored[0]})", log
            )
        slot = self._stack_slot(pc, base[1] + off, log)
        nxt.stack[slot] = stored

    @staticmethod
    def _stack_slot(pc: int, offset: int, log) -> int:
        # Stack offsets are relative to the top (R10): valid range
        # [-STACK_SIZE, -8], 8-byte aligned.
        if offset % 8 or not -STACK_SIZE <= offset <= -8:
            raise VerificationError(
                f"{pc}: stack access at invalid offset {offset}", log
            )
        return (offset + STACK_SIZE) // 8
