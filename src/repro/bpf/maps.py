"""BPF maps: the state store shared between programs and userspace.

The paper's policies keep their runtime state here — "we use eBPF helper
functions, such as CPU ID, NUMA ID and time along with its map data
structure to store information at runtime" (§4.2).  Userspace writes
configuration in (e.g. the set of prioritized TIDs), programs read and
update it on lock events, and profilers aggregate per-lock statistics
out.

Keys and values are 64-bit integers (the common case for lock policies;
real BPF's arbitrary byte blobs add nothing for this reproduction).
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

from .errors import BPFError, RuntimeFault

__all__ = ["BPFMap", "HashMap", "ArrayMap", "PerCPUArrayMap", "PerCPUHashMap"]

_U64 = (1 << 64) - 1


class BPFMap:
    """Base class.  Subclasses implement lookup/update/delete."""

    map_type = "abstract"

    def __init__(self, name: str, max_entries: int) -> None:
        if max_entries <= 0:
            raise BPFError(f"map {name!r}: max_entries must be positive")
        self.name = name
        self.max_entries = max_entries

    # The helper-facing API.  ``cpu`` carries the executing CPU for the
    # per-CPU variants; plain maps ignore it.
    def lookup(self, key: int, cpu: int = 0) -> Optional[int]:
        raise NotImplementedError

    def update(self, key: int, value: int, cpu: int = 0) -> None:
        raise NotImplementedError

    def delete(self, key: int, cpu: int = 0) -> bool:
        raise NotImplementedError

    # Userspace-side convenience (bcc-style dict access).
    def __getitem__(self, key: int) -> int:
        value = self.lookup(int(key))
        if value is None:
            raise KeyError(key)
        return value

    def __setitem__(self, key: int, value: int) -> None:
        self.update(int(key), int(value))

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name!r}, max={self.max_entries})"


class HashMap(BPFMap):
    """BPF_MAP_TYPE_HASH."""

    map_type = "hash"

    def __init__(self, name: str = "hash", max_entries: int = 1024) -> None:
        super().__init__(name, max_entries)
        self._data: Dict[int, int] = {}

    def lookup(self, key: int, cpu: int = 0) -> Optional[int]:
        return self._data.get(key & _U64)

    def update(self, key: int, value: int, cpu: int = 0) -> None:
        key &= _U64
        if key not in self._data and len(self._data) >= self.max_entries:
            raise RuntimeFault(f"map {self.name!r} full ({self.max_entries} entries)")
        self._data[key] = value & _U64

    def delete(self, key: int, cpu: int = 0) -> bool:
        return self._data.pop(key & _U64, None) is not None

    def items(self) -> Iterator[Tuple[int, int]]:
        return iter(sorted(self._data.items()))

    def __len__(self) -> int:
        return len(self._data)


class ArrayMap(BPFMap):
    """BPF_MAP_TYPE_ARRAY: fixed-size, zero-initialized, never deletes."""

    map_type = "array"

    def __init__(self, name: str = "array", max_entries: int = 64) -> None:
        super().__init__(name, max_entries)
        self._data: List[int] = [0] * max_entries

    def lookup(self, key: int, cpu: int = 0) -> Optional[int]:
        if 0 <= key < self.max_entries:
            return self._data[key]
        return None

    def update(self, key: int, value: int, cpu: int = 0) -> None:
        if not 0 <= key < self.max_entries:
            raise RuntimeFault(f"array map {self.name!r}: index {key} out of range")
        self._data[key] = value & _U64

    def delete(self, key: int, cpu: int = 0) -> bool:
        if 0 <= key < self.max_entries:
            self._data[key] = 0
            return True
        return False

    def items(self) -> Iterator[Tuple[int, int]]:
        return iter(enumerate(self._data))

    def __len__(self) -> int:
        return self.max_entries


class PerCPUArrayMap(BPFMap):
    """BPF_MAP_TYPE_PERCPU_ARRAY: one array per CPU, no cross-CPU sharing.

    Lock profilers use these so hot-path updates never contend.
    """

    map_type = "percpu_array"

    def __init__(self, name: str = "percpu_array", max_entries: int = 64, nr_cpus: int = 1) -> None:
        super().__init__(name, max_entries)
        self.nr_cpus = max(nr_cpus, 1)
        self._data: List[List[int]] = [[0] * max_entries for _ in range(self.nr_cpus)]

    def lookup(self, key: int, cpu: int = 0) -> Optional[int]:
        if 0 <= key < self.max_entries:
            return self._data[cpu % self.nr_cpus][key]
        return None

    def update(self, key: int, value: int, cpu: int = 0) -> None:
        if not 0 <= key < self.max_entries:
            raise RuntimeFault(f"percpu array {self.name!r}: index {key} out of range")
        self._data[cpu % self.nr_cpus][key] = value & _U64

    def delete(self, key: int, cpu: int = 0) -> bool:
        if 0 <= key < self.max_entries:
            self._data[cpu % self.nr_cpus][key] = 0
            return True
        return False

    def sum(self, key: int) -> int:
        """Userspace aggregation across CPUs (what bpftool/bcc do)."""
        if not 0 <= key < self.max_entries:
            raise KeyError(key)
        return sum(percpu[key] for percpu in self._data)


class PerCPUHashMap(BPFMap):
    """BPF_MAP_TYPE_PERCPU_HASH."""

    map_type = "percpu_hash"

    def __init__(self, name: str = "percpu_hash", max_entries: int = 1024, nr_cpus: int = 1) -> None:
        super().__init__(name, max_entries)
        self.nr_cpus = max(nr_cpus, 1)
        self._data: List[Dict[int, int]] = [{} for _ in range(self.nr_cpus)]

    def lookup(self, key: int, cpu: int = 0) -> Optional[int]:
        return self._data[cpu % self.nr_cpus].get(key & _U64)

    def update(self, key: int, value: int, cpu: int = 0) -> None:
        shard = self._data[cpu % self.nr_cpus]
        key &= _U64
        if key not in shard and len(shard) >= self.max_entries:
            raise RuntimeFault(f"percpu hash {self.name!r} full on cpu {cpu}")
        shard[key] = value & _U64

    def delete(self, key: int, cpu: int = 0) -> bool:
        return self._data[cpu % self.nr_cpus].pop(key & _U64, None) is not None

    def sum(self, key: int) -> int:
        key &= _U64
        return sum(shard.get(key, 0) for shard in self._data)
