"""Helper functions callable from BPF programs.

The subset of the kernel helper surface that lock policies need (the
paper cites "CPU ID, NUMA ID and time" plus map operations).  Each
helper has a simulated execution cost; helper-heavy programs therefore
cost more on the hook path, which is part of the overhead story the
evaluation measures.

Helper calling convention: arguments in R1..R5, result in R0.  Map
helpers take the map handle (materialized by ``ld_map``) in R1.
"""

from __future__ import annotations

from typing import Callable, Dict, List, NamedTuple, Optional

from .errors import RuntimeFault
from .maps import BPFMap

__all__ = ["HelperSpec", "HELPERS", "HELPER_IDS", "helper_by_name"]

_U64 = (1 << 64) - 1


class HelperSpec(NamedTuple):
    """Static description of one helper."""

    helper_id: int
    name: str
    nargs: int
    cost_ns: int
    #: fn(vmstate, args) -> int.  ``vmstate`` is the VM's execution
    #: context (task, engine, program, hook env).
    fn: Callable
    #: first argument must be a map handle
    takes_map: bool = False


def _h_get_smp_processor_id(vm, args):
    return vm.task.cpu_id if vm.task is not None else 0


def _h_get_numa_node_id(vm, args):
    return vm.task.numa_node if vm.task is not None else 0


def _h_ktime_get_ns(vm, args):
    return vm.engine.now if vm.engine is not None else 0


def _h_get_current_pid(vm, args):
    return vm.task.tid if vm.task is not None else 0


def _h_get_task_priority(vm, args):
    if vm.task is None:
        return 0
    return vm.task.priority & _U64


def _h_get_task_tag(vm, args):
    """Read a userspace annotation from the current task.

    The tag name is interned at load time; args[0] is the intern index.
    Returns 0 when the task carries no such tag — absent context reads
    as "no special treatment", never an error.
    """
    if vm.task is None:
        return 0
    index = args[0]
    names = vm.program.tag_names
    if not 0 <= index < len(names):
        raise RuntimeFault(f"tag index {index} out of range")
    return vm.task.tags.get(names[index], 0) & _U64


def _h_prandom_u32(vm, args):
    if vm.engine is None:
        return 4
    return vm.engine.rng.getrandbits(32)


def _require_map(vm, handle) -> BPFMap:
    if not isinstance(handle, BPFMap):
        raise RuntimeFault("map helper called without a map handle in R1")
    return handle


def _h_map_lookup_elem(vm, args):
    bpf_map = _require_map(vm, args[0])
    cpu = vm.task.cpu_id if vm.task is not None else 0
    value = bpf_map.lookup(args[1], cpu=cpu)
    return 0 if value is None else value


def _h_map_contains(vm, args):
    bpf_map = _require_map(vm, args[0])
    cpu = vm.task.cpu_id if vm.task is not None else 0
    return 1 if bpf_map.lookup(args[1], cpu=cpu) is not None else 0


def _h_map_update_elem(vm, args):
    bpf_map = _require_map(vm, args[0])
    cpu = vm.task.cpu_id if vm.task is not None else 0
    bpf_map.update(args[1], args[2], cpu=cpu)
    return 0


def _h_map_delete_elem(vm, args):
    bpf_map = _require_map(vm, args[0])
    cpu = vm.task.cpu_id if vm.task is not None else 0
    return 1 if bpf_map.delete(args[1], cpu=cpu) else 0


def _h_map_add(vm, args):
    """Atomic add-to-element (the __sync_fetch_and_add idiom).

    Profiling programs increment counters on every lock event; giving
    them a single fused helper keeps hook-path instruction counts honest.
    """
    bpf_map = _require_map(vm, args[0])
    cpu = vm.task.cpu_id if vm.task is not None else 0
    current = bpf_map.lookup(args[1], cpu=cpu) or 0
    bpf_map.update(args[1], (current + args[2]) & _U64, cpu=cpu)
    return current


def _h_trace(vm, args):
    vm.program.trace.append((vm.engine.now if vm.engine else 0, args[0]))
    return 0


HELPERS: List[HelperSpec] = [
    HelperSpec(1, "get_smp_processor_id", 0, 4, _h_get_smp_processor_id),
    HelperSpec(2, "get_numa_node_id", 0, 4, _h_get_numa_node_id),
    HelperSpec(3, "ktime_get_ns", 0, 15, _h_ktime_get_ns),
    HelperSpec(4, "get_current_pid", 0, 6, _h_get_current_pid),
    HelperSpec(5, "get_task_priority", 0, 6, _h_get_task_priority),
    HelperSpec(6, "get_task_tag", 1, 8, _h_get_task_tag),
    HelperSpec(7, "prandom_u32", 0, 10, _h_prandom_u32),
    HelperSpec(8, "map_lookup_elem", 2, 18, _h_map_lookup_elem, takes_map=True),
    HelperSpec(9, "map_update_elem", 3, 22, _h_map_update_elem, takes_map=True),
    HelperSpec(10, "map_delete_elem", 2, 20, _h_map_delete_elem, takes_map=True),
    HelperSpec(11, "map_contains", 2, 18, _h_map_contains, takes_map=True),
    HelperSpec(12, "map_add", 3, 24, _h_map_add, takes_map=True),
    HelperSpec(13, "trace", 1, 30, _h_trace),
]

HELPER_IDS: Dict[int, HelperSpec] = {spec.helper_id: spec for spec in HELPERS}
_BY_NAME: Dict[str, HelperSpec] = {spec.name: spec for spec in HELPERS}


def helper_by_name(name: str) -> Optional[HelperSpec]:
    return _BY_NAME.get(name)
