"""The BPF interpreter.

Executes a program against a packed context and returns ``(r0,
cost_ns)`` where the cost models interpretation on the hook path: a
fixed trampoline-side entry cost plus a per-instruction charge plus each
helper's own cost.  (The real kernel JITs programs; we expose the
per-instruction cost as a knob so the "revisit eBPF overhead" discussion
in §6 can be explored as an ablation.)

Runtime guards (instruction budget, memory bounds, type confusion) are
defense-in-depth: a verified program cannot trip them, and the test
suite asserts both halves of that statement.
"""

from __future__ import annotations

from typing import Any, List, Optional, Tuple

from ..faults import fault_point
from .errors import RuntimeFault
from .helpers import HELPER_IDS
from .insn import (
    ALU_OPS,
    JMP_OPS,
    NR_REGS,
    OP_CALL,
    OP_EXIT,
    OP_JA,
    OP_LDC,
    OP_LD_MAP,
    OP_LDX,
    OP_MOV,
    OP_ST,
    OP_STX,
    R0,
    R1,
    R10,
    SIGNED_JMPS,
    STACK_SIZE,
)
from .program import Program

__all__ = ["VM", "VMState", "DEFAULT_INSN_LIMIT"]

_U64 = (1 << 64) - 1
_SIGN = 1 << 63

DEFAULT_INSN_LIMIT = 4096

#: A context pointer value: base of the read-only ctx area.
_CTX_BASE = 1 << 62
#: Stack grows down from R10 == _STACK_TOP.
_STACK_TOP = 1 << 61


def _to_signed(value: int) -> int:
    return value - (1 << 64) if value & _SIGN else value


class VMState:
    """Execution context handed to helpers."""

    __slots__ = ("task", "engine", "program")

    def __init__(self, task, engine, program: Program) -> None:
        self.task = task
        self.engine = engine
        self.program = program


class VM:
    """Interprets verified programs.

    Args:
        entry_cost_ns: fixed cost of entering the program (register
            save/restore, dispatch).
        per_insn_ns: interpretation cost per executed instruction.
        insn_limit: runtime instruction budget (second line of defense
            behind the verifier's termination proof).
    """

    def __init__(
        self,
        entry_cost_ns: int = 20,
        per_insn_ns: int = 2,
        insn_limit: int = DEFAULT_INSN_LIMIT,
    ) -> None:
        self.entry_cost_ns = entry_cost_ns
        self.per_insn_ns = per_insn_ns
        self.insn_limit = insn_limit

    def run(
        self,
        program: Program,
        ctx_values: List[int],
        task=None,
        engine=None,
    ) -> Tuple[int, int]:
        """Execute; returns (r0, simulated_cost_ns)."""
        fault_point("bpf.vm.budget", default_exc=RuntimeFault, program=program.name)
        state = VMState(task, engine, program)
        regs: List[Any] = [0] * NR_REGS
        regs[R1] = _CTX_BASE
        regs[R10] = _STACK_TOP
        stack: List[Any] = [0] * (STACK_SIZE // 8)
        insns = program.insns
        nr_insns = len(insns)
        pc = 0
        executed = 0
        cost = self.entry_cost_ns

        while True:
            if pc < 0 or pc >= nr_insns:
                raise RuntimeFault(f"{program.name}: pc {pc} out of range")
            if executed >= self.insn_limit:
                raise RuntimeFault(
                    f"{program.name}: instruction budget exhausted ({self.insn_limit})"
                )
            insn = insns[pc]
            executed += 1
            op = insn.op

            if op == OP_MOV:
                regs[insn.dst] = regs[insn.src] if insn.src is not None else insn.imm & _U64
            elif op == OP_LDC:
                regs[insn.dst] = insn.imm & _U64
            elif op in _ALU_DISPATCH:
                rhs = regs[insn.src] if insn.src is not None else insn.imm & _U64
                regs[insn.dst] = _ALU_DISPATCH[op](regs[insn.dst], rhs)
            elif op == OP_LDX:
                regs[insn.dst] = self._load(program, ctx_values, stack, regs[insn.src], insn.off)
            elif op == OP_STX:
                self._store(stack, regs[insn.dst], insn.off, regs[insn.src])
            elif op == OP_ST:
                self._store(stack, regs[insn.dst], insn.off, insn.imm & _U64)
            elif op == OP_JA:
                pc += insn.off
                continue
            elif op in _JMP_DISPATCH:
                rhs = regs[insn.src] if insn.src is not None else insn.imm & _U64
                if _JMP_DISPATCH[op](regs[insn.dst], rhs):
                    pc += insn.off
                    continue
            elif op == OP_CALL:
                spec = HELPER_IDS.get(insn.imm)
                if spec is None:
                    raise RuntimeFault(f"{program.name}: unknown helper #{insn.imm}")
                args = [regs[R1 + i] for i in range(spec.nargs)]
                fault_point(
                    "bpf.helper",
                    default_exc=RuntimeFault,
                    program=program.name,
                    helper=spec.name,
                )
                result = spec.fn(state, args)
                regs[R0] = result & _U64 if isinstance(result, int) else result
                for i in range(1, 6):
                    regs[i] = 0  # caller-saved registers are clobbered
                cost += spec.cost_ns
            elif op == OP_LD_MAP:
                if not 0 <= insn.imm < len(program.maps):
                    raise RuntimeFault(f"{program.name}: bad map index {insn.imm}")
                regs[insn.dst] = program.maps[insn.imm]
            elif op == OP_EXIT:
                break
            else:
                raise RuntimeFault(f"{program.name}: illegal opcode {op!r}")
            pc += 1

        cost += executed * self.per_insn_ns
        program.run_count += 1
        program.insns_executed += executed
        result = regs[R0]
        if not isinstance(result, int):
            raise RuntimeFault(f"{program.name}: R0 holds a non-scalar at exit")
        return result & _U64, cost

    # ------------------------------------------------------------------
    @staticmethod
    def _load(program: Program, ctx_values, stack, base, off: int):
        if not isinstance(base, int):
            raise RuntimeFault("load from a non-pointer value")
        addr = base + off
        if _CTX_BASE <= addr < _CTX_BASE + len(ctx_values) * 8:
            rel = addr - _CTX_BASE
            if rel % 8:
                raise RuntimeFault("unaligned context read")
            return ctx_values[rel // 8]
        if _STACK_TOP - STACK_SIZE <= addr < _STACK_TOP:
            rel = addr - (_STACK_TOP - STACK_SIZE)
            if rel % 8:
                raise RuntimeFault("unaligned stack read")
            return stack[rel // 8]
        raise RuntimeFault(f"load from invalid address {hex(addr)}")

    @staticmethod
    def _store(stack, base, off: int, value) -> None:
        if not isinstance(base, int):
            raise RuntimeFault("store to a non-pointer value")
        addr = base + off
        if _STACK_TOP - STACK_SIZE <= addr < _STACK_TOP:
            rel = addr - (_STACK_TOP - STACK_SIZE)
            if rel % 8:
                raise RuntimeFault("unaligned stack write")
            stack[rel // 8] = value
            return
        raise RuntimeFault(f"store to invalid address {hex(addr)} (context is read-only)")


# ----------------------------------------------------------------------
# ALU / JMP semantics (u64 with eBPF quirks: div/mod by zero -> 0)
# ----------------------------------------------------------------------
def _need_int(value):
    if not isinstance(value, int):
        raise RuntimeFault("ALU on a non-scalar value")
    return value


_ALU_DISPATCH = {
    "add": lambda a, b: (_need_int(a) + _need_int(b)) & _U64,
    "sub": lambda a, b: (_need_int(a) - _need_int(b)) & _U64,
    "mul": lambda a, b: (_need_int(a) * _need_int(b)) & _U64,
    "div": lambda a, b: (_need_int(a) // b) & _U64 if _need_int(b) else 0,
    "mod": lambda a, b: (_need_int(a) % b) & _U64 if _need_int(b) else _need_int(a),
    "and": lambda a, b: (_need_int(a) & _need_int(b)) & _U64,
    "or": lambda a, b: (_need_int(a) | _need_int(b)) & _U64,
    "xor": lambda a, b: (_need_int(a) ^ _need_int(b)) & _U64,
    "lsh": lambda a, b: (_need_int(a) << (_need_int(b) & 63)) & _U64,
    "rsh": lambda a, b: (_need_int(a) >> (_need_int(b) & 63)) & _U64,
    "arsh": lambda a, b: (_to_signed(_need_int(a)) >> (_need_int(b) & 63)) & _U64,
    "neg": lambda a, b: (-_need_int(a)) & _U64,
}
assert set(_ALU_DISPATCH) == set(ALU_OPS)

_JMP_DISPATCH = {
    "jeq": lambda a, b: a == b,
    "jne": lambda a, b: a != b,
    "jgt": lambda a, b: _need_int(a) > _need_int(b),
    "jge": lambda a, b: _need_int(a) >= _need_int(b),
    "jlt": lambda a, b: _need_int(a) < _need_int(b),
    "jle": lambda a, b: _need_int(a) <= _need_int(b),
    "jsgt": lambda a, b: _to_signed(_need_int(a)) > _to_signed(_need_int(b)),
    "jsge": lambda a, b: _to_signed(_need_int(a)) >= _to_signed(_need_int(b)),
    "jslt": lambda a, b: _to_signed(_need_int(a)) < _to_signed(_need_int(b)),
    "jsle": lambda a, b: _to_signed(_need_int(a)) <= _to_signed(_need_int(b)),
    "jset": lambda a, b: bool(_need_int(a) & _need_int(b)),
}
assert set(_JMP_DISPATCH) == set(JMP_OPS)
