"""Storage integrity: checksummed records, snapshots, scrub, repair.

The journal replay everything above rests on (daemon recovery, fleet
halt-and-revert, quorum commits) used to *trust* its bytes; this
package makes the trust earned:

* :mod:`repro.storage.record` — every durable record framed with a
  CRC32 + monotonic sequence number (v2 envelope; v1 legacy lines read
  transparently), plus the ``storage.corrupt.*`` bit-flip injection;
* :mod:`repro.storage.snapshot` — checkpoint/compaction: fold the
  committed prefix into a checksummed snapshot, replay snapshot + tail;
* :mod:`repro.storage.scrub` — the :class:`Scrubber`: checksum scrub,
  cross-site anti-entropy digests, and quorum-peer repair.

``scrub`` is imported lazily (it leans on the replication layer, which
itself frames records through this package).
"""

from .record import (
    RECORD_VERSION,
    RecordCorruption,
    canonical,
    decode_record,
    encode_record,
    entries_digest,
    flip_byte,
    maybe_corrupt,
    record_crc,
)
from .snapshot import (
    SNAPSHOT_VERSION,
    SnapshotCorruption,
    decode_snapshot,
    encode_snapshot,
    fold_entries,
    read_snapshot_file,
    write_snapshot_file,
)

__all__ = [
    "RECORD_VERSION",
    "RecordCorruption",
    "SNAPSHOT_VERSION",
    "ScrubFinding",
    "ScrubReport",
    "Scrubber",
    "SnapshotCorruption",
    "canonical",
    "decode_record",
    "decode_snapshot",
    "encode_record",
    "encode_snapshot",
    "entries_digest",
    "flip_byte",
    "fold_entries",
    "maybe_corrupt",
    "read_snapshot_file",
    "record_crc",
    "write_snapshot_file",
]


def __getattr__(name):
    if name in ("Scrubber", "ScrubReport", "ScrubFinding"):
        from . import scrub

        return getattr(scrub, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
