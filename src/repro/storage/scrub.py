"""The scrubber: checksum verification and anti-entropy replica repair.

Checksums only pay off if something *reads* them before the bad copy is
needed.  The :class:`Scrubber` is that reader — the background integrity
pass a real storage system runs on a cadence:

* **checksum scrub** — every framed record of a file-backed journal
  (and its snapshot), or of every replica site's log, is re-verified
  against its CRC32 and its sequence position;
* **anti-entropy** — sites of a replica group additionally compare
  content-level digests of their committed prefixes (the RepCRec-style
  "compare replicas, don't just trust catch-up" pass), so a site whose
  records all verify but *diverged* from its peers is still caught;
* **repair** — a corrupt or diverged site is rebuilt byte-for-byte from
  quorum peers via :meth:`ReplicaGroup.repair_site`; an unreplicated
  journal has no peers, so its findings surface to the caller (the
  health monitor escalates, the coordinator quarantines + salvages).

Scrub results land in three places: the returned :class:`ScrubReport`,
each site's ``last_scrub`` verdict (surfaced by ``ReplicaGroup.health``
/ ``describe``), and — when a fleet journal is wired in — journaled
``scrub-failed`` / ``scrub-repaired`` events, best-effort like every
other fleet journal write.

The ``storage.corrupt.digest`` fault site fires *here*, on the digest
read: it models the scrubber itself mis-reading a copy, which must lead
at worst to a spurious (idempotent) repair, never to damage.
"""

from __future__ import annotations

from typing import Any, Dict, List, NamedTuple, Optional, Tuple

from ..faults import SITE_STORAGE_CORRUPT_DIGEST, fault_point
from .record import RecordCorruption, decode_record, entries_digest
from .snapshot import (
    SnapshotCorruption,
    decode_snapshot,
    fold_entries,
    read_snapshot_file,
)

__all__ = ["ScrubFinding", "ScrubReport", "Scrubber"]


class ScrubFinding(NamedTuple):
    """One integrity violation found by a scrub pass."""

    target: str  #: what is rotten: a site name or a journal path
    kind: str  #: "record" | "snapshot" | "sequence" | "digest" | "tail"
    detail: str
    seq: Optional[int] = None  #: sequence number, for site records
    line: Optional[int] = None  #: physical line number, for file journals

    def __str__(self) -> str:
        where = f" seq {self.seq}" if self.seq is not None else ""
        where = f" line {self.line}" if self.line is not None else where
        return f"{self.target}{where}: {self.kind}: {self.detail}"


class ScrubReport(NamedTuple):
    """The outcome of scrubbing one store (a journal or a group)."""

    target: str
    checked: int  #: records whose checksums were verified
    findings: Tuple[ScrubFinding, ...]
    repaired: Tuple[str, ...] = ()  #: site names rebuilt from peers

    @property
    def ok(self) -> bool:
        return not self.findings

    @property
    def healed(self) -> bool:
        """Every finding's target was repaired."""
        bad = {f.target for f in self.findings}
        return bool(bad) and bad <= set(self.repaired)

    def describe(self) -> str:
        if self.ok:
            return f"scrub {self.target}: ok ({self.checked} records)"
        rows = [f"scrub {self.target}: {len(self.findings)} finding(s)"]
        rows.extend(f"  {finding}" for finding in self.findings)
        if self.repaired:
            rows.append(f"  repaired: {', '.join(self.repaired)}")
        return "\n".join(rows)


class Scrubber:
    """Verify checksums and cross-site digests; repair from quorum.

    Args:
        journal: optional fleet journal for ``scrub-failed`` /
            ``scrub-repaired`` events (best-effort appends).
        repair: rebuild corrupt/diverged sites from quorum peers
            in-place during :meth:`scrub_group`.  Off, the scrubber only
            observes — the operator (or a test) repairs explicitly.
    """

    def __init__(self, journal=None, repair: bool = True) -> None:
        self.journal = journal
        self.repair = repair
        self.scrubs = 0
        self.repairs = 0
        #: target -> most recent report.
        self.last: Dict[str, ScrubReport] = {}

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    def scrub_member(self, member) -> ScrubReport:
        """Scrub whatever store backs one fleet member."""
        group = getattr(member, "replica_group", None)
        journal = getattr(member, "journal", None)
        if group is None:
            group = getattr(journal, "group", None)
        if group is not None:
            return self.scrub_group(group)
        if journal is not None and getattr(journal, "path", None) is not None:
            return self.scrub_journal(journal)
        return self._done(
            ScrubReport(target=getattr(member, "name", "<member>"), checked=0, findings=())
        )

    # ------------------------------------------------------------------
    # File-backed journals
    # ------------------------------------------------------------------
    def scrub_journal(self, journal) -> ScrubReport:
        """Re-verify every framed line (and the snapshot) of a
        file-backed journal against the raw bytes on disk — never the
        journal's in-memory cache; the cache is exactly what a scrub
        must not trust."""
        import os

        path = journal.path
        member = getattr(journal, "member", None)
        target = path if member is None else f"{path} (member {member})"
        findings: List[ScrubFinding] = []
        checked = 0
        prev_seq = 0

        snapshot_path = getattr(journal, "snapshot_path", None)
        if snapshot_path is not None:
            blob = read_snapshot_file(snapshot_path)
            if blob is not None:
                try:
                    _, prev_seq = decode_snapshot(blob)
                    checked += 1
                except SnapshotCorruption as exc:
                    findings.append(
                        ScrubFinding(target=snapshot_path, kind="snapshot", detail=str(exc))
                    )

        if journal._fh is not None:
            journal._fh.flush()
        if path is not None and os.path.exists(path):
            with open(path, "rb") as fh:
                data = fh.read()
            if data and not data.endswith(b"\n"):
                findings.append(
                    ScrubFinding(
                        target=path,
                        kind="tail",
                        detail="final line is not newline-terminated (torn write)",
                    )
                )
            for lineno, raw in enumerate(data.split(b"\n"), start=1):
                line = raw.decode("utf-8", errors="replace")
                if not line.strip():
                    continue
                try:
                    seq, _ = decode_record(line)
                except RecordCorruption as exc:
                    findings.append(
                        ScrubFinding(target=path, kind="record", detail=str(exc), line=lineno)
                    )
                    continue
                checked += 1
                if seq is None:
                    continue  # v1 legacy line: nothing to verify
                if seq <= prev_seq:
                    findings.append(
                        ScrubFinding(
                            target=path,
                            kind="sequence",
                            detail=f"seq {seq} does not advance past {prev_seq}",
                            line=lineno,
                        )
                    )
                prev_seq = max(prev_seq, seq)
        report = ScrubReport(target=target, checked=checked, findings=tuple(findings))
        self._journal_verdict(report)
        return self._done(report)

    # ------------------------------------------------------------------
    # Replica groups
    # ------------------------------------------------------------------
    def scrub_group(self, group) -> ScrubReport:
        """Checksum every site's committed records, compare prefix
        digests across sites, repair casualties from quorum peers."""
        from ..replication.site import ReplicationError

        findings: List[ScrubFinding] = []
        checked = 0
        digests: Dict[str, int] = {}
        for site in group.sites:
            site_findings = self._scrub_site(site, group.commit_index)
            checked += sum(1 for seq in site.log if seq <= group.commit_index)
            if site_findings:
                findings.extend(site_findings)
                site.last_scrub = f"corrupt: {site_findings[0].detail}"
                continue
            site.last_scrub = "ok"
            if site.last_seq >= group.commit_index:
                # A complete prefix is comparable; a lagging site is
                # merely behind (catch-up's job), not diverged.
                digests[site.name] = self._digest_read(site, group.commit_index)
        findings.extend(self._compare_digests(group, digests))

        repaired: List[str] = []
        if self.repair:
            for name in sorted({f.target for f in findings if f.target != group.name}):
                try:
                    group.repair_site(name, cause="scrub")
                except ReplicationError:
                    continue  # no clean quorum peer; the finding stands
                repaired.append(name)
                self.repairs += 1
        report = ScrubReport(
            target=group.name,
            checked=checked,
            findings=tuple(findings),
            repaired=tuple(repaired),
        )
        self._journal_verdict(report)
        return self._done(report)

    def _scrub_site(self, site, commit_index: int) -> List[ScrubFinding]:
        findings: List[ScrubFinding] = []
        base = getattr(site, "base", None)
        if base is not None:
            try:
                decode_snapshot(base)
            except SnapshotCorruption as exc:
                findings.append(
                    ScrubFinding(target=site.name, kind="snapshot", detail=str(exc))
                )
        for seq in sorted(site.log):
            if seq > commit_index:
                continue  # uncommitted residue; election truncates it
            raw = site.log[seq]
            if isinstance(raw, dict):
                continue  # legacy in-memory record: no checksum to verify
            try:
                got, _ = decode_record(raw)
            except RecordCorruption as exc:
                findings.append(
                    ScrubFinding(target=site.name, kind="record", detail=str(exc), seq=seq)
                )
                continue
            if got is not None and got != seq:
                findings.append(
                    ScrubFinding(
                        target=site.name,
                        kind="sequence",
                        detail=f"record claims seq {got} but is stored at {seq}",
                        seq=seq,
                    )
                )
        return findings

    def _digest_read(self, site, commit_index: int) -> int:
        """One site's committed-prefix content digest, as the scrubber
        reads it — the ``storage.corrupt.digest`` site models this read
        going bad, which must cause at worst a harmless repair.

        The prefix is folded before digesting: folding is deterministic
        and idempotent, so a site holding a compaction snapshot and one
        still holding the raw records it folded digest identically —
        representation differences are not divergence.  (A difference
        folding erases is by the fold's contract replay-invisible.)
        """
        digest = entries_digest(fold_entries(site.committed_entries(commit_index)))
        try:
            fault_point(
                SITE_STORAGE_CORRUPT_DIGEST,
                default_exc=_BadDigestRead,
                replica=site.name,
            )
        except _BadDigestRead:
            digest ^= 0x1
        return digest

    def _compare_digests(self, group, digests: Dict[str, int]) -> List[ScrubFinding]:
        if len(digests) < 2:
            return []  # nothing to compare against
        tally: Dict[int, List[str]] = {}
        for name, digest in digests.items():
            tally.setdefault(digest, []).append(name)
        # Majority wins; a tie is broken toward the leader's copy, then
        # deterministically by site name.
        leader = group.leader.name

        def weight(item):
            _, names = item
            return (len(names), leader in names, min(names))

        authoritative = max(tally.items(), key=weight)[0]
        return [
            ScrubFinding(
                target=name,
                kind="digest",
                detail=(
                    f"committed prefix digest {digests[name]:#010x} diverges "
                    f"from quorum {authoritative:#010x}"
                ),
            )
            for name in sorted(digests)
            if digests[name] != authoritative
        ]

    # ------------------------------------------------------------------
    def _journal_verdict(self, report: ScrubReport) -> None:
        if report.ok or self.journal is None:
            return
        from ..controlplane.journal import JournalError

        entries: List[Dict[str, Any]] = [
            {
                "kind": "fleet",
                "event": "scrub-failed",
                "target": report.target,
                "findings": [str(f) for f in report.findings],
            }
        ]
        if report.repaired:
            entries.append(
                {
                    "kind": "fleet",
                    "event": "scrub-repaired",
                    "target": report.target,
                    "sites": list(report.repaired),
                }
            )
        for entry in entries:
            try:
                self.journal.append(entry)
            except JournalError:
                pass  # best-effort, like every fleet journal write

    def _done(self, report: ScrubReport) -> ScrubReport:
        self.scrubs += 1
        self.last[report.target] = report
        return report


class _BadDigestRead(Exception):
    """Internal: the digest fault site fired on this read."""
