"""Checkpoint snapshots: fold a committed journal prefix, checksummed.

A journal that is never truncated grows without bound — heartbeats
alone make that acute at fleet scale.  Compaction folds the committed
prefix into a **semantics-preserving** entry list (:func:`fold_entries`)
and seals it in a checksummed snapshot blob; recovery then replays
snapshot + log tail and reconstructs exactly the state replaying the
uncompacted log would have.

What folding keeps, per entry kind (everything replay still needs):

* ``client`` — the first registration per client id (replay dedups);
* ``submission``/``transition`` — only the *latest* submission per
  policy name plus the transitions that followed it, in order (replay
  overwrites earlier records for a reused name, so the dropped history
  was unreachable anyway; the surviving chain replays every legal
  transition the record actually took);
* ``heartbeat`` — the last one per member (liveness is a high-water
  mark, not a history);
* ``fleet`` — the tail from the most recent ``plan`` anchor onward
  (that is the window :meth:`FleetCoordinator.recover` scans), plus any
  ``revert-debt`` raised before the anchor and not yet drained before
  it — outstanding debt must survive compaction or a quarantined
  member's revert would be forgotten;
* anything else — preserved verbatim, in order (unknown kinds are
  replay no-ops today, but compaction must not bet on that).

The snapshot blob is one canonical-JSON document with a CRC32 over its
payload; a flipped byte anywhere fails :func:`decode_snapshot` with
:class:`SnapshotCorruption`.  File-backed journals write it atomically
(temp file + fsync + rename), so a crash mid-compaction leaves either
the old snapshot or the new one, never a torn hybrid.
"""

from __future__ import annotations

import json
import os
import zlib
from typing import Any, Dict, List, Optional, Tuple

from .record import canonical

__all__ = [
    "SNAPSHOT_VERSION",
    "SnapshotCorruption",
    "decode_snapshot",
    "encode_snapshot",
    "fold_entries",
    "read_snapshot_file",
    "write_snapshot_file",
]

SNAPSHOT_VERSION = 1


class SnapshotCorruption(ValueError):
    """A snapshot blob failed validation (bad JSON, mangled envelope,
    or checksum mismatch)."""


# ----------------------------------------------------------------------
# Folding
# ----------------------------------------------------------------------
def fold_entries(entries: List[Dict[str, Any]]) -> List[Dict[str, Any]]:
    """Fold a committed entry prefix into its minimal replay-equivalent."""
    clients: List[Dict[str, Any]] = []
    seen_clients = set()
    #: policy name -> entry block (submission + subsequent transitions).
    #: A re-submission resets the block: replay overwrites the record.
    policy_order: List[str] = []
    policies: Dict[str, List[Dict[str, Any]]] = {}
    heartbeat_order: List[Any] = []
    heartbeats: Dict[Any, Dict[str, Any]] = {}
    fleet: List[Dict[str, Any]] = []
    preserved: List[Dict[str, Any]] = []
    baseline: Optional[Dict[str, Any]] = None

    for entry in entries:
        kind = entry.get("kind")
        if kind == "client":
            key = entry.get("client")
            if key not in seen_clients:
                seen_clients.add(key)
                clients.append(entry)
        elif kind == "submission":
            name = entry.get("name")
            if name not in policies:
                policy_order.append(name)
            policies[name] = [entry]
        elif kind == "transition":
            name = entry.get("policy")
            if name not in policies:
                # No submission in the prefix (torn history): keep the
                # chain anyway so ``last_transition`` still answers.
                policy_order.append(name)
                policies[name] = []
            policies[name].append(entry)
        elif kind == "heartbeat":
            key = entry.get("member")
            if key not in heartbeats:
                heartbeat_order.append(key)
            heartbeats[key] = entry
        elif kind == "fleet":
            fleet.append(entry)
        elif kind == "baseline":
            # Learned-baseline entries carry the full state each time:
            # last-wins is replay-equivalent, so keep only the newest.
            baseline = entry
        else:
            preserved.append(entry)

    folded: List[Dict[str, Any]] = list(clients)
    for name in policy_order:
        folded.extend(policies[name])
    folded.extend(preserved)
    if baseline is not None:
        folded.append(baseline)
    folded.extend(_fold_fleet(fleet))
    folded.extend(heartbeats[key] for key in heartbeat_order)
    return [dict(entry) for entry in folded]


def _fold_fleet(fleet: List[Dict[str, Any]]) -> List[Dict[str, Any]]:
    """Keep the latest rollout's window plus pre-anchor outstanding debt."""
    anchor = None
    for index, entry in enumerate(fleet):
        if entry.get("event") == "plan":
            anchor = index
    head = fleet if anchor is None else fleet[:anchor]
    tail = [] if anchor is None else fleet[anchor:]
    outstanding: Dict[Tuple[str, str], Dict[str, Any]] = {}
    for entry in head:
        key = (str(entry.get("kernel")), str(entry.get("rollout")))
        if entry.get("event") == "revert-debt":
            outstanding.setdefault(key, entry)
        elif entry.get("event") == "debt-drained":
            outstanding.pop(key, None)
    return list(outstanding.values()) + tail


# ----------------------------------------------------------------------
# Blob encoding
# ----------------------------------------------------------------------
def encode_snapshot(entries: List[Dict[str, Any]], last_seq: int) -> str:
    """Seal folded entries into one checksummed snapshot blob."""
    payload = {"entries": entries, "last_seq": last_seq}
    crc = zlib.crc32(canonical(payload).encode("utf-8")) & 0xFFFFFFFF
    return canonical({"crc": crc, "s": payload, "v": SNAPSHOT_VERSION})


def decode_snapshot(blob: str) -> Tuple[List[Dict[str, Any]], int]:
    """Validate and unpack a snapshot blob -> ``(entries, last_seq)``."""
    try:
        obj = json.loads(blob)
    except ValueError:
        raise SnapshotCorruption("unparseable snapshot (not JSON)") from None
    if not isinstance(obj, dict) or obj.get("v") != SNAPSHOT_VERSION:
        raise SnapshotCorruption("mangled snapshot envelope")
    payload = obj.get("s")
    if not isinstance(payload, dict):
        raise SnapshotCorruption("mangled snapshot payload")
    crc = zlib.crc32(canonical(payload).encode("utf-8")) & 0xFFFFFFFF
    if obj.get("crc") != crc:
        raise SnapshotCorruption("snapshot checksum mismatch")
    entries = payload.get("entries")
    last_seq = payload.get("last_seq")
    if not isinstance(entries, list) or not isinstance(last_seq, int):
        raise SnapshotCorruption("mangled snapshot payload")
    return [dict(entry) for entry in entries], last_seq


# ----------------------------------------------------------------------
# File backing
# ----------------------------------------------------------------------
def write_snapshot_file(path: str, blob: str) -> None:
    """Atomically persist a snapshot blob (temp + fsync + rename)."""
    tmp = path + ".tmp"
    with open(tmp, "w", encoding="utf-8") as fh:
        fh.write(blob)
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, path)


def read_snapshot_file(path: str) -> Optional[str]:
    """The snapshot blob at ``path``, or ``None`` if none exists."""
    if not os.path.exists(path):
        return None
    with open(path, "r", encoding="utf-8") as fh:
        return fh.read()
