"""Checksummed record framing for the policy store.

Every durable record — a :class:`~repro.controlplane.journal.\
PolicyJournal` line, a :class:`~repro.replication.site.ReplicaSite` log
entry — is framed as a **v2 envelope**: one canonical-JSON line carrying
the payload, a monotonic sequence number, and a CRC32 computed over
``"<seq>:<canonical payload>"``.  The checksum binds the sequence number
to the payload, so neither a flipped payload byte nor a record replayed
at the wrong position verifies.

v1 (legacy) lines — plain JSON entry dicts with no envelope — decode
transparently: :func:`decode_record` returns them with ``seq=None`` and
no checksum to verify, which is exactly the trust level they were
written at.  The envelope fingerprint (``crc``/``v``, or ``seq`` *and*
``d`` together) decides which format a line claims to be; a v2 line
whose single flipped byte mangles even the fingerprint keys still
carries the remaining markers, so it is validated strictly and the flip
is caught rather than being mistaken for a legacy record.

Bit-flip fault injection lives here too: :func:`maybe_corrupt` consults
the ``storage.corrupt.*`` sites and, when a rule fires, flips one byte
of the record *after* the checksum was computed — the write still
reports success, modeling silent media rot rather than a failed I/O.
"""

from __future__ import annotations

import json
import zlib
from typing import Any, Dict, Iterable, Optional, Tuple

from ..faults import fault_point

__all__ = [
    "RECORD_VERSION",
    "RecordCorruption",
    "canonical",
    "decode_record",
    "encode_record",
    "entries_digest",
    "flip_byte",
    "maybe_corrupt",
    "record_crc",
]

#: Current on-disk record format.  v1 is an unframed JSON entry line.
RECORD_VERSION = 2


class RecordCorruption(ValueError):
    """A framed record failed validation: unparseable bytes, a mangled
    envelope, a checksum mismatch, or a sequence number that does not
    match its position.  Low-level by design — the journal and the
    replica site convert it into their own typed errors."""


def canonical(payload: Any) -> str:
    """The canonical JSON serialization checksums are computed over.

    ``sort_keys`` plus tight separators make the round trip
    deterministic: re-serializing a parsed payload reproduces the exact
    bytes the writer checksummed.
    """
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def record_crc(seq: int, entry: Dict[str, Any]) -> int:
    return zlib.crc32(f"{seq}:{canonical(entry)}".encode("utf-8")) & 0xFFFFFFFF


def encode_record(seq: int, entry: Dict[str, Any]) -> str:
    """Frame one entry as a v2 checksummed record line (no newline)."""
    return canonical(
        {"crc": record_crc(seq, entry), "d": entry, "seq": seq, "v": RECORD_VERSION}
    )


def _claims_envelope(obj: Dict[str, Any]) -> bool:
    # A single byte flip can mangle at most one envelope key, so a v2
    # record always retains enough fingerprint to be validated strictly.
    return "crc" in obj or "v" in obj or ("seq" in obj and "d" in obj)


def decode_record(line: str) -> Tuple[Optional[int], Dict[str, Any]]:
    """Parse one record line -> ``(seq, entry)``.

    v1 legacy lines return ``(None, entry)``; anything claiming the v2
    envelope is validated strictly and raises :class:`RecordCorruption`
    on any deviation.
    """
    try:
        obj = json.loads(line)
    except ValueError:
        raise RecordCorruption("unparseable record (not JSON)") from None
    if not isinstance(obj, dict):
        raise RecordCorruption("record is not a JSON object")
    if not _claims_envelope(obj):
        return None, obj  # v1: a bare entry dict, written before checksums
    seq = obj.get("seq")
    entry = obj.get("d")
    if (
        obj.get("v") != RECORD_VERSION
        or not isinstance(seq, int)
        or isinstance(seq, bool)
        or not isinstance(entry, dict)
    ):
        raise RecordCorruption("mangled v2 envelope")
    if obj.get("crc") != record_crc(seq, entry):
        raise RecordCorruption(f"checksum mismatch at seq {seq}")
    return seq, entry


def entries_digest(entries: Iterable[Dict[str, Any]]) -> int:
    """Content-level rolling CRC32 over decoded entries, in order.

    This is the anti-entropy comparison unit: it digests *payloads*, not
    stored bytes, so two sites holding the same committed prefix agree
    even when one has folded part of it into a snapshot.
    """
    digest = 0
    for entry in entries:
        digest = zlib.crc32(canonical(entry).encode("utf-8"), digest)
    return digest & 0xFFFFFFFF


# ----------------------------------------------------------------------
# Bit-flip injection
# ----------------------------------------------------------------------
class _InjectedBitFlip(Exception):
    """Internal: a ``storage.corrupt.*`` rule fired at this write."""


def flip_byte(data: str, salt: int = 0) -> str:
    """Deterministically corrupt one byte of ``data`` (XOR 0x01).

    The flipped position is derived from ``salt`` (typically the record
    sequence number) so a sampled chaos plan reproduces bit-for-bit.
    XOR 0x01 never produces a newline from any byte canonical JSON
    emits, so a corrupted journal line stays one physical line.
    """
    raw = bytearray(data.encode("utf-8"))
    if not raw:
        return data
    raw[salt % len(raw)] ^= 0x01
    return raw.decode("utf-8", errors="replace")


def maybe_corrupt(site: str, data: str, salt: int = 0, **ctx: Any) -> str:
    """Consult a ``storage.corrupt.*`` fault site; return ``data`` with
    one byte flipped if a rule fires, unchanged otherwise.  The caller
    writes whatever comes back and reports success either way — silent
    corruption is the model."""
    try:
        fault_point(site, default_exc=_InjectedBitFlip, **ctx)
    except _InjectedBitFlip:
        return flip_byte(data, salt)
    return data
