"""Crash-safe persistence for the control plane: the policy journal.

An **append-only JSON-lines journal** of everything a restarted daemon
needs to resume: client registrations, submissions (specs serialized
down to source + map names), and every :class:`PolicyRecord` transition
with its rollout artifacts (target/canary locks, livepatch names).  The
canonical location is ``<bpffs>/concord/journal.jsonl`` — pinned state
and the journal that explains it live under the same root — which the
simulation maps to a host path (or to memory for tests).

Crash model: each entry is one line, flushed (and fsynced when backed
by a real file) before :meth:`append` returns, so a crash can lose at
most the entry being written.  :meth:`entries` therefore tolerates a
truncated or corrupt *final* line — that is exactly the artifact a
mid-write crash leaves — but treats corruption anywhere else as the
error it is.

What is deliberately **not** journaled: profiler reports and SLO
verdicts (reproducible measurements, not state), and implementation
*factories* (code does not survive a process; recovery rebuilds them
from ``impl_name`` via the daemon's ``impl_registry``).
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, List, Optional

from ..faults import fault_point

__all__ = ["PolicyJournal", "JournalError", "BPFFS_JOURNAL_PATH"]

#: Where the journal conceptually lives in the simulated kernel.
BPFFS_JOURNAL_PATH = "/sys/fs/bpf/concord/journal.jsonl"


class JournalError(Exception):
    """The journal file is unreadable or corrupt beyond the crash model."""


class PolicyJournal:
    """Append-only JSONL store; file-backed or in-memory.

    Args:
        path: host filesystem path.  ``None`` keeps the journal in
            memory — same API, no crash safety, handy for tests.  The
            file is opened in append mode, so constructing a journal on
            an existing path *continues* it (that is what a restarted
            daemon does before calling ``recover()``).
    """

    def __init__(self, path: Optional[str] = None) -> None:
        self.path = path
        self._memory: List[Dict[str, Any]] = []
        self._fh = None
        if path is not None:
            directory = os.path.dirname(path)
            if directory:
                os.makedirs(directory, exist_ok=True)
            self._trim_torn_tail()
            self._fh = open(path, "a", encoding="utf-8")

    def _trim_torn_tail(self) -> None:
        """Truncate a non-newline-terminated final line before appending.

        A crash between write and newline leaves a torn tail.  Replay
        alone would tolerate it — but a *restarted* daemon appends first
        (this constructor opens in append mode), and gluing a fresh
        entry onto the fragment forges a corrupt **mid-file** line,
        which replay correctly refuses as beyond the crash model.  So
        the torn fragment is cut at open time, back to the last newline
        (or to empty, if no complete line ever made it out).
        """
        if self.path is None or not os.path.exists(self.path):
            return
        with open(self.path, "rb") as fh:
            data = fh.read()
        if not data or data.endswith(b"\n"):
            return
        keep = data.rfind(b"\n") + 1
        with open(self.path, "r+b") as fh:
            fh.truncate(keep)

    # ------------------------------------------------------------------
    def append(self, entry: Dict[str, Any]) -> None:
        """Durably append one entry (flush + fsync before returning).

        Two fault sites bracket the durability boundary:
        ``controlplane.journal.append`` fires *before* anything is
        written (the entry is lost), ``controlplane.journal.fsync``
        fires after the write but before it is durable (the entry is on
        disk yet the caller sees a failure — the classic fsync-gap
        double-report a recovery replay must tolerate).
        """
        if "kind" not in entry:
            raise JournalError("journal entries need a 'kind'")
        fault_point(
            "controlplane.journal.append",
            default_exc=JournalError,
            kind=entry.get("kind"),
            policy=entry.get("policy") or entry.get("rollout"),
        )
        if self.path is not None:
            if self._fh is None:  # reopened after close()
                self._trim_torn_tail()
                self._fh = open(self.path, "a", encoding="utf-8")
            self._fh.write(json.dumps(entry, sort_keys=True) + "\n")
            self._fh.flush()
            fault_point(
                "controlplane.journal.fsync",
                default_exc=JournalError,
                kind=entry.get("kind"),
            )
            os.fsync(self._fh.fileno())
        else:
            self._memory.append(dict(entry))
            fault_point(
                "controlplane.journal.fsync",
                default_exc=JournalError,
                kind=entry.get("kind"),
            )

    def entries(self) -> List[Dict[str, Any]]:
        """Every journaled entry, oldest first.

        A corrupt/truncated *last* line (the mid-write-crash artifact)
        is dropped; corruption elsewhere raises :class:`JournalError`.
        """
        fault_point(
            "controlplane.journal.replay",
            default_exc=JournalError,
            path=self.path or "<memory>",
        )
        if self.path is None:
            return [dict(entry) for entry in self._memory]
        if self._fh is not None:
            self._fh.flush()
        if not os.path.exists(self.path):
            return []
        with open(self.path, "r", encoding="utf-8") as fh:
            lines = fh.read().splitlines()
        parsed: List[Dict[str, Any]] = []
        for index, line in enumerate(lines):
            if not line.strip():
                continue
            try:
                parsed.append(json.loads(line))
            except ValueError:
                if index == len(lines) - 1:
                    break  # torn final write; everything before it holds
                raise JournalError(
                    f"{self.path}: corrupt journal line {index + 1} "
                    f"(not the final line — this is not a torn write)"
                ) from None
        return parsed

    def heartbeat(self, ts: int, **extra: Any) -> None:
        """Append a liveness marker — the health monitor's "journal shard
        still appendable" probe.

        A heartbeat is deliberately contentless: recovery replay ignores
        unknown kinds, so a journal full of heartbeats recovers exactly
        like an empty one.  The ``fleet.health.heartbeat`` site models
        the shard's storage going dark independently of the daemon.
        """
        fault_point(
            "fleet.health.heartbeat",
            default_exc=JournalError,
            path=self.path or "<memory>",
        )
        entry: Dict[str, Any] = {"kind": "heartbeat", "ts": ts}
        entry.update(extra)
        self.append(entry)

    # ------------------------------------------------------------------
    def last_transition(self, policy: str) -> Optional[Dict[str, Any]]:
        """The most recent transition entry for ``policy``, or None."""
        found = None
        for entry in self.entries():
            if entry.get("kind") == "transition" and entry.get("policy") == policy:
                found = entry
        return found

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __len__(self) -> int:
        return len(self.entries())

    def __repr__(self) -> str:
        where = self.path if self.path is not None else "<memory>"
        return f"PolicyJournal({where!r}, {len(self)} entries)"
