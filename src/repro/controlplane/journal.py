"""Crash-safe persistence for the control plane: the policy journal.

An **append-only JSON-lines journal** of everything a restarted daemon
needs to resume: client registrations, submissions (specs serialized
down to source + map names), and every :class:`PolicyRecord` transition
with its rollout artifacts (target/canary locks, livepatch names).  The
canonical location is ``<bpffs>/concord/journal.jsonl`` — pinned state
and the journal that explains it live under the same root — which the
simulation maps to a host path (or to memory for tests).

Integrity: every line is framed by :mod:`repro.storage.record` — a v2
envelope carrying a CRC32 and a monotonic sequence number — so replay
distinguishes a torn write from silent rot; journals written before the
framing (v1, bare entry dicts) read transparently.  :meth:`compact`
folds the whole committed log into a checksummed snapshot beside the
file (``<path>.snapshot``) and truncates the log; replay then walks
snapshot + tail and reconstructs exactly what the uncompacted log
would have.

Crash model: each entry is one line, flushed (and fsynced when backed
by a real file) before :meth:`append` returns, so a crash can lose at
most the entry being written.  :meth:`entries` therefore tolerates a
truncated or corrupt *final* line — that is exactly the artifact a
mid-write crash leaves — but treats corruption anywhere else as
:class:`JournalCorruption`: beyond the crash model, report it (physical
line, shard path, owning member) rather than guess.  :meth:`salvage` is
the deliberate, best-effort answer for an unreplicated shard: keep the
valid prefix, set the rotten suffix aside as ``<path>.corrupt``, and
let the fleet layer book what was stranded as revert debt.

What is deliberately **not** journaled: profiler reports and SLO
verdicts (reproducible measurements, not state), and implementation
*factories* (code does not survive a process; recovery rebuilds them
from ``impl_name`` via the daemon's ``impl_registry``).
"""

from __future__ import annotations

import os
from typing import Any, Dict, List, Optional, Tuple

from ..faults import (
    SITE_STORAGE_CORRUPT_LINE,
    SITE_STORAGE_CORRUPT_SNAPSHOT,
    fault_point,
)
from ..storage.record import (
    RecordCorruption,
    decode_record,
    encode_record,
    maybe_corrupt,
)
from ..storage.snapshot import (
    SnapshotCorruption,
    decode_snapshot,
    encode_snapshot,
    fold_entries,
    read_snapshot_file,
    write_snapshot_file,
)

__all__ = [
    "PolicyJournal",
    "JournalError",
    "JournalCorruption",
    "BPFFS_JOURNAL_PATH",
]

#: Where the journal conceptually lives in the simulated kernel.
BPFFS_JOURNAL_PATH = "/sys/fs/bpf/concord/journal.jsonl"


class JournalError(Exception):
    """The journal file is unreadable or corrupt beyond the crash model."""


class JournalCorruption(JournalError):
    """Corruption that is provably not a torn write: a mangled mid-file
    line, a checksum mismatch, a sequence regression, or a rotten
    snapshot.  Carries enough context to act on — the physical line, the
    shard path, and (in fleet context) the owning member — because the
    fleet layer's answer is targeted (quarantine *this* shard, salvage
    *this* prefix), not a stack trace."""

    def __init__(
        self,
        message: str,
        path: Optional[str] = None,
        line: Optional[int] = None,
        member: Optional[str] = None,
    ) -> None:
        super().__init__(message)
        self.path = path
        self.line = line
        self.member = member


class PolicyJournal:
    """Append-only JSONL store; file-backed or in-memory.

    Args:
        path: host filesystem path.  ``None`` keeps the journal in
            memory — same API, no crash safety, handy for tests.  The
            file is opened in append mode, so constructing a journal on
            an existing path *continues* it (that is what a restarted
            daemon does before calling ``recover()``).
        member: optional owning fleet-member name, stamped into
            corruption errors so a fleet operator knows *whose* shard
            rotted (:class:`FleetMember` sets it on registration).
    """

    def __init__(self, path: Optional[str] = None, member: Optional[str] = None) -> None:
        self.path = path
        self.member = member
        self._memory: List[Dict[str, Any]] = []
        self._fh = None
        #: Parsed snapshot+log entries, revalidated against the file
        #: stat signature on every read — recovery, health, and debt
        #: paths all call :meth:`entries`, and re-parsing the whole file
        #: each time was O(file) per call.
        self._cache: Optional[List[Dict[str, Any]]] = None
        self._cache_sig: Optional[Tuple[int, int, int, int]] = None
        self._next_seq: Optional[int] = 1 if path is None else None
        if path is not None:
            directory = os.path.dirname(path)
            if directory:
                os.makedirs(directory, exist_ok=True)
            self._trim_torn_tail()
            self._fh = open(path, "a", encoding="utf-8")

    @property
    def snapshot_path(self) -> Optional[str]:
        """Where :meth:`compact` seals the folded prefix."""
        return None if self.path is None else self.path + ".snapshot"

    def _trim_torn_tail(self) -> None:
        """Truncate a non-newline-terminated final line before appending.

        A crash between write and newline leaves a torn tail.  Replay
        alone would tolerate it — but a *restarted* daemon appends first
        (this constructor opens in append mode), and gluing a fresh
        entry onto the fragment forges a corrupt **mid-file** line,
        which replay correctly refuses as beyond the crash model.  So
        the torn fragment is cut at open time, back to the last newline
        (or to empty, if no complete line ever made it out) — found by
        scanning backwards from the end, block by block; a torn tail is
        one short line, so this reads one block, not the whole file.
        """
        if self.path is None or not os.path.exists(self.path):
            return
        size = os.path.getsize(self.path)
        if size == 0:
            return
        keep = 0
        with open(self.path, "rb") as fh:
            fh.seek(size - 1)
            if fh.read(1) == b"\n":
                return
            pos = size - 1  # bytes [pos, size) are known newline-free
            block = 4096
            while pos > 0:
                start = max(0, pos - block)
                fh.seek(start)
                cut = fh.read(pos - start).rfind(b"\n")
                if cut != -1:
                    keep = start + cut + 1
                    break
                pos = start
        with open(self.path, "r+b") as fh:
            fh.truncate(keep)

    # ------------------------------------------------------------------
    def append(self, entry: Dict[str, Any]) -> None:
        """Durably append one checksummed entry (flush + fsync).

        Two fault sites bracket the durability boundary:
        ``controlplane.journal.append`` fires *before* anything is
        written (the entry is lost), ``controlplane.journal.fsync``
        fires after the write but before it is durable (the entry is on
        disk yet the caller sees a failure — the classic fsync-gap
        double-report a recovery replay must tolerate).  A third,
        ``storage.corrupt.line``, is different in kind: it flips one
        byte of the framed line *after* the checksum was computed and
        the append still succeeds — silent media rot, the scrubber's
        problem to find.
        """
        if "kind" not in entry:
            raise JournalError("journal entries need a 'kind'")
        fault_point(
            "controlplane.journal.append",
            default_exc=JournalError,
            kind=entry.get("kind"),
            policy=entry.get("policy") or entry.get("rollout"),
        )
        if self.path is not None:
            if self._fh is None:  # reopened after close()
                self._trim_torn_tail()
                self._fh = open(self.path, "a", encoding="utf-8")
                self._cache = None
            seq = self._claim_seq()
            line = encode_record(seq, entry)
            written = maybe_corrupt(
                SITE_STORAGE_CORRUPT_LINE,
                line,
                salt=seq,
                path=self.path,
                kind=entry.get("kind"),
            )
            self._fh.write(written + "\n")
            self._fh.flush()
            fault_point(
                "controlplane.journal.fsync",
                default_exc=JournalError,
                kind=entry.get("kind"),
            )
            os.fsync(self._fh.fileno())
            if written is line and self._cache is not None:
                self._cache.append(dict(entry))
            else:
                self._cache = None  # our own write rotted; disk is truth
            self._cache_sig = self._sig()
        else:
            self._claim_seq()
            self._memory.append(dict(entry))
            fault_point(
                "controlplane.journal.fsync",
                default_exc=JournalError,
                kind=entry.get("kind"),
            )

    def entries(self) -> List[Dict[str, Any]]:
        """Every journaled entry, oldest first (snapshot, then log).

        A corrupt/truncated *last* line (the mid-write-crash artifact)
        is dropped; corruption elsewhere — a mangled mid-file line, a
        checksum or sequence violation, a rotten snapshot — raises
        :class:`JournalCorruption`.
        """
        fault_point(
            "controlplane.journal.replay",
            default_exc=JournalError,
            path=self.path or "<memory>",
        )
        if self.path is None:
            return [dict(entry) for entry in self._memory]
        return [dict(entry) for entry in self._refresh()]

    def _refresh(self) -> List[Dict[str, Any]]:
        """Serve the cache when the files are unchanged; re-parse (and
        re-derive the next sequence number) when they are not."""
        if self._fh is not None:
            self._fh.flush()
        sig = self._sig()
        if self._cache is None or sig != self._cache_sig:
            parsed, last_seq = self._load()
            self._cache = parsed
            self._cache_sig = sig
            self._next_seq = max(self._next_seq or 1, last_seq + 1)
        return self._cache

    def _sig(self) -> Tuple[int, int, int, int]:
        def stat(path: Optional[str]) -> Tuple[int, int]:
            try:
                st = os.stat(path)
            except (OSError, TypeError):
                return (-1, -1)
            return (st.st_size, st.st_mtime_ns)

        return stat(self.path) + stat(self.snapshot_path)

    def _claim_seq(self) -> int:
        if self._next_seq is None:
            self._refresh()
        seq = self._next_seq
        self._next_seq = seq + 1
        return seq

    def _member_tag(self) -> str:
        return f" (member {self.member})" if self.member else ""

    def _load(self) -> Tuple[List[Dict[str, Any]], int]:
        """Parse snapshot + log from disk -> ``(entries, last_seq)``."""
        parsed: List[Dict[str, Any]] = []
        prev_seq = 0
        blob = read_snapshot_file(self.snapshot_path)
        if blob is not None:
            try:
                parsed, prev_seq = decode_snapshot(blob)
            except SnapshotCorruption as exc:
                raise JournalCorruption(
                    f"{self.snapshot_path}: corrupt snapshot{self._member_tag()}: {exc}",
                    path=self.snapshot_path,
                    member=self.member,
                ) from None
        if not os.path.exists(self.path):
            return parsed, prev_seq
        with open(self.path, "r", encoding="utf-8") as fh:
            lines = fh.read().split("\n")
        last = 0  # physical number of the last non-blank line
        for lineno, line in enumerate(lines, start=1):
            if line.strip():
                last = lineno
        for lineno, line in enumerate(lines, start=1):
            if not line.strip():
                continue
            try:
                seq, entry = decode_record(line)
            except RecordCorruption as exc:
                if lineno == last:
                    break  # torn final write; everything before it holds
                raise JournalCorruption(
                    f"{self.path}: corrupt journal line {lineno}"
                    f"{self._member_tag()}: {exc} "
                    f"(not the final line — this is not a torn write)",
                    path=self.path,
                    line=lineno,
                    member=self.member,
                ) from None
            if seq is not None:
                if seq <= prev_seq:
                    raise JournalCorruption(
                        f"{self.path}: journal line {lineno}{self._member_tag()}: "
                        f"seq {seq} does not advance past {prev_seq} "
                        f"(not a torn write — sequence numbers only grow)",
                        path=self.path,
                        line=lineno,
                        member=self.member,
                    )
                prev_seq = seq
            parsed.append(entry)
        return parsed, prev_seq

    # ------------------------------------------------------------------
    # Compaction & salvage
    # ------------------------------------------------------------------
    def compact(self) -> Dict[str, int]:
        """Fold the whole journaled prefix into a checksummed snapshot
        and truncate the log.

        Everything appended to an unreplicated journal is committed by
        definition, so the fold covers the full current view (existing
        snapshot + log).  The snapshot is written atomically (temp +
        fsync + rename) before the log is truncated, so a crash at any
        point leaves a replayable store.  Sequence numbers keep counting
        across compactions — the snapshot records the high-water mark.
        """
        before = self.entries()  # refuses (raises) on a corrupt store
        folded = fold_entries(before)
        if self.path is None:
            self._memory = [dict(entry) for entry in folded]
            return {"before": len(before), "after": len(folded)}
        last_seq = (self._next_seq or 1) - 1
        blob = encode_snapshot(folded, last_seq)
        blob = maybe_corrupt(
            SITE_STORAGE_CORRUPT_SNAPSHOT,
            blob,
            salt=last_seq,
            path=self.snapshot_path,
        )
        write_snapshot_file(self.snapshot_path, blob)
        if self._fh is not None:
            self._fh.close()
        with open(self.path, "w", encoding="utf-8"):
            pass  # the log's content now lives in the snapshot
        self._fh = open(self.path, "a", encoding="utf-8")
        self._cache = [dict(entry) for entry in folded]
        self._cache_sig = self._sig()
        return {"before": len(before), "after": len(folded), "last_seq": last_seq}

    def salvage(self) -> Dict[str, Any]:
        """Best-effort recovery of a corrupt shard's valid prefix.

        Everything up to the first integrity violation is kept; the
        rotten suffix is set aside as ``<path>.corrupt`` (evidence, not
        deleted), and a corrupt snapshot likewise.  This is a deliberate
        data-loss admission — the caller (the fleet coordinator) owes
        the stranded state a revert-debt booking; the journal's own job
        is only to make the loss explicit and the survivor replayable.
        """
        if self.path is None:
            return {"kept": len(self._memory), "dropped": 0, "snapshot_ok": True}
        if self._fh is not None:
            self._fh.close()
            self._fh = None
        report: Dict[str, Any] = {
            "kept": 0,
            "dropped": 0,
            "snapshot_ok": True,
            "line": None,
        }
        parsed: List[Dict[str, Any]] = []
        prev_seq = 0
        blob = read_snapshot_file(self.snapshot_path)
        if blob is not None:
            try:
                parsed, prev_seq = decode_snapshot(blob)
            except SnapshotCorruption:
                report["snapshot_ok"] = False
                os.replace(self.snapshot_path, self.snapshot_path + ".corrupt")
                parsed, prev_seq = [], 0
        good_lines: List[str] = []
        bad_line: Optional[int] = None
        if os.path.exists(self.path):
            with open(self.path, "r", encoding="utf-8") as fh:
                lines = fh.read().split("\n")
            for lineno, line in enumerate(lines, start=1):
                if not line.strip():
                    continue
                try:
                    seq, entry = decode_record(line)
                    if seq is not None and seq <= prev_seq:
                        raise RecordCorruption(
                            f"seq {seq} does not advance past {prev_seq}"
                        )
                except RecordCorruption:
                    bad_line = lineno
                    report["line"] = lineno
                    report["dropped"] = sum(
                        1 for rest in lines[lineno - 1 :] if rest.strip()
                    )
                    break
                if seq is not None:
                    prev_seq = seq
                parsed.append(entry)
                good_lines.append(line)
            if bad_line is not None:
                os.replace(self.path, self.path + ".corrupt")
                with open(self.path, "w", encoding="utf-8") as fh:
                    for line in good_lines:
                        fh.write(line + "\n")
                    fh.flush()
                    os.fsync(fh.fileno())
        self._fh = open(self.path, "a", encoding="utf-8")
        self._cache = parsed
        self._cache_sig = self._sig()
        self._next_seq = prev_seq + 1
        report["kept"] = len(parsed)
        return report

    def heartbeat(self, ts: int, **extra: Any) -> None:
        """Append a liveness marker — the health monitor's "journal shard
        still appendable" probe.

        A heartbeat is deliberately contentless: recovery replay ignores
        unknown kinds, and compaction coalesces heartbeats down to the
        last one per member, so a journal full of heartbeats recovers
        exactly like an empty one.  The ``fleet.health.heartbeat`` site
        models the shard's storage going dark independently of the
        daemon.
        """
        fault_point(
            "fleet.health.heartbeat",
            default_exc=JournalError,
            path=self.path or "<memory>",
        )
        entry: Dict[str, Any] = {"kind": "heartbeat", "ts": ts}
        entry.update(extra)
        self.append(entry)

    # ------------------------------------------------------------------
    def last_transition(self, policy: str) -> Optional[Dict[str, Any]]:
        """The most recent transition entry for ``policy``, or None."""
        found = None
        for entry in self.entries():
            if entry.get("kind") == "transition" and entry.get("policy") == policy:
                found = entry
        return found

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __len__(self) -> int:
        return len(self.entries())

    def __repr__(self) -> str:
        where = self.path if self.path is not None else "<memory>"
        return f"PolicyJournal({where!r}, {len(self)} entries)"
