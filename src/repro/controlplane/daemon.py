"""``concordd``: the policy control plane daemon.

One :class:`Concordd` sits above one :class:`~repro.concord.Concord`
and owns the full policy lifecycle for every client:

* :meth:`register_client` — grant a client capabilities and a quota;
* :meth:`submit` — admission (capabilities, quota, conflicts) then
  compile + verify; the record lands in VERIFIED or REJECTED, with
  every step audited;
* :meth:`rollout` — the canary engine: baseline profile → subset
  install → SLO-guarded canary window → auto-promote or auto-rollback;
* :meth:`withdraw` — client-initiated retirement from any live state,
  with canary/active installations cleanly torn down;
* :meth:`watch` / :meth:`status` / :attr:`audit` — observability.

The daemon never mutates a lock except through :class:`Concord` and the
livepatcher, so everything it does inherits the paper's safety story
(verifier + quiesced patching); what it *adds* is the decision layer —
whether, where, and for how long a policy runs.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..bpf.errors import BPFError
from ..concord.framework import Concord
from .admission import AdmissionController, AdmissionError, CapabilityError, ClientCapabilities
from .canary import CanaryRollout
from .lifecycle import (
    AuditLog,
    AuditRecord,
    LifecycleError,
    PolicyRecord,
    PolicyState,
    PolicySubmission,
)
from .slo import SLOGuard

__all__ = ["Concordd"]


class Concordd:
    """The control plane for one simulated kernel.

    Args:
        concord: the framework instance the daemon drives.
        guard: SLO guard applied to every canary (default: the paper's
            20 % avg-wait budget).
        canary_fraction: share of the selector's locks that canary.
        baseline_ns / canary_ns: default measurement windows.
        check_every_ns: default mid-benchmark guard check interval
            (``None`` = single end-of-window check).
    """

    def __init__(
        self,
        concord: Concord,
        guard: Optional[SLOGuard] = None,
        canary_fraction: float = 0.5,
        baseline_ns: int = 400_000,
        canary_ns: int = 400_000,
        check_every_ns: Optional[int] = None,
    ) -> None:
        self.concord = concord
        self.kernel = concord.kernel
        self.guard = guard or SLOGuard()
        self.canary_fraction = canary_fraction
        self.baseline_ns = baseline_ns
        self.canary_ns = canary_ns
        self.check_every_ns = check_every_ns
        self.admission = AdmissionController()
        self.audit = AuditLog()
        self.records: Dict[str, PolicyRecord] = {}
        self._rollout = CanaryRollout(concord, self.audit)

    # ------------------------------------------------------------------
    # Clients
    # ------------------------------------------------------------------
    def register_client(
        self,
        client_id: str,
        allowed_selectors=("*",),
        max_live_policies: int = 4,
        may_switch_impl: bool = True,
    ) -> ClientCapabilities:
        return self.admission.register(
            client_id, allowed_selectors, max_live_policies, may_switch_impl
        )

    # ------------------------------------------------------------------
    # Lifecycle entry points
    # ------------------------------------------------------------------
    def submit(self, client_id: str, submission: PolicySubmission) -> PolicyRecord:
        """Admission + verification; raises the typed denial after
        auditing it.  On success the record is VERIFIED."""
        existing = self.records.get(submission.name)
        if existing is not None and not existing.terminal:
            raise AdmissionError(
                f"policy name {submission.name!r} is already in flight "
                f"({existing.state}) for client {existing.client_id!r}"
            )
        record = PolicyRecord(submission, client_id, self.kernel.now)
        self.records[submission.name] = record
        record.transition(
            PolicyState.SUBMITTED,
            f"submitted by {client_id!r}: {submission.describe()}",
            self.audit,
            self.kernel.now,
        )
        try:
            record.target_locks = self.admission.admit(
                self.concord, self.records.values(), record
            )
        except AdmissionError as exc:
            record.error = str(exc)
            record.transition(
                PolicyState.REJECTED, f"admission denied: {exc}", self.audit, self.kernel.now
            )
            raise
        if submission.specs:
            checks = []
            try:
                for spec in submission.specs:
                    _, verdict = self.concord.verify_policy(spec)
                    checks.append(verdict.checks[1])
            except BPFError as exc:
                record.error = str(exc)
                record.transition(
                    PolicyState.REJECTED,
                    f"verifier rejected: {exc}",
                    self.audit,
                    self.kernel.now,
                )
                raise
            cause = f"verifier accepted {len(checks)} program(s): " + "; ".join(checks)
        else:
            cause = "no program to verify (livepatch-only submission)"
        record.transition(PolicyState.VERIFIED, cause, self.audit, self.kernel.now)
        return record

    def rollout(
        self,
        name: str,
        baseline_ns: Optional[int] = None,
        canary_ns: Optional[int] = None,
        check_every_ns: Optional[int] = None,
        settle_ns: int = 2_000,
        min_canary_locks: int = 1,
    ) -> PolicyRecord:
        """Run the canary engine for a VERIFIED record (blocking, in
        simulated time — the caller's workload must already be spawned)."""
        record = self.status(name)
        return self._rollout.run(
            record,
            self.guard,
            baseline_ns=baseline_ns if baseline_ns is not None else self.baseline_ns,
            canary_ns=canary_ns if canary_ns is not None else self.canary_ns,
            canary_fraction=self.canary_fraction,
            min_canary_locks=min_canary_locks,
            check_every_ns=check_every_ns if check_every_ns is not None else self.check_every_ns,
            settle_ns=settle_ns,
        )

    def withdraw(self, client_id: str, name: str) -> PolicyRecord:
        """Client-initiated retirement; tears down whatever is installed."""
        record = self.status(name)
        if record.client_id != client_id:
            raise CapabilityError(
                f"client {client_id!r} may not withdraw {name!r} "
                f"(owned by {record.client_id!r})"
            )
        if record.terminal:
            raise LifecycleError(f"{name}: already terminal ({record.state})")
        if record.state in (PolicyState.CANARY, PolicyState.ACTIVE):
            self._rollout.rollback(record)
        record.transition(
            PolicyState.RETIRED,
            f"withdrawn by {client_id!r}",
            self.audit,
            self.kernel.now,
        )
        return record

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------
    def status(self, name: str) -> PolicyRecord:
        try:
            return self.records[name]
        except KeyError:
            raise LifecycleError(f"no policy named {name!r} was ever submitted") from None

    def policies(self, client_id: Optional[str] = None) -> List[PolicyRecord]:
        return [
            record
            for record in sorted(self.records.values(), key=lambda r: r.created_ns)
            if client_id is None or record.client_id == client_id
        ]

    def watch(self, client_id: str) -> Tuple[AuditRecord, ...]:
        """The audit trail for one client's policies (their 'events')."""
        return self.audit.for_client(client_id)

    def describe(self) -> Dict[str, object]:
        by_state: Dict[str, int] = {}
        for record in self.records.values():
            key = record.state.name if record.state else "NEW"
            by_state[key] = by_state.get(key, 0) + 1
        return {
            "clients": self.admission.clients(),
            "policies": by_state,
            "audit_records": len(self.audit),
        }
