"""``concordd``: the policy control plane daemon.

One :class:`Concordd` sits above one :class:`~repro.concord.Concord`
and owns the full policy lifecycle for every client:

* :meth:`register_client` — grant a client capabilities and a quota;
* :meth:`submit` — admission (capabilities, quota, conflicts) then
  compile + verify; the record lands in VERIFIED or REJECTED, with
  every step audited;
* :meth:`rollout` — the canary engine: baseline profile → subset
  install → SLO-guarded canary window → auto-promote or auto-rollback;
* :meth:`withdraw` — client-initiated retirement from any live state,
  with canary/active installations cleanly torn down;
* :meth:`watch` / :meth:`status` / :attr:`audit` — observability.

The daemon never mutates a lock except through :class:`Concord` and the
livepatcher, so everything it does inherits the paper's safety story
(verifier + quiesced patching); what it *adds* is the decision layer —
whether, where, and for how long a policy runs.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..bpf.errors import BPFError
from ..bpf.maps import HashMap
from ..concord.framework import Concord, ConcordEvent
from ..concord.policy import PolicySpec
from .admission import (
    AdmissionController,
    AdmissionError,
    CapabilityError,
    ClientCapabilities,
    KernelBudget,
)
from .canary import CanaryRollout
from .lifecycle import (
    AuditLog,
    AuditRecord,
    ControlPlaneError,
    LifecycleError,
    PolicyRecord,
    PolicyState,
    PolicySubmission,
)
from .baselines import LearnedBaseline
from .guards import Guard, SLOGuard

__all__ = ["Concordd"]


def _unrecoverable_impl(old):
    """Placeholder for an impl factory lost across a daemon restart
    (its name is not in the new daemon's ``impl_registry``).  Recovery
    never applies it — records carrying it are rolled back fail-open."""
    raise ControlPlaneError(
        "this implementation factory did not survive the daemon restart"
    )


class Concordd:
    """The control plane for one simulated kernel.

    Args:
        concord: the framework instance the daemon drives.
        guard: SLO guard applied to every canary (default: the paper's
            20 % avg-wait budget).
        canary_fraction: share of the selector's locks that canary.
        baseline_ns / canary_ns: default measurement windows.
        check_every_ns: default mid-benchmark guard check interval
            (``None`` = single end-of-window check).
        max_snapshot_stalls: canary-watchdog tolerance — consecutive
            profiler-snapshot stalls before a watch window is
            force-resolved to ROLLED_BACK.
        drain_deadline_ns: quiesce deadline for canary impl switches
            (``None`` keeps the unbounded legacy drain).
        journal: optional :class:`~repro.controlplane.journal.PolicyJournal`
            making every submission and transition crash-safe; required
            for :meth:`recover`.
        impl_registry: ``impl_name -> impl_factory`` map used to rebuild
            implementation switches from the journal on recovery.
        budget: optional kernel-wide
            :class:`~repro.controlplane.admission.KernelBudget` enforced
            across every client's live policies (per fleet member when
            the daemon is one shard of a fleet).
    """

    def __init__(
        self,
        concord: Concord,
        guard: Optional[SLOGuard] = None,
        canary_fraction: float = 0.5,
        baseline_ns: int = 400_000,
        canary_ns: int = 400_000,
        check_every_ns: Optional[int] = None,
        max_snapshot_stalls: int = 3,
        drain_deadline_ns: Optional[int] = None,
        journal=None,
        impl_registry: Optional[Dict[str, object]] = None,
        budget: Optional[KernelBudget] = None,
        baselines: Optional[LearnedBaseline] = None,
    ) -> None:
        self.concord = concord
        self.kernel = concord.kernel
        self.guard = guard or SLOGuard()
        self.canary_fraction = canary_fraction
        self.baseline_ns = baseline_ns
        self.canary_ns = canary_ns
        self.check_every_ns = check_every_ns
        self.max_snapshot_stalls = max_snapshot_stalls
        self.drain_deadline_ns = drain_deadline_ns
        self.journal = journal
        self.baselines = baselines
        self.impl_registry: Dict[str, object] = dict(impl_registry or {})
        self.admission = AdmissionController(budget=budget)
        self.audit = AuditLog()
        self.records: Dict[str, PolicyRecord] = {}
        self._rollout = CanaryRollout(concord, self.audit)
        #: spec/submission name -> owning record (the event bridge's map)
        self._spec_owner: Dict[str, PolicyRecord] = {}
        self._replaying = False
        self._detached = False
        if self.journal is not None:
            self.audit.listeners.append(self._journal_transition)
        self.concord.subscribe(self._on_concord_event)

    # ------------------------------------------------------------------
    # Clients
    # ------------------------------------------------------------------
    def register_client(
        self,
        client_id: str,
        allowed_selectors=("*",),
        max_live_policies: int = 4,
        may_switch_impl: bool = True,
    ) -> ClientCapabilities:
        caps = self.admission.register(
            client_id, allowed_selectors, max_live_policies, may_switch_impl
        )
        if self.journal is not None and not self._replaying:
            self.journal.append(
                {
                    "kind": "client",
                    "ts": self.kernel.now,
                    "client": client_id,
                    "allowed_selectors": list(caps.allowed_selectors),
                    "max_live_policies": caps.max_live_policies,
                    "may_switch_impl": caps.may_switch_impl,
                }
            )
        return caps

    # ------------------------------------------------------------------
    # Lifecycle entry points
    # ------------------------------------------------------------------
    def submit(self, client_id: str, submission: PolicySubmission) -> PolicyRecord:
        """Admission + verification; raises the typed denial after
        auditing it.  On success the record is VERIFIED."""
        existing = self.records.get(submission.name)
        if existing is not None and not existing.terminal:
            raise AdmissionError(
                f"policy name {submission.name!r} is already in flight "
                f"({existing.state}) for client {existing.client_id!r}"
            )
        # Journal before the record exists: a failed append leaves no
        # half-created record squatting on the name (nothing was
        # journaled, nothing installed — the submission simply failed).
        if self.journal is not None and not self._replaying:
            self.journal.append(self._serialize_submission(submission, client_id))
        record = PolicyRecord(submission, client_id, self.kernel.now)
        self.records[submission.name] = record
        self._adopt_owner(record)
        record.transition(
            PolicyState.SUBMITTED,
            f"submitted by {client_id!r}: {submission.describe()}",
            self.audit,
            self.kernel.now,
        )
        try:
            record.target_locks = self.admission.admit(
                self.concord, self.records.values(), record
            )
        except AdmissionError as exc:
            record.error = str(exc)
            record.transition(
                PolicyState.REJECTED, f"admission denied: {exc}", self.audit, self.kernel.now
            )
            raise
        if submission.specs:
            checks = []
            try:
                for spec in submission.specs:
                    program, verdict = self.concord.verify_policy(spec)
                    checks.append(verdict.checks[1])
                    record.insn_counts[spec.hook] = (
                        record.insn_counts.get(spec.hook, 0) + len(program)
                    )
                    record.pinned_bytes += len(program) * 8
            except BPFError as exc:
                record.error = str(exc)
                record.transition(
                    PolicyState.REJECTED,
                    f"verifier rejected: {exc}",
                    self.audit,
                    self.kernel.now,
                )
                raise
            cause = f"verifier accepted {len(checks)} program(s): " + "; ".join(checks)
        else:
            cause = "no program to verify (livepatch-only submission)"
        try:
            # Kernel-wide budgets need the verified footprint, so they
            # gate between verification and VERIFIED.
            self.admission.charge(self.records.values(), record)
        except AdmissionError as exc:
            record.error = str(exc)
            record.transition(
                PolicyState.REJECTED,
                f"budget denied: {exc}",
                self.audit,
                self.kernel.now,
            )
            raise
        record.transition(PolicyState.VERIFIED, cause, self.audit, self.kernel.now)
        return record

    def rollout(
        self,
        name: str,
        baseline_ns: Optional[int] = None,
        canary_ns: Optional[int] = None,
        check_every_ns: Optional[int] = None,
        settle_ns: int = 2_000,
        min_canary_locks: int = 1,
        canary_locks: Optional[List[str]] = None,
        guard: Optional[Guard] = None,
    ) -> PolicyRecord:
        """Run the canary engine for a VERIFIED record (blocking, in
        simulated time — the caller's workload must already be spawned).

        ``canary_locks`` overrides the engine's sorted-prefix subset with
        an explicit, e.g. placement-aware, one (the fleet planner).
        ``guard`` overrides the daemon's guard for this one rollout (the
        adaptation loop judges its self-proposed culls under a tail +
        fairness composite regardless of the daemon's default)."""
        record = self.status(name)
        result = self._rollout.run(
            record,
            guard if guard is not None else self.guard,
            baseline_ns=baseline_ns if baseline_ns is not None else self.baseline_ns,
            canary_ns=canary_ns if canary_ns is not None else self.canary_ns,
            canary_fraction=self.canary_fraction,
            min_canary_locks=min_canary_locks,
            check_every_ns=check_every_ns if check_every_ns is not None else self.check_every_ns,
            settle_ns=settle_ns,
            max_snapshot_stalls=self.max_snapshot_stalls,
            drain_deadline_ns=self.drain_deadline_ns,
            canary_locks=canary_locks,
        )
        self._observe_baselines(result)
        return result

    def _observe_baselines(self, record: PolicyRecord) -> None:
        """Fold the rollout's profiling windows into the learned
        baselines and journal the new state.  The baseline window is
        always trusted (it profiled the pre-change system); the canary
        window only when the rollout promoted — a rolled-back canary's
        statistics describe the regime we just refused to keep.  Each
        journal entry carries the *full* state, so replay (and
        compaction) can keep only the newest one."""
        if self.baselines is None:
            return
        reports = [record.baseline_report]
        if record.state is PolicyState.ACTIVE:
            reports.append(record.canary_report)
        for report in reports:
            if report is not None:
                self.observe_report(report)

    def observe_report(self, report) -> int:
        """Feed one trusted profiler window into the learned baselines
        and journal the refreshed state (no-op without baselines; also
        the entry point the adaptation loop uses for its healthy
        steady-state windows)."""
        if self.baselines is None or report is None:
            return 0
        updated = self.baselines.observe(report)
        if updated and self.journal is not None and not self._replaying:
            self.journal.append(
                {
                    "kind": "baseline",
                    "ts": self.kernel.now,
                    "state": self.baselines.serialize(),
                }
            )
        return updated

    def withdraw(self, client_id: str, name: str) -> PolicyRecord:
        """Client-initiated retirement; tears down whatever is installed."""
        record = self.status(name)
        if record.client_id != client_id:
            raise CapabilityError(
                f"client {client_id!r} may not withdraw {name!r} "
                f"(owned by {record.client_id!r})"
            )
        if record.terminal:
            raise LifecycleError(f"{name}: already terminal ({record.state})")
        if record.state in (PolicyState.CANARY, PolicyState.ACTIVE):
            self._rollout.rollback(record)
        record.transition(
            PolicyState.RETIRED,
            f"withdrawn by {client_id!r}",
            self.audit,
            self.kernel.now,
        )
        return record

    # ------------------------------------------------------------------
    # Concord event -> audit bridge, and fail-open auto-rollback
    # ------------------------------------------------------------------
    def _adopt_owner(self, record: PolicyRecord) -> None:
        """Map the submission's name and every spec name to ``record``
        so framework events can be attributed (latest owner wins)."""
        self._spec_owner[record.submission.name] = record
        for spec in record.submission.specs:
            self._spec_owner[spec.name] = record

    def _owners_of(self, event: ConcordEvent) -> List[PolicyRecord]:
        """Which records a framework event is about.

        Most notifications are ``"<policy-name>: ..."``; compose
        findings are ``"<hook>@<lock>: [sev] a+b: ..."`` and name the
        chained policies in the body, so those are matched by scanning
        known spec names.
        """
        prefix = event.message.split(":", 1)[0].strip()
        record = self._spec_owner.get(prefix)
        if record is not None:
            return [record]
        if event.kind.startswith("compose-"):
            seen = []
            for name, rec in self._spec_owner.items():
                if name in event.message and rec not in seen:
                    seen.append(rec)
            return seen
        return []

    def _on_concord_event(self, event: ConcordEvent) -> None:
        """Attach framework notifications to the owning policy record
        (``kind="event"`` — annotation, not a transition), and react to
        breaker trips with an automatic rollback."""
        for record in self._owners_of(event):
            if record.state is None:
                continue
            self.audit.append(
                AuditRecord(
                    event.time_ns,
                    record.name,
                    record.client_id,
                    record.state,
                    record.state,
                    f"concord {event.kind}: {event.message}",
                    "event",
                )
            )
            if event.kind == "breaker-tripped" and record.state in (
                PolicyState.CANARY,
                PolicyState.ACTIVE,
            ):
                self._auto_rollback(record, f"fail-open: {event.message}")

    def _auto_rollback(self, record: PolicyRecord, cause: str) -> None:
        """Tear a live policy down without a client asking (circuit
        breaker, recovery).  ROLLED_BACK is not a live state, so the
        client's admission quota slot is released by the transition."""
        self._rollout.rollback(record)
        record.transition(PolicyState.ROLLED_BACK, cause, self.audit, self.kernel.now)

    def force_rollback(self, name: str, cause: str) -> PolicyRecord:
        """Operator-initiated rollback of an installed policy.

        The fleet coordinator uses this to revert already-patched
        kernels when a later wave breaches: unlike :meth:`withdraw` it
        is not bound to the owning client, and unlike the breaker path
        it carries the caller's cause into the audit trail.
        """
        record = self.status(name)
        if record.state not in (PolicyState.CANARY, PolicyState.ACTIVE):
            raise LifecycleError(
                f"{name}: force_rollback needs CANARY or ACTIVE, record is {record.state}"
            )
        self._auto_rollback(record, cause)
        return record

    def detach(self) -> None:
        """Stop observing the framework and the audit log.

        The drill uses this to model the daemon process dying: the
        kernel (and everything installed in it) lives on, but nobody is
        journaling, bridging events, or reacting to breaker trips until
        a new daemon takes over.
        """
        self.concord.unsubscribe(self._on_concord_event)
        if self._journal_transition in self.audit.listeners:
            self.audit.listeners.remove(self._journal_transition)
        self._detached = True

    # ------------------------------------------------------------------
    # Crash-safe persistence
    # ------------------------------------------------------------------
    def _serialize_submission(self, submission: PolicySubmission, client_id: str) -> Dict:
        return {
            "kind": "submission",
            "ts": self.kernel.now,
            "policy": submission.name,
            "client": client_id,
            "lock_selector": submission.lock_selector,
            "impl_name": submission.impl_name,
            "has_impl": submission.impl_factory is not None,
            "specs": [
                {
                    "name": spec.name,
                    "hook": spec.hook,
                    "source": spec.source,
                    "lock_selector": spec.lock_selector,
                    "combiner": spec.combiner,
                    "exclusive": spec.exclusive,
                    "priority": spec.priority,
                    "maps": sorted(spec.maps),
                }
                for spec in submission.specs
            ],
        }

    def _journal_transition(self, rec: AuditRecord) -> None:
        """AuditLog listener: persist every genuine transition, enriched
        with the record's rollout artifacts at that instant."""
        if self._replaying or rec.kind != "transition" or self.journal is None:
            return
        entry = {
            "kind": "transition",
            "ts": rec.time_ns,
            "policy": rec.policy,
            "client": rec.client,
            "frm": rec.frm.name if rec.frm is not None else None,
            "to": rec.to.name,
            "cause": rec.cause,
        }
        record = self.records.get(rec.policy)
        if record is not None:
            entry["target_locks"] = list(record.target_locks)
            entry["canary_locks"] = list(record.canary_locks)
            entry["patches"] = [
                [patch.name, [op.lock_name for op in patch.ops]]
                for patch in record.patches
            ]
            verdict = record.verdict
            if verdict is not None and getattr(verdict, "attributed", None):
                entry["breaches"] = [
                    {
                        "lock": b.lock_name,
                        "metric": b.metric,
                        "baseline": b.baseline,
                        "observed": b.observed,
                        "budget": b.budget,
                        "kernels": list(b.kernels),
                    }
                    for b in verdict.attributed
                ]
        self.journal.append(entry)

    def _rebuild_submission(self, entry: Dict) -> Tuple[PolicySubmission, Optional[str]]:
        """Reconstruct a submission from its journal entry.

        Returns ``(submission, problem)`` — ``problem`` names what could
        not be restored (a lost impl factory), which recovery resolves
        fail-open.
        """
        specs = []
        shared_maps: Dict[str, HashMap] = {}
        for spec_entry in entry["specs"]:
            maps = {
                map_name: shared_maps.setdefault(
                    map_name,
                    HashMap(f"{entry['policy']}.{map_name}", max_entries=65536),
                )
                for map_name in spec_entry["maps"]
            }
            specs.append(
                PolicySpec(
                    name=spec_entry["name"],
                    hook=spec_entry["hook"],
                    source=spec_entry["source"],
                    maps=maps,
                    lock_selector=spec_entry["lock_selector"],
                    combiner=spec_entry["combiner"],
                    exclusive=spec_entry["exclusive"],
                    priority=spec_entry["priority"],
                )
            )
        impl_factory = None
        problem = None
        if entry["has_impl"]:
            impl_factory = self.impl_registry.get(entry["impl_name"])
            if impl_factory is None:
                impl_factory = _unrecoverable_impl
                problem = (
                    f"impl factory {entry['impl_name']!r} is not in the "
                    f"new daemon's impl_registry"
                )
        submission = PolicySubmission(
            specs=tuple(specs) if specs else None,
            impl_factory=impl_factory,
            name=entry["policy"],
            lock_selector=entry["lock_selector"],
            impl_name=entry["impl_name"],
        )
        return submission, problem

    def _with_retries(self, fn, what: str, attempts: int = 3, backoff_ns: int = 10_000):
        """Run ``fn`` up to ``attempts`` times; between tries the engine
        advances by an exponentially growing backoff (transient faults —
        verifier flakes, pin I/O errors — get time to clear)."""
        last: Optional[BPFError] = None
        for attempt in range(1, attempts + 1):
            try:
                return fn()
            except BPFError as exc:
                last = exc
                if attempt < attempts:
                    self.kernel.run(
                        until=self.kernel.now + backoff_ns * (2 ** (attempt - 1))
                    )
        raise last

    def recover(
        self,
        verify_retries: int = 3,
        sweep_orphans: bool = True,
    ) -> Dict[str, object]:
        """Rebuild daemon state from the journal after a crash.

        Two phases:

        1. **Replay** — re-register clients, reconstruct submissions and
           records, and re-walk every journaled transition at its
           original timestamp (audited with a ``replayed:`` prefix, not
           re-journaled).
        2. **Reconcile** — make the kernel match the journal's final
           word, per record state: mid-flight ``SUBMITTED`` is rejected;
           ``VERIFIED`` is re-verified (with retries); ``CANARY`` is torn
           down and ROLLED_BACK (a canary nobody is watching must not
           keep running); ``ACTIVE`` policies are re-verified, re-pinned
           and re-attached — same hook programs, same lock impls — with
           retries, or rolled back fail-open if their implementation
           factory did not survive the restart.  Finally loaded policies
           no live record owns (crash debris: the dead rollout's
           profiler programs) are swept.

        Returns a summary dict; raises :class:`ControlPlaneError` if the
        daemon already has records or has no journal.
        """
        if self.journal is None:
            raise ControlPlaneError("recover() needs a journal")
        if self.records:
            raise ControlPlaneError(
                "recover() must run on a fresh daemon, before any submissions"
            )
        entries = self.journal.entries()
        summary = {
            "replayed": 0,
            "reattached": [],
            "rolled_back": [],
            "rejected": [],
            "swept": [],
        }
        problems: Dict[str, str] = {}
        journal_patches: Dict[str, List] = {}

        # -- phase 1: replay ------------------------------------------
        self._replaying = True
        try:
            for entry in entries:
                kind = entry.get("kind")
                if kind == "client":
                    if entry["client"] not in self.admission.clients():
                        self.admission.register(
                            entry["client"],
                            entry["allowed_selectors"],
                            entry["max_live_policies"],
                            entry["may_switch_impl"],
                        )
                elif kind == "submission":
                    submission, problem = self._rebuild_submission(entry)
                    record = PolicyRecord(submission, entry["client"], entry["ts"])
                    self.records[submission.name] = record
                    self._adopt_owner(record)
                    if problem is not None:
                        problems[submission.name] = problem
                elif kind == "transition":
                    record = self.records.get(entry["policy"])
                    if record is None:
                        continue  # torn journal lost the submission line
                    record.transition(
                        PolicyState[entry["to"]],
                        f"replayed: {entry['cause']}",
                        self.audit,
                        entry["ts"],
                    )
                    summary["replayed"] += 1
                    record.target_locks = list(entry.get("target_locks", record.target_locks))
                    record.canary_locks = list(entry.get("canary_locks", record.canary_locks))
                    if "patches" in entry:
                        journal_patches[record.name] = entry["patches"]
                elif kind == "baseline":
                    # Learned guard baselines: full-state entries,
                    # last-wins (see _observe_baselines).
                    if self.baselines is not None:
                        self.baselines.load(entry.get("state", {}))
        finally:
            self._replaying = False

        # -- phase 2: reconcile ---------------------------------------
        for record in sorted(self.records.values(), key=lambda r: r.created_ns):
            if record.terminal:
                continue
            if record.state is PolicyState.SUBMITTED:
                record.error = "daemon crashed before verification completed"
                record.transition(
                    PolicyState.REJECTED,
                    "recovery: daemon crashed before verification completed; resubmit",
                    self.audit,
                    self.kernel.now,
                )
                summary["rejected"].append(record.name)
            elif record.state is PolicyState.VERIFIED:
                try:
                    for spec in record.submission.specs:
                        self._with_retries(
                            lambda s=spec: self.concord.verify_policy(s),
                            f"re-verify {spec.name}",
                            attempts=verify_retries,
                        )
                    self.audit.append(
                        AuditRecord(
                            self.kernel.now,
                            record.name,
                            record.client_id,
                            record.state,
                            record.state,
                            "recovery: re-verified, still eligible for rollout",
                            "event",
                        )
                    )
                except BPFError as exc:
                    record.error = str(exc)
                    record.transition(
                        PolicyState.REJECTED,
                        f"recovery: re-verification failed ({exc})",
                        self.audit,
                        self.kernel.now,
                    )
                    summary["rejected"].append(record.name)
            elif record.state is PolicyState.CANARY:
                self._recover_teardown(record, journal_patches.get(record.name, []))
                record.transition(
                    PolicyState.ROLLED_BACK,
                    "recovery: daemon crashed mid-canary; an unwatched canary "
                    "must not keep running",
                    self.audit,
                    self.kernel.now,
                )
                summary["rolled_back"].append(record.name)
            elif record.state is PolicyState.ACTIVE:
                problem = problems.get(record.name)
                if problem is not None:
                    self._recover_teardown(record, journal_patches.get(record.name, []))
                    record.error = problem
                    record.transition(
                        PolicyState.ROLLED_BACK,
                        f"recovery: {problem}; rolled back fail-open",
                        self.audit,
                        self.kernel.now,
                    )
                    summary["rolled_back"].append(record.name)
                    continue
                try:
                    self._recover_active(record, journal_patches.get(record.name, []), verify_retries)
                    summary["reattached"].append(record.name)
                except BPFError as exc:
                    self._recover_teardown(record, journal_patches.get(record.name, []))
                    record.error = str(exc)
                    record.transition(
                        PolicyState.ROLLED_BACK,
                        f"recovery: could not re-attach ({exc}); rolled back fail-open",
                        self.audit,
                        self.kernel.now,
                    )
                    summary["rolled_back"].append(record.name)

        # -- phase 3: sweep crash debris ------------------------------
        if sweep_orphans:
            expected = set()
            for record in self.records.values():
                if record.live:
                    expected.update(spec.name for spec in record.submission.specs)
            for name in sorted(self.concord.policies):
                if name not in expected:
                    self.concord.unload_policy(name)
                    summary["swept"].append(name)
        return summary

    def _recover_teardown(self, record: PolicyRecord, patch_entries: List) -> None:
        """Undo a dead rollout's installation: unload its hook programs
        (idempotent) and revert any journaled livepatch still active."""
        for spec in record.submission.specs:
            self.concord.unload_policy(spec.name)
        patcher = self.kernel.patcher
        for patch_name, _locks in reversed(list(patch_entries)):
            if patch_name in patcher.active:
                patcher.revert(patch_name)

    def _recover_active(
        self, record: PolicyRecord, patch_entries: List, verify_retries: int
    ) -> None:
        """Bring an ACTIVE record's installation back: every hook program
        verified and attached to every target lock, every journaled impl
        switch either re-adopted (the kernel survived) or re-applied."""
        targets = record.target_locks or self.kernel.locks.select_names(
            record.submission.lock_selector
        )
        record.target_locks = targets
        fixed = []
        for spec in record.submission.specs:
            loaded = self.concord.policies.get(spec.name)
            if loaded is None:
                self._with_retries(
                    lambda s=spec: self.concord.load_policy(s, targets=targets),
                    f"re-load {spec.name}",
                    attempts=verify_retries,
                )
                fixed.append(f"re-loaded {spec.name}")
            else:
                self._with_retries(
                    lambda s=spec: self.concord.verify_policy(s),
                    f"re-verify {spec.name}",
                    attempts=verify_retries,
                )
                missing = [t for t in targets if t not in loaded.attached_locks]
                if missing:
                    self.concord.attach_policy(spec.name, missing)
                    fixed.append(f"re-attached {spec.name} to {len(missing)} lock(s)")
        patcher = self.kernel.patcher
        if record.submission.impl_factory is not None:
            for patch_name, lock_names in patch_entries:
                patch = patcher.active.get(patch_name)
                if patch is not None:
                    record.patches.append(patch)  # survived the crash
                else:
                    for lock_name in lock_names:
                        record.patches.append(
                            self.concord.switch_lock(
                                lock_name, record.submission.impl_factory
                            )
                        )
                    fixed.append(f"re-applied impl switch on {', '.join(lock_names)}")
        self.audit.append(
            AuditRecord(
                self.kernel.now,
                record.name,
                record.client_id,
                record.state,
                record.state,
                "recovery: ACTIVE installation verified ("
                + ("; ".join(fixed) if fixed else "kernel state intact")
                + ")",
                "event",
            )
        )

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------
    def ping(self) -> Dict[str, object]:
        """Liveness check: raise if this daemon process is gone.

        A detached daemon models a dead ``concordd`` process — the
        kernel lives on but nobody answers.  The health monitor treats
        the raise as "daemon unresponsive"; the returned snapshot is
        what a real ping endpoint would report.
        """
        if self._detached:
            raise ControlPlaneError("daemon is detached (process dead)")
        info: Dict[str, object] = {"now": self.kernel.now, "records": len(self.records)}
        group = getattr(self.journal, "group", None)
        if group is not None:
            # Journaling through a replica group: surface its health
            # (leader, lease epoch, commit index, per-site state) so a
            # ping shows replication status without a separate endpoint.
            info["replication"] = group.health()
        return info

    def status(self, name: str) -> PolicyRecord:
        try:
            return self.records[name]
        except KeyError:
            raise LifecycleError(f"no policy named {name!r} was ever submitted") from None

    def policies(self, client_id: Optional[str] = None) -> List[PolicyRecord]:
        return [
            record
            for record in sorted(self.records.values(), key=lambda r: r.created_ns)
            if client_id is None or record.client_id == client_id
        ]

    def watch(self, client_id: str) -> Tuple[AuditRecord, ...]:
        """The audit trail for one client's policies (their 'events')."""
        return self.audit.for_client(client_id)

    def describe(self) -> Dict[str, object]:
        by_state: Dict[str, int] = {}
        for record in self.records.values():
            key = record.state.name if record.state else "NEW"
            by_state[key] = by_state.get(key, 0) + 1
        return {
            "clients": self.admission.clients(),
            "policies": by_state,
            "audit_records": len(self.audit),
        }
