"""Back-compat shim: the SLO guard moved into the guard family.

The original single-oracle module grew into
:mod:`repro.controlplane.guards` — ``SLOGuard`` is now one member of a
family (tail-latency, cross-wave drift, fairness, composition, fleet
pooling) and every breach carries typed per-lock attribution.  Import
from ``guards`` in new code; this module keeps the historical import
path working and re-exports the *whole* public guard surface, so code
pinned to the old path never finds a name missing here that exists
there (``tests/test_controlplane_guards.py`` asserts the parity).
"""

from .guards import *  # noqa: F401,F403
from .guards import __all__ as _guard_all

__all__ = list(_guard_all)
