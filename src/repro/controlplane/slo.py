"""Back-compat shim: the SLO guard moved into the guard family.

The original single-oracle module grew into
:mod:`repro.controlplane.guards` — ``SLOGuard`` is now one member of a
family (tail-latency, fairness, composition, fleet pooling) and every
breach carries typed per-lock attribution.  Import from ``guards`` in
new code; this module keeps the historical import path working.
"""

from .guards import (  # noqa: F401
    AGGREGATE,
    Breach,
    GuardVerdict,
    LockDelta,
    SLOGuard,
    SLOVerdict,
)

__all__ = ["SLOGuard", "SLOVerdict", "LockDelta", "Breach", "GuardVerdict", "AGGREGATE"]
