"""SLO guards: the canary's pass/fail oracle.

Figure 2(c)'s worst case — up to ~20 % overhead from the dynamic-
modification machinery alone — is the paper's own bound on acceptable
regression, so the default guard trips when the canary locks' average
wait time regresses more than 20 % against the baseline the profiler
measured immediately before the canary was installed.

The guard compares two :class:`~repro.concord.profiler.ProfileReport`
objects over the same canary lock set and returns a typed
:class:`SLOVerdict`; it never acts on its own — the rollout engine
decides what a breach means (roll back, keep watching, …).
"""

from __future__ import annotations

from typing import List, NamedTuple, Optional

from ..concord.profiler import ProfileReport

__all__ = ["SLOGuard", "SLOVerdict", "LockDelta"]


class LockDelta(NamedTuple):
    """Baseline vs canary aggregates for one lock."""

    lock_name: str
    baseline_avg_wait_ns: float
    canary_avg_wait_ns: float
    baseline_avg_hold_ns: float
    canary_avg_hold_ns: float
    canary_acquired: int

    def wait_regression(self, floor_ns: float) -> float:
        """Relative avg-wait regression, guarding tiny baselines."""
        base = max(self.baseline_avg_wait_ns, floor_ns)
        return (self.canary_avg_wait_ns - base) / base


class SLOVerdict:
    """The guard's decision plus everything needed to explain it."""

    def __init__(self, ok: bool, breaches: List[str], deltas: List[LockDelta], ready: bool) -> None:
        self.ok = ok
        self.breaches = breaches
        self.deltas = deltas
        #: enough samples to be trusted? (mid-run snapshots start cold)
        self.ready = ready

    def describe(self) -> str:
        if not self.ready:
            return "slo: insufficient canary samples, verdict deferred"
        if self.ok:
            return "slo: within budget"
        return "slo breach: " + "; ".join(self.breaches)

    def __repr__(self) -> str:
        return f"SLOVerdict(ok={self.ok}, ready={self.ready}, breaches={len(self.breaches)})"


class SLOGuard:
    """Configurable regression thresholds over profiler aggregates.

    Args:
        max_avg_wait_regression: relative avg-wait-time increase across
            the canary set that trips the guard (default 0.20 — the
            paper's Fig. 2(c) worst case).
        max_avg_hold_regression: optional same-shaped bound on hold time
            (a policy that inflates critical sections — Table 1's
            hazard — trips it).
        min_acquisitions: snapshots with fewer canary-side acquisitions
            than this are "not ready" and never trip the guard.
        wait_floor_ns: baselines below this are clamped before the
            relative comparison (an uncontended baseline would otherwise
            turn noise into infinite regressions).
    """

    def __init__(
        self,
        max_avg_wait_regression: float = 0.20,
        max_avg_hold_regression: Optional[float] = None,
        min_acquisitions: int = 20,
        wait_floor_ns: float = 50.0,
    ) -> None:
        self.max_avg_wait_regression = max_avg_wait_regression
        self.max_avg_hold_regression = max_avg_hold_regression
        self.min_acquisitions = min_acquisitions
        self.wait_floor_ns = wait_floor_ns

    # ------------------------------------------------------------------
    def evaluate(self, baseline: ProfileReport, canary: ProfileReport) -> SLOVerdict:
        """Compare aggregate canary behaviour against the baseline."""
        deltas = []
        for profile in canary.profiles:
            before = baseline.by_name(profile.lock_name)
            if before is None:
                continue
            deltas.append(
                LockDelta(
                    lock_name=profile.lock_name,
                    baseline_avg_wait_ns=before.avg_wait_ns,
                    canary_avg_wait_ns=profile.avg_wait_ns,
                    baseline_avg_hold_ns=before.avg_hold_ns,
                    canary_avg_hold_ns=profile.avg_hold_ns,
                    canary_acquired=profile.acquired,
                )
            )
        total_acquired = sum(d.canary_acquired for d in deltas)
        if not deltas or total_acquired < self.min_acquisitions:
            return SLOVerdict(True, [], deltas, ready=False)

        breaches: List[str] = []
        wait_reg = self._aggregate_wait_regression(baseline, canary)
        if wait_reg > self.max_avg_wait_regression:
            breaches.append(
                f"avg wait regressed {wait_reg:+.0%} across canary locks "
                f"(budget {self.max_avg_wait_regression:+.0%})"
            )
        if self.max_avg_hold_regression is not None:
            hold_reg = self._aggregate_hold_regression(baseline, canary)
            if hold_reg > self.max_avg_hold_regression:
                breaches.append(
                    f"avg hold regressed {hold_reg:+.0%} "
                    f"(budget {self.max_avg_hold_regression:+.0%})"
                )
        return SLOVerdict(not breaches, breaches, deltas, ready=True)

    # ------------------------------------------------------------------
    def _aggregate_wait_regression(self, baseline: ProfileReport, canary: ProfileReport) -> float:
        base = self._avg(baseline, "wait_total_ns", "acquired")
        after = self._avg(canary, "wait_total_ns", "acquired")
        base = max(base, self.wait_floor_ns)
        return (after - base) / base

    def _aggregate_hold_regression(self, baseline: ProfileReport, canary: ProfileReport) -> float:
        base = self._avg(baseline, "hold_total_ns", "releases")
        after = self._avg(canary, "hold_total_ns", "releases")
        base = max(base, self.wait_floor_ns)
        return (after - base) / base

    @staticmethod
    def _avg(report: ProfileReport, total_field: str, count_field: str) -> float:
        total = sum(getattr(p, total_field) for p in report.profiles)
        count = sum(getattr(p, count_field) for p in report.profiles)
        return total / count if count else 0.0
