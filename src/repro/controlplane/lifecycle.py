"""Policy lifecycle: states, legal transitions, and the audit log.

The paper's pipeline (specify → verify → notify → store → patch) is
fire-and-forget: once :meth:`Concord.load_policy` returns, the policy is
live everywhere and nothing remembers why.  ``concordd`` wraps every
submission in an explicit state machine::

                      ┌──────────► REJECTED
                      │  (admission/verifier denial)
    SUBMITTED ──► VERIFIED ──► CANARY ──► ACTIVE ──► RETIRED
                      │   │       │           │         ▲
                      │   │       ▼           ▼         │
                      │   └──► ROLLED_BACK ◄──┘         │
                      │  (SLO guard / watchdog /        │
                      │   circuit breaker / recovery)   │
                      └─────────────────────────────────┘
                              (withdrawn before rollout)

Every transition is appended — with its cause, timestamp, and owning
client — to an append-only :class:`AuditLog`, so "why is this policy not
running?" always has an answer.  Illegal transitions raise
:class:`LifecycleError`; terminal states (``REJECTED``, ``ROLLED_BACK``,
``RETIRED``) have no exits.  ``VERIFIED → ROLLED_BACK`` covers a canary
install that failed partway (everything applied was unwound);
``ACTIVE → ROLLED_BACK`` covers fail-open degradation: the runtime
circuit breaker (or crash recovery) detached a live policy without the
owning client asking.

Beyond transitions, the log accepts ``kind="event"`` records — Concord
framework notifications bridged onto the owning policy — which show up
in :meth:`AuditLog.for_policy` but never in :meth:`AuditLog.history`
(the state *sequence* stays pure).
"""

from __future__ import annotations

import enum
from typing import Callable, Dict, List, NamedTuple, Optional, Tuple

from ..concord.policy import PolicySpec
from ..locks.base import Lock

__all__ = [
    "PolicyState",
    "TRANSITIONS",
    "TERMINAL_STATES",
    "LIVE_STATES",
    "ControlPlaneError",
    "LifecycleError",
    "AuditRecord",
    "AuditLog",
    "PolicySubmission",
    "PolicyRecord",
]


class ControlPlaneError(Exception):
    """Base class for concordd errors (admission, lifecycle, rollout)."""


class LifecycleError(ControlPlaneError):
    """An illegal state transition was attempted."""


class PolicyState(enum.Enum):
    SUBMITTED = "submitted"
    VERIFIED = "verified"
    CANARY = "canary"
    ACTIVE = "active"
    ROLLED_BACK = "rolled_back"
    REJECTED = "rejected"
    RETIRED = "retired"

    def __str__(self) -> str:  # audit-log friendliness
        return self.name


#: Legal transitions; anything absent raises :class:`LifecycleError`.
TRANSITIONS = {
    PolicyState.SUBMITTED: (PolicyState.VERIFIED, PolicyState.REJECTED),
    PolicyState.VERIFIED: (
        PolicyState.CANARY,
        PolicyState.RETIRED,
        PolicyState.ROLLED_BACK,  # canary install failed; unwound
    ),
    PolicyState.CANARY: (
        PolicyState.ACTIVE,
        PolicyState.ROLLED_BACK,
        PolicyState.RETIRED,
    ),
    # ACTIVE -> ROLLED_BACK is the fail-open path: circuit breaker or
    # crash recovery detached the policy without a client withdraw.
    PolicyState.ACTIVE: (PolicyState.RETIRED, PolicyState.ROLLED_BACK),
    PolicyState.ROLLED_BACK: (),
    PolicyState.REJECTED: (),
    PolicyState.RETIRED: (),
}

TERMINAL_STATES = tuple(state for state, nexts in TRANSITIONS.items() if not nexts)

#: States that count against a client's quota (the policy occupies, or
#: is about to occupy, kernel resources).
LIVE_STATES = (
    PolicyState.SUBMITTED,
    PolicyState.VERIFIED,
    PolicyState.CANARY,
    PolicyState.ACTIVE,
)


class AuditRecord(NamedTuple):
    """One audit-log entry: who moved which policy where, and why.

    ``kind`` distinguishes state-machine ``"transition"`` records from
    bridged framework ``"event"`` records (verify-failed, compose-warn,
    breaker trips) that annotate a policy without moving it; event
    records carry ``frm == to`` (the state at the time).
    """

    time_ns: int
    policy: str
    client: str
    frm: Optional[PolicyState]
    to: PolicyState
    cause: str
    kind: str = "transition"

    def format(self) -> str:
        if self.kind != "transition":
            state = self.to.name if self.to is not None else "-"
            return f"{self.time_ns:>12}ns  {self.policy:<22} {('[' + state + ']'):>26} {self.cause}"
        frm = self.frm.name if self.frm is not None else "-"
        return f"{self.time_ns:>12}ns  {self.policy:<22} {frm:>11} -> {self.to.name:<11} {self.cause}"


class AuditLog:
    """Append-only transition history for every policy the daemon saw."""

    def __init__(self) -> None:
        self._records: List[AuditRecord] = []
        #: called with each freshly appended record (journal, bridges)
        self.listeners: List[Callable[[AuditRecord], None]] = []

    def append(self, record: AuditRecord) -> None:
        self._records.append(record)
        for listener in list(self.listeners):
            listener(record)

    @property
    def records(self) -> Tuple[AuditRecord, ...]:
        return tuple(self._records)

    def for_policy(self, policy: str) -> Tuple[AuditRecord, ...]:
        return tuple(r for r in self._records if r.policy == policy)

    def for_client(self, client: str) -> Tuple[AuditRecord, ...]:
        return tuple(r for r in self._records if r.client == client)

    def history(self, policy: str) -> List[PolicyState]:
        """The state sequence one policy walked, in order.

        Only genuine transitions: bridged event records never appear
        here, so the sequence stays a state-machine trace.
        """
        return [
            r.to
            for r in self._records
            if r.policy == policy and r.kind == "transition"
        ]

    def format(self) -> str:
        return "\n".join(r.format() for r in self._records)

    def __len__(self) -> int:
        return len(self._records)


class PolicySubmission:
    """What a client hands to concordd: one or more hook programs, a
    lock implementation switch, or both, aimed at one lock selector.

    Real policies are usually *bundles* — the profiler itself is four
    programs sharing maps — so a submission carries a tuple of specs
    that roll out (and roll back) as one unit.

    Args:
        spec: a single :class:`PolicySpec` (shorthand for ``specs``).
        specs: the bundle of :class:`PolicySpec` objects; all must share
            one ``lock_selector``.
        impl_factory: optional ``old_impl -> new_impl`` callable (the
            livepatch side); applied per matched lock with drain
            semantics and reverted on rollback.
        name: submission name; defaults to the first spec's name.
        lock_selector: defaults to the specs' common selector.
        impl_name: human label for the implementation switch (audit log).
    """

    def __init__(
        self,
        spec: Optional[PolicySpec] = None,
        specs: Optional[Tuple[PolicySpec, ...]] = None,
        impl_factory: Optional[Callable[[Lock], Lock]] = None,
        name: Optional[str] = None,
        lock_selector: Optional[str] = None,
        impl_name: str = "",
    ) -> None:
        if spec is not None and specs is not None:
            raise ValueError("pass spec or specs, not both")
        bundle = tuple(specs) if specs is not None else ((spec,) if spec is not None else ())
        if not bundle and impl_factory is None:
            raise ValueError("a submission needs at least one policy spec, an impl switch, or both")
        if bundle:
            selectors = {s.lock_selector for s in bundle}
            if len(selectors) != 1:
                raise ValueError(f"bundle specs disagree on lock_selector: {sorted(selectors)}")
            names = [s.name for s in bundle]
            if len(set(names)) != len(names):
                raise ValueError("bundle specs must have unique names")
            name = name or bundle[0].name
            lock_selector = lock_selector or bundle[0].lock_selector
            if lock_selector != bundle[0].lock_selector:
                raise ValueError(
                    f"submission selector {lock_selector!r} disagrees with "
                    f"spec selector {bundle[0].lock_selector!r}"
                )
        if name is None or lock_selector is None:
            raise ValueError("impl-only submissions need an explicit name and lock_selector")
        self.specs = bundle
        self.impl_factory = impl_factory
        self.impl_name = impl_name or (getattr(impl_factory, "__name__", "") if impl_factory else "")
        self.name = name
        self.lock_selector = lock_selector

    def describe(self) -> str:
        parts = [f"{s.hook} program" for s in self.specs]
        if self.impl_factory is not None:
            parts.append(f"impl switch{(' to ' + self.impl_name) if self.impl_name else ''}")
        return f"{self.name}: {' + '.join(parts)} on {self.lock_selector!r}"

    def __repr__(self) -> str:
        return f"PolicySubmission({self.describe()})"


class PolicyRecord:
    """concordd's per-submission bookkeeping: current state, rollout
    artifacts, and the handle everything downstream hangs off."""

    def __init__(self, submission: PolicySubmission, client_id: str, now_ns: int) -> None:
        self.submission = submission
        self.name = submission.name
        self.client_id = client_id
        self.created_ns = now_ns
        self.state: Optional[PolicyState] = None
        #: verified footprint (filled by the daemon after verification;
        #: the admission budget gate charges these against the kernel)
        self.insn_counts: Dict[str, int] = {}
        self.pinned_bytes: int = 0
        #: canary rollout artifacts (filled by the rollout engine)
        self.target_locks: List[str] = []
        self.canary_locks: List[str] = []
        self.patches: List[object] = []  # LivePatch per canary impl switch
        self.baseline_report = None
        self.canary_report = None
        self.verdict = None  # final SLOVerdict
        self.error: Optional[str] = None

    def transition(self, to: PolicyState, cause: str, audit: AuditLog, now_ns: int) -> None:
        """Move to ``to``, enforcing :data:`TRANSITIONS` and auditing."""
        if self.state is None:
            if to is not PolicyState.SUBMITTED:
                raise LifecycleError(f"{self.name}: first state must be SUBMITTED, not {to}")
        elif to not in TRANSITIONS[self.state]:
            raise LifecycleError(
                f"{self.name}: illegal transition {self.state} -> {to} "
                f"(legal: {', '.join(s.name for s in TRANSITIONS[self.state]) or 'none'})"
            )
        frm = self.state
        self.state = to
        audit.append(AuditRecord(now_ns, self.name, self.client_id, frm, to, cause))

    @property
    def terminal(self) -> bool:
        return self.state in TERMINAL_STATES

    @property
    def live(self) -> bool:
        return self.state in LIVE_STATES

    def __repr__(self) -> str:
        state = self.state.name if self.state else "NEW"
        return f"PolicyRecord({self.name!r}, client={self.client_id!r}, {state})"
