"""Learned per-lock guard baselines: EWMA + variance over profiler windows.

Every guard so far judges a canary window against a *paired* baseline
window with hand-tuned budgets — fine for an operator-driven rollout,
useless for a control plane that should know what "normal" looks like
for each lock across days of windows.  :class:`LearnedBaseline`
accumulates exponentially-weighted mean and variance of the wait/hold/
p99 statistics from successive :class:`ProfileReport` snapshots, and
:class:`BaselineGuard` turns them into budgets (``mean + k·σ``).

The guard starts in **dry-run** mode: it evaluates every canary window
against the learned budgets and *attributes* would-be breaches (they
are journaled with the transition like any other verdict) but never
fails the verdict — the calibration phase the old guard-calibration
item asked for.  Once an operator trusts the learned budgets,
``dry_run=False`` makes them enforcing.

State is serialized into the policy journal (``kind: "baseline"``)
after every observation, so ``Concordd.recover()`` restores the learned
state with everything else; compaction keeps only the newest entry
(each entry carries the full state, so last-wins is replay-equivalent).
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..concord.profiler import LockProfile, ProfileReport
from .guards import Breach, Guard, GuardVerdict, _lock_deltas

__all__ = ["BaselineGuard", "LearnedBaseline", "MetricBaseline", "metric_value"]

#: The statistics a baseline learns per lock.
BASELINE_METRICS: Tuple[str, ...] = ("avg_wait_ns", "avg_hold_ns", "p99_wait_ns")


def metric_value(profile: LockProfile, metric: str) -> float:
    """One baseline metric from a profile (p99 read from the histogram)."""
    if metric == "p99_wait_ns":
        return profile.quantile(0.99)
    return float(getattr(profile, metric))


class MetricBaseline:
    """EWMA + exponentially-weighted variance of one metric.

    The classic incremental form (West 1979): ``diff = x - mean;
    incr = alpha * diff; mean += incr; var = (1 - alpha) * (var +
    diff * incr)`` — cheap, windowless, and forgets old regimes at a
    rate the operator controls through ``alpha``.
    """

    __slots__ = ("alpha", "mean", "var", "samples")

    def __init__(self, alpha: float, mean: float = 0.0, var: float = 0.0, samples: int = 0) -> None:
        self.alpha = alpha
        self.mean = mean
        self.var = var
        self.samples = samples

    def update(self, value: float) -> None:
        self.samples += 1
        if self.samples == 1:
            self.mean = value
            self.var = 0.0
            return
        diff = value - self.mean
        incr = self.alpha * diff
        self.mean += incr
        self.var = (1.0 - self.alpha) * (self.var + diff * incr)

    @property
    def std(self) -> float:
        return math.sqrt(max(self.var, 0.0))

    def budget(self, k_sigma: float, floor_ns: float = 0.0) -> float:
        """The learned ceiling: ``mean + k·σ``, floored so a metric that
        has only ever been ~0 does not turn into a zero-tolerance gate."""
        return max(self.mean + k_sigma * self.std, self.mean + floor_ns)

    def to_entry(self) -> List[float]:
        return [self.mean, self.var, self.samples]

    @classmethod
    def from_entry(cls, alpha: float, entry: Sequence[float]) -> "MetricBaseline":
        mean, var, samples = entry
        return cls(alpha, mean=float(mean), var=float(var), samples=int(samples))


class LearnedBaseline:
    """Per-lock learned baselines over :data:`BASELINE_METRICS`.

    Feed it every profiler window you trust (:meth:`observe`); ask it
    for budgets (:meth:`budget`); serialize the whole state into one
    JSON-safe dict (:meth:`serialize` / :meth:`load`) for journaling.
    """

    def __init__(
        self,
        alpha: float = 0.3,
        min_samples: int = 3,
        min_acquired: int = 20,
        metrics: Sequence[str] = BASELINE_METRICS,
    ) -> None:
        if not 0.0 < alpha <= 1.0:
            raise ValueError(f"alpha must be in (0, 1], got {alpha}")
        self.alpha = alpha
        self.min_samples = min_samples
        self.min_acquired = min_acquired
        self.metrics = tuple(metrics)
        self._locks: Dict[str, Dict[str, MetricBaseline]] = {}

    def observe(self, report: ProfileReport) -> int:
        """Fold one window in; returns how many locks were updated.

        Windows with too few acquisitions for a lock are skipped for
        that lock — cold canary slices would otherwise drag the learned
        mean toward zero.
        """
        updated = 0
        for profile in report.profiles:
            if profile.acquired < self.min_acquired:
                continue
            per_metric = self._locks.setdefault(profile.lock_name, {})
            for metric in self.metrics:
                per_metric.setdefault(metric, MetricBaseline(self.alpha)).update(
                    metric_value(profile, metric)
                )
            updated += 1
        return updated

    def get(self, lock_name: str, metric: str) -> Optional[MetricBaseline]:
        return self._locks.get(lock_name, {}).get(metric)

    def ready(self, lock_name: str, metric: str) -> bool:
        state = self.get(lock_name, metric)
        return state is not None and state.samples >= self.min_samples

    def budget(self, lock_name: str, metric: str, k_sigma: float, floor_ns: float = 0.0) -> Optional[float]:
        """The learned ceiling, or ``None`` while still calibrating."""
        if not self.ready(lock_name, metric):
            return None
        return self.get(lock_name, metric).budget(k_sigma, floor_ns)

    def lock_names(self) -> List[str]:
        return sorted(self._locks)

    def serialize(self) -> Dict:
        return {
            "alpha": self.alpha,
            "locks": {
                lock: {metric: mb.to_entry() for metric, mb in per_metric.items()}
                for lock, per_metric in self._locks.items()
            },
        }

    def load(self, state: Dict) -> None:
        """Restore serialized state (journal replay). Full-state
        last-wins: each journal entry carries everything, so replaying
        only the newest entry is equivalent to replaying them all."""
        alpha = float(state.get("alpha", self.alpha))
        self._locks = {
            lock: {
                metric: MetricBaseline.from_entry(alpha, entry)
                for metric, entry in per_metric.items()
            }
            for lock, per_metric in state.get("locks", {}).items()
        }

    def describe(self) -> str:
        rows = []
        for lock in self.lock_names():
            parts = []
            for metric in self.metrics:
                mb = self.get(lock, metric)
                if mb is None:
                    continue
                parts.append(f"{metric}={mb.mean:.0f}±{mb.std:.0f} (n={mb.samples})")
            rows.append(f"{lock}: " + ", ".join(parts))
        return "\n".join(rows) if rows else "(no learned state)"


class BaselineGuard(Guard):
    """Judge the canary window against *learned* budgets.

    Unlike the paired-window guards, the baseline report is only used
    for delta bookkeeping — the judgment is ``observed > mean + k·σ``
    against :class:`LearnedBaseline` state.  In ``dry_run`` mode the
    verdict never fails: would-be breaches are attributed (and hence
    journaled with the transition) but ``ok`` stays ``True``, and
    because composite guards only merge breaches from failing verdicts,
    a dry-run member never taints an ``AllOf``.

    Locks with no learned state yet are skipped; if *nothing* could be
    judged the verdict abstains (``ready=False``), the same "cannot be
    trusted yet" semantics the SLO guards use for cold windows.
    """

    def __init__(
        self,
        baselines: LearnedBaseline,
        k_sigma: float = 3.0,
        dry_run: bool = True,
        min_acquired: int = 20,
        floor_ns: float = 100.0,
        metrics: Optional[Sequence[str]] = None,
    ) -> None:
        self.baselines = baselines
        self.k_sigma = k_sigma
        self.dry_run = dry_run
        self.min_acquired = min_acquired
        self.floor_ns = floor_ns
        self.metrics = tuple(metrics) if metrics is not None else baselines.metrics

    def evaluate(self, baseline: ProfileReport, canary: ProfileReport) -> GuardVerdict:
        deltas, missing = _lock_deltas(baseline, canary)
        breaches: List[Breach] = []
        judged = 0
        for profile in canary.profiles:
            if profile.acquired < self.min_acquired:
                continue
            for metric in self.metrics:
                budget = self.baselines.budget(
                    profile.lock_name, metric, self.k_sigma, self.floor_ns
                )
                if budget is None:
                    continue
                judged += 1
                observed = metric_value(profile, metric)
                if observed > budget:
                    learned = self.baselines.get(profile.lock_name, metric)
                    rel = (budget - learned.mean) / learned.mean if learned.mean else 0.0
                    breaches.append(
                        Breach(profile.lock_name, metric, learned.mean, observed, rel)
                    )
        ok = True if self.dry_run else not breaches
        return GuardVerdict(
            ok=ok, breaches=breaches, deltas=deltas, ready=judged > 0, missing=missing
        )
