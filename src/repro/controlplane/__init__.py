"""``concordd`` — a policy control plane above :mod:`repro.concord`.

The framework answers *how* a policy reaches a kernel lock (verify →
store → livepatch); this package answers *whether it should*, *how it
rolls out*, and *when it must be pulled back*:

* :mod:`.lifecycle` — the policy state machine and append-only audit log;
* :mod:`.admission` — per-client capabilities, quotas, conflict gates;
* :mod:`.guards` — the guard family: SLO averages, tail-latency
  quantiles, per-socket fairness, composition, fleet pooling
  (:mod:`.slo` remains as a back-compat alias);
* :mod:`.canary` — subset install, watch windows, promote/rollback;
* :mod:`.journal` — the crash-safe policy journal (append-only JSONL);
* :mod:`.daemon` — :class:`Concordd`, tying it together per kernel,
  including :meth:`Concordd.recover` (journal replay after a crash).

Typical session::

    from repro.controlplane import Concordd, PolicySubmission

    daemon = Concordd(concord)
    daemon.register_client("svc-a", allowed_selectors=("user.svc.*",))
    daemon.submit("svc-a", PolicySubmission(spec=make_numa_policy(...)))
    ... spawn workload ...
    record = daemon.rollout("numa-aware", check_every_ns=100_000)
    assert record.state in (PolicyState.ACTIVE, PolicyState.ROLLED_BACK)
    print(daemon.audit.format())
"""

from .admission import (
    AdmissionController,
    AdmissionError,
    BudgetError,
    CapabilityError,
    ClientCapabilities,
    KernelBudget,
    QuotaError,
    SubmissionConflictError,
)
from .canary import CanaryRollout, DEFAULT_MAX_SNAPSHOT_STALLS
from .daemon import Concordd
from .journal import BPFFS_JOURNAL_PATH, JournalError, PolicyJournal
from .lifecycle import (
    AuditLog,
    AuditRecord,
    ControlPlaneError,
    LifecycleError,
    PolicyRecord,
    PolicyState,
    PolicySubmission,
    TRANSITIONS,
)
from .adaptive import (
    AdaptationDecision,
    AdaptationError,
    AdaptationLoop,
    CollapseDetector,
    CollapseSignal,
    culling_impl_factory,
    default_cull_guard,
)
from .baselines import BaselineGuard, LearnedBaseline, MetricBaseline, metric_value
from .guards import (
    AGGREGATE,
    AllOf,
    AnyOf,
    Breach,
    FairnessGuard,
    Guard,
    GuardVerdict,
    LockDelta,
    SLOGuard,
    SLOVerdict,
    TailWaitGuard,
    WaveDriftGuard,
    pool_reports,
)

__all__ = [
    "AdaptationDecision",
    "AdaptationError",
    "AdaptationLoop",
    "BaselineGuard",
    "CollapseDetector",
    "CollapseSignal",
    "LearnedBaseline",
    "MetricBaseline",
    "culling_impl_factory",
    "default_cull_guard",
    "metric_value",
    "AdmissionController",
    "AdmissionError",
    "BudgetError",
    "CapabilityError",
    "ClientCapabilities",
    "KernelBudget",
    "QuotaError",
    "SubmissionConflictError",
    "CanaryRollout",
    "DEFAULT_MAX_SNAPSHOT_STALLS",
    "Concordd",
    "BPFFS_JOURNAL_PATH",
    "JournalError",
    "PolicyJournal",
    "AuditLog",
    "AuditRecord",
    "ControlPlaneError",
    "LifecycleError",
    "PolicyRecord",
    "PolicyState",
    "PolicySubmission",
    "TRANSITIONS",
    "AGGREGATE",
    "AllOf",
    "AnyOf",
    "Breach",
    "FairnessGuard",
    "Guard",
    "GuardVerdict",
    "LockDelta",
    "SLOGuard",
    "SLOVerdict",
    "TailWaitGuard",
    "WaveDriftGuard",
    "pool_reports",
]
