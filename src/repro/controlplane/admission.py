"""Admission control: who may touch which locks, and how much.

The paper trusts "privileged userspace"; a control plane serving many
tenants cannot.  Before a submission is verified, the admission
controller enforces three gates:

* **capabilities** — each client is registered with a set of lock-name
  globs it may target; a submission whose selector reaches any lock
  outside that set is denied (:class:`CapabilityError`), as is an
  implementation switch from a client without the switch capability;
* **quotas** — a per-client ceiling on live policies (states SUBMITTED
  through ACTIVE), so one tenant cannot exhaust hook chains or bpffs
  (:class:`QuotaError`);
* **conflicts** — the submission must compose with (a) policies already
  live on the kernel's hook chains, via the same exclusivity/combiner
  rules :mod:`repro.concord.policy` enforces at load time, and (b)
  other clients' *in-flight* submissions that overlap on (hook, lock) —
  two canaries racing for the same slot is exactly the kind of
  conflict the kernel-side check would only catch after the first one
  won (:class:`SubmissionConflictError`).

Denials are typed, carry the offending locks, and leave an audit trail
(the daemon transitions the record to REJECTED with the denial cause).
"""

from __future__ import annotations

import fnmatch
from typing import Dict, Iterable, List, NamedTuple, Tuple

from ..concord.framework import Concord
from ..concord.policy import PolicyConflictError, check_conflicts
from .lifecycle import ControlPlaneError, PolicyRecord, PolicyState

__all__ = [
    "AdmissionError",
    "CapabilityError",
    "QuotaError",
    "SubmissionConflictError",
    "ClientCapabilities",
    "AdmissionController",
]


class AdmissionError(ControlPlaneError):
    """A submission was denied admission."""


class CapabilityError(AdmissionError):
    """The client lacks the capability the submission needs."""


class QuotaError(AdmissionError):
    """The client's live-policy quota is exhausted."""


class SubmissionConflictError(AdmissionError):
    """The submission conflicts with a live policy or another in-flight
    submission on some (hook, lock) slot."""


class ClientCapabilities(NamedTuple):
    """What one registered client is allowed to do."""

    client_id: str
    #: lock-name globs this client may target
    allowed_selectors: Tuple[str, ...]
    #: ceiling on policies in LIVE_STATES at once
    max_live_policies: int
    #: may the client's submissions switch lock implementations?
    may_switch_impl: bool

    def covers(self, lock_name: str) -> bool:
        return any(
            fnmatch.fnmatchcase(lock_name, pattern) for pattern in self.allowed_selectors
        )


class AdmissionController:
    """Stateless checks over registered capabilities + daemon records."""

    def __init__(self) -> None:
        self._clients: Dict[str, ClientCapabilities] = {}

    # ------------------------------------------------------------------
    def register(
        self,
        client_id: str,
        allowed_selectors: Iterable[str] = ("*",),
        max_live_policies: int = 4,
        may_switch_impl: bool = True,
    ) -> ClientCapabilities:
        if client_id in self._clients:
            raise AdmissionError(f"client {client_id!r} is already registered")
        caps = ClientCapabilities(
            client_id, tuple(allowed_selectors), max_live_policies, may_switch_impl
        )
        self._clients[client_id] = caps
        return caps

    def client(self, client_id: str) -> ClientCapabilities:
        try:
            return self._clients[client_id]
        except KeyError:
            raise CapabilityError(f"client {client_id!r} is not registered") from None

    def clients(self) -> List[str]:
        return sorted(self._clients)

    # ------------------------------------------------------------------
    def admit(
        self,
        concord: Concord,
        records: Iterable[PolicyRecord],
        record: PolicyRecord,
    ) -> List[str]:
        """Run every gate for ``record``; returns the resolved target
        lock names on success, raises a typed denial otherwise."""
        caps = self.client(record.client_id)
        submission = record.submission

        targets = concord.kernel.locks.select_names(submission.lock_selector)
        if not targets:
            raise AdmissionError(
                f"{submission.name}: selector {submission.lock_selector!r} "
                f"matches no registered locks"
            )

        uncovered = [name for name in targets if not caps.covers(name)]
        if uncovered:
            raise CapabilityError(
                f"{submission.name}: client {caps.client_id!r} may not touch "
                f"{', '.join(uncovered[:5])}"
                + ("…" if len(uncovered) > 5 else "")
                + f" (allowed: {', '.join(caps.allowed_selectors)})"
            )
        if submission.impl_factory is not None and not caps.may_switch_impl:
            raise CapabilityError(
                f"{submission.name}: client {caps.client_id!r} may not switch "
                f"lock implementations"
            )

        live = [
            r
            for r in records
            if r is not record and r.client_id == caps.client_id and r.live
        ]
        if len(live) >= caps.max_live_policies:
            raise QuotaError(
                f"{submission.name}: client {caps.client_id!r} already has "
                f"{len(live)} live policies (quota {caps.max_live_policies})"
            )

        self._check_bundle_conflicts(submission)
        for spec in submission.specs:
            self._check_kernel_conflicts(concord, spec, targets)
            self._check_inflight_conflicts(concord, records, record, spec, targets)
        return targets

    # ------------------------------------------------------------------
    @staticmethod
    def _check_bundle_conflicts(submission) -> None:
        """Specs inside one bundle must compose with each other too."""
        by_hook: Dict[str, List] = {}
        for spec in submission.specs:
            for earlier in by_hook.get(spec.hook, ()):
                if earlier.exclusive or spec.exclusive:
                    raise SubmissionConflictError(
                        f"{submission.name}: bundle specs {earlier.name!r} and "
                        f"{spec.name!r} cannot share hook {spec.hook!r}: "
                        "one is exclusive"
                    )
                if earlier.combiner != spec.combiner:
                    raise SubmissionConflictError(
                        f"{submission.name}: bundle specs {earlier.name!r} and "
                        f"{spec.name!r} disagree on the combiner for "
                        f"{spec.hook!r} ({earlier.combiner!r} vs {spec.combiner!r})"
                    )
            by_hook.setdefault(spec.hook, []).append(spec)

    def _check_kernel_conflicts(self, concord, spec, targets) -> None:
        for lock_name in targets:
            try:
                check_conflicts(concord.chain(lock_name, spec.hook), spec, lock_name)
            except PolicyConflictError as exc:
                raise SubmissionConflictError(str(exc)) from exc

    def _check_inflight_conflicts(self, concord, records, record, spec, targets) -> None:
        """Exclusivity/combiner rules against submissions that are
        admitted but not yet (fully) on the kernel's chains."""
        target_set = set(targets)
        for other in records:
            if other is record or not other.submission.specs:
                continue
            if other.state not in (
                PolicyState.SUBMITTED,
                PolicyState.VERIFIED,
                PolicyState.CANARY,
            ):
                continue
            overlap = target_set & set(
                concord.kernel.locks.select_names(other.submission.lock_selector)
            )
            if not overlap:
                continue
            for other_spec in other.submission.specs:
                if other_spec.hook != spec.hook:
                    continue
                where = f"{spec.hook}@{sorted(overlap)[0]}"
                if spec.exclusive or other_spec.exclusive:
                    raise SubmissionConflictError(
                        f"{spec.name}: conflicts with in-flight submission "
                        f"{other.name!r} ({other.client_id}) on {where}: "
                        + ("new" if spec.exclusive else "in-flight")
                        + " policy is exclusive"
                    )
                if spec.combiner != other_spec.combiner:
                    raise SubmissionConflictError(
                        f"{spec.name}: disagrees with in-flight submission "
                        f"{other.name!r} on the combiner for {where} "
                        f"({spec.combiner!r} vs {other_spec.combiner!r})"
                    )
