"""Admission control: who may touch which locks, and how much.

The paper trusts "privileged userspace"; a control plane serving many
tenants cannot.  Before a submission is verified, the admission
controller enforces three gates:

* **capabilities** — each client is registered with a set of lock-name
  globs it may target; a submission whose selector reaches any lock
  outside that set is denied (:class:`CapabilityError`), as is an
  implementation switch from a client without the switch capability;
* **quotas** — a per-client ceiling on live policies (states SUBMITTED
  through ACTIVE), so one tenant cannot exhaust hook chains or bpffs
  (:class:`QuotaError`);
* **budgets** — kernel-wide ceilings (:class:`KernelBudget`) on the
  total chained instructions per hook and total pinned program bytes
  across *all* clients' live policies, so many small tenants cannot
  together overload a hot lock path even though each is inside its own
  quota (:class:`BudgetError`); enforced per kernel, i.e. per fleet
  member when ``concordd`` drives a fleet;
* **conflicts** — the submission must compose with (a) policies already
  live on the kernel's hook chains, via the same exclusivity/combiner
  rules :mod:`repro.concord.policy` enforces at load time, and (b)
  other clients' *in-flight* submissions that overlap on (hook, lock) —
  two canaries racing for the same slot is exactly the kind of
  conflict the kernel-side check would only catch after the first one
  won (:class:`SubmissionConflictError`).

Denials are typed, carry the offending locks, and leave an audit trail
(the daemon transitions the record to REJECTED with the denial cause).
"""

from __future__ import annotations

import fnmatch
from typing import Dict, Iterable, List, NamedTuple, Optional, Tuple

from ..concord.framework import Concord
from ..concord.policy import PolicyConflictError, check_conflicts
from ..faults import fault_point
from .lifecycle import ControlPlaneError, PolicyRecord, PolicyState

__all__ = [
    "AdmissionError",
    "CapabilityError",
    "QuotaError",
    "BudgetError",
    "SubmissionConflictError",
    "ClientCapabilities",
    "KernelBudget",
    "AdmissionController",
]


class AdmissionError(ControlPlaneError):
    """A submission was denied admission."""


class CapabilityError(AdmissionError):
    """The client lacks the capability the submission needs."""


class QuotaError(AdmissionError):
    """The client's live-policy quota is exhausted."""


class BudgetError(AdmissionError):
    """A kernel-wide admission budget would be exceeded."""


class SubmissionConflictError(AdmissionError):
    """The submission conflicts with a live policy or another in-flight
    submission on some (hook, lock) slot."""


class ClientCapabilities(NamedTuple):
    """What one registered client is allowed to do."""

    client_id: str
    #: lock-name globs this client may target
    allowed_selectors: Tuple[str, ...]
    #: ceiling on policies in LIVE_STATES at once
    max_live_policies: int
    #: may the client's submissions switch lock implementations?
    may_switch_impl: bool

    def covers(self, lock_name: str) -> bool:
        return any(
            fnmatch.fnmatchcase(lock_name, pattern) for pattern in self.allowed_selectors
        )


class KernelBudget(NamedTuple):
    """Kernel-wide admission ceilings, shared by every client.

    Per-client quotas bound *counts*; the budget bounds the aggregate
    *weight* of what is live on one kernel.  ``None`` disables a bound.

    Attributes:
        max_hook_insns: ceiling on the total verified instructions of
            all live policies sharing any one hook (the worst-case
            chained work a single hook invocation can dispatch).
        max_pinned_bytes: ceiling on the total bytes pinned in bpffs by
            live policies (8 bytes per instruction, the BPF wire size).
    """

    max_hook_insns: Optional[int] = None
    max_pinned_bytes: Optional[int] = None


class AdmissionController:
    """Stateless checks over registered capabilities + daemon records.

    Args:
        budget: optional kernel-wide :class:`KernelBudget`; checked by
            :meth:`charge` after verification (instruction counts exist
            only once the programs have compiled).
    """

    def __init__(self, budget: Optional[KernelBudget] = None) -> None:
        self._clients: Dict[str, ClientCapabilities] = {}
        self.budget = budget

    # ------------------------------------------------------------------
    def register(
        self,
        client_id: str,
        allowed_selectors: Iterable[str] = ("*",),
        max_live_policies: int = 4,
        may_switch_impl: bool = True,
    ) -> ClientCapabilities:
        if client_id in self._clients:
            raise AdmissionError(f"client {client_id!r} is already registered")
        caps = ClientCapabilities(
            client_id, tuple(allowed_selectors), max_live_policies, may_switch_impl
        )
        self._clients[client_id] = caps
        return caps

    def client(self, client_id: str) -> ClientCapabilities:
        try:
            return self._clients[client_id]
        except KeyError:
            raise CapabilityError(f"client {client_id!r} is not registered") from None

    def clients(self) -> List[str]:
        return sorted(self._clients)

    # ------------------------------------------------------------------
    def admit(
        self,
        concord: Concord,
        records: Iterable[PolicyRecord],
        record: PolicyRecord,
    ) -> List[str]:
        """Run every gate for ``record``; returns the resolved target
        lock names on success, raises a typed denial otherwise."""
        # An injected fault here is a spurious denial — the daemon must
        # resolve it exactly like a real one (REJECTED, audited, quota
        # untouched), which is what the chaos suite asserts.
        fault_point(
            "controlplane.admission.decision",
            default_exc=AdmissionError,
            policy=record.name,
            client=record.client_id,
        )
        caps = self.client(record.client_id)
        submission = record.submission

        targets = concord.kernel.locks.select_names(submission.lock_selector)
        if not targets:
            raise AdmissionError(
                f"{submission.name}: selector {submission.lock_selector!r} "
                f"matches no registered locks"
            )

        uncovered = [name for name in targets if not caps.covers(name)]
        if uncovered:
            raise CapabilityError(
                f"{submission.name}: client {caps.client_id!r} may not touch "
                f"{', '.join(uncovered[:5])}"
                + ("…" if len(uncovered) > 5 else "")
                + f" (allowed: {', '.join(caps.allowed_selectors)})"
            )
        if submission.impl_factory is not None and not caps.may_switch_impl:
            raise CapabilityError(
                f"{submission.name}: client {caps.client_id!r} may not switch "
                f"lock implementations"
            )

        live = [
            r
            for r in records
            if r is not record and r.client_id == caps.client_id and r.live
        ]
        if len(live) >= caps.max_live_policies:
            raise QuotaError(
                f"{submission.name}: client {caps.client_id!r} already has "
                f"{len(live)} live policies (quota {caps.max_live_policies})"
            )

        self._check_bundle_conflicts(submission)
        for spec in submission.specs:
            self._check_kernel_conflicts(concord, spec, targets)
            self._check_inflight_conflicts(concord, records, record, spec, targets)
        return targets

    # ------------------------------------------------------------------
    def charge(self, records: Iterable[PolicyRecord], record: PolicyRecord) -> None:
        """Check ``record``'s verified footprint against the kernel-wide
        budget (no-op without one).

        Called by the daemon *after* verification fills the record's
        ``insn_counts`` / ``pinned_bytes``; every other live record —
        regardless of owner — counts against the same ceilings, which is
        the point: per-client quotas cannot see aggregate overload.
        """
        if self.budget is None:
            return
        live = [r for r in records if r is not record and r.live]
        if self.budget.max_hook_insns is not None:
            for hook, insns in sorted(record.insn_counts.items()):
                existing = sum(r.insn_counts.get(hook, 0) for r in live)
                if existing + insns > self.budget.max_hook_insns:
                    raise BudgetError(
                        f"{record.name}: hook {hook!r} would carry "
                        f"{existing + insns} chained instructions kernel-wide "
                        f"(budget {self.budget.max_hook_insns}; "
                        f"{existing} already live)"
                    )
        if self.budget.max_pinned_bytes is not None:
            existing = sum(r.pinned_bytes for r in live)
            if existing + record.pinned_bytes > self.budget.max_pinned_bytes:
                raise BudgetError(
                    f"{record.name}: pinning {record.pinned_bytes} bytes would "
                    f"take bpffs to {existing + record.pinned_bytes} bytes "
                    f"(budget {self.budget.max_pinned_bytes}; "
                    f"{existing} already pinned)"
                )

    # ------------------------------------------------------------------
    @staticmethod
    def _check_bundle_conflicts(submission) -> None:
        """Specs inside one bundle must compose with each other too."""
        by_hook: Dict[str, List] = {}
        for spec in submission.specs:
            for earlier in by_hook.get(spec.hook, ()):
                if earlier.exclusive or spec.exclusive:
                    raise SubmissionConflictError(
                        f"{submission.name}: bundle specs {earlier.name!r} and "
                        f"{spec.name!r} cannot share hook {spec.hook!r}: "
                        "one is exclusive"
                    )
                if earlier.combiner != spec.combiner:
                    raise SubmissionConflictError(
                        f"{submission.name}: bundle specs {earlier.name!r} and "
                        f"{spec.name!r} disagree on the combiner for "
                        f"{spec.hook!r} ({earlier.combiner!r} vs {spec.combiner!r})"
                    )
            by_hook.setdefault(spec.hook, []).append(spec)

    def _check_kernel_conflicts(self, concord, spec, targets) -> None:
        for lock_name in targets:
            try:
                check_conflicts(concord.chain(lock_name, spec.hook), spec, lock_name)
            except PolicyConflictError as exc:
                raise SubmissionConflictError(str(exc)) from exc

    def _check_inflight_conflicts(self, concord, records, record, spec, targets) -> None:
        """Exclusivity/combiner rules against submissions that are
        admitted but not yet (fully) on the kernel's chains."""
        target_set = set(targets)
        for other in records:
            if other is record or not other.submission.specs:
                continue
            if other.state not in (
                PolicyState.SUBMITTED,
                PolicyState.VERIFIED,
                PolicyState.CANARY,
            ):
                continue
            overlap = target_set & set(
                concord.kernel.locks.select_names(other.submission.lock_selector)
            )
            if not overlap:
                continue
            for other_spec in other.submission.specs:
                if other_spec.hook != spec.hook:
                    continue
                where = f"{spec.hook}@{sorted(overlap)[0]}"
                if spec.exclusive or other_spec.exclusive:
                    raise SubmissionConflictError(
                        f"{spec.name}: conflicts with in-flight submission "
                        f"{other.name!r} ({other.client_id}) on {where}: "
                        + ("new" if spec.exclusive else "in-flight")
                        + " policy is exclusive"
                    )
                if spec.combiner != other_spec.combiner:
                    raise SubmissionConflictError(
                        f"{spec.name}: disagrees with in-flight submission "
                        f"{other.name!r} on the combiner for {where} "
                        f"({spec.combiner!r} vs {other_spec.combiner!r})"
                    )
