"""The composable rollout-guard library: the canary's pass/fail oracles.

Figure 2(c)'s worst case — up to ~20 % overhead from the dynamic-
modification machinery alone — is the paper's own bound on acceptable
regression.  But "20 % of *what*" matters: a policy that inflates one
hot lock's p99 wait (or starves one NUMA socket, defeating ShflLock's
shuffling — the signal BRAVO and ShflLock both treat as first-class)
sails straight through an average-based bound.  This module turns the
single aggregate oracle into a family:

* :class:`SLOGuard` — the original avg-wait/avg-hold regression bound
  over the whole canary set;
* :class:`TailWaitGuard` — per-lock p99 (any quantile) wait regression
  via the profiler's log₂ wait histograms;
* :class:`FairnessGuard` — per-lock, per-socket acquisition skew vs
  baseline via the profiler's per-socket counters;
* :class:`AllOf` / :class:`AnyOf` — guard composition;
* :func:`pool_reports` — sum per-lock evidence across fleet members so
  the coordinator can judge a wave on pooled counters.

Every breach is a typed :class:`Breach` carrying per-lock attribution
(which lock, which metric, baseline vs observed vs budget, and — for
pooled fleet verdicts — which kernels), not a bare string.  A guard
never acts on its own: the rollout engine decides what a breach means
(roll back, keep watching, halt the fleet, …).
"""

from __future__ import annotations

from typing import Iterable, List, NamedTuple, Optional, Tuple

from ..concord.profiler import (
    LockProfile,
    MAX_SOCKETS,
    ProfileReport,
    WAIT_BUCKETS,
)

__all__ = [
    "AGGREGATE",
    "Breach",
    "Guard",
    "GuardVerdict",
    "SLOVerdict",
    "LockDelta",
    "SLOGuard",
    "TailWaitGuard",
    "WaveDriftGuard",
    "FairnessGuard",
    "AllOf",
    "AnyOf",
    "pool_reports",
]

#: ``Breach.lock_name`` of a canary-set-wide (aggregate) breach.
AGGREGATE = "*"

_METRIC_PHRASES = {
    "avg_wait_ns": "avg wait regressed",
    "avg_hold_ns": "avg hold regressed",
    "socket_skew": "per-socket acquisition skew grew",
}


class Breach(NamedTuple):
    """One guard violation with full per-lock attribution.

    ``lock_name`` is :data:`AGGREGATE` for canary-set-wide breaches.
    ``baseline``/``observed`` are in the metric's own unit (ns for wait
    and hold metrics, an imbalance factor for ``socket_skew``);
    ``budget`` is the guard's threshold (relative for regressions,
    absolute for skew).  ``kernels`` names the fleet members whose
    pooled evidence produced the breach (empty for single-kernel
    verdicts).
    """

    lock_name: str
    metric: str
    baseline: float
    observed: float
    budget: float
    kernels: Tuple[str, ...] = ()

    def describe(self) -> str:
        scope = "canary locks" if self.lock_name == AGGREGATE else self.lock_name
        if self.kernels:
            scope += " [pooled: " + ", ".join(self.kernels) + "]"
        phrase = _METRIC_PHRASES.get(self.metric)
        if self.metric == "socket_skew":
            return (
                f"{scope}: {phrase} {self.baseline:.2f} -> {self.observed:.2f} "
                f"(budget +{self.budget:.2f})"
            )
        if phrase is None:
            # Tail metrics are named for their quantile: p99_wait_ns,
            # or p99_wait_drift_ns for cross-wave drift vs the anchor.
            quantile = self.metric.split("_", 1)[0]
            if self.metric.endswith("_drift_ns"):
                phrase = f"{quantile} wait drifted from the anchor wave"
            else:
                phrase = f"{quantile} wait regressed"
        if self.baseline:
            rel = (self.observed - self.baseline) / self.baseline
            moved = f"{rel:+.0%}"
        else:
            moved = "from a zero baseline"
        return (
            f"{scope}: {phrase} {moved} "
            f"({self.baseline:.0f}ns -> {self.observed:.0f}ns, "
            f"budget {self.budget:+.0%})"
        )

    def __str__(self) -> str:
        return self.describe()


class LockDelta(NamedTuple):
    """Baseline vs canary aggregates for one lock."""

    lock_name: str
    baseline_avg_wait_ns: float
    canary_avg_wait_ns: float
    baseline_avg_hold_ns: float
    canary_avg_hold_ns: float
    canary_acquired: int

    def wait_regression(self, floor_ns: float) -> float:
        """Relative avg-wait regression, guarding tiny baselines."""
        base = max(self.baseline_avg_wait_ns, floor_ns)
        return (self.canary_avg_wait_ns - base) / base


class GuardVerdict:
    """A guard's decision plus everything needed to explain it.

    ``breaches`` remains a list of human-readable strings (the shape
    every existing caller iterates); the typed :class:`Breach` objects
    live in :attr:`attributed`.  ``missing`` names canary locks that
    had no baseline counterpart — they cannot be judged, and silently
    dropping them would let a selector typo pass as "within budget".
    """

    def __init__(
        self,
        ok: bool,
        breaches: Iterable,
        deltas: List[LockDelta],
        ready: bool,
        missing: Optional[List[str]] = None,
    ) -> None:
        self.ok = ok
        breaches = list(breaches)
        #: typed per-lock attribution (everything constructed by this
        #: module; plain strings from legacy callers are kept only in
        #: :attr:`breaches`).
        self.attributed: List[Breach] = [b for b in breaches if isinstance(b, Breach)]
        self.breaches: List[str] = [str(b) for b in breaches]
        self.deltas = deltas
        #: enough samples to be trusted? (mid-run snapshots start cold)
        self.ready = ready
        #: canary locks absent from the baseline report.
        self.missing: List[str] = list(missing or [])

    def describe(self) -> str:
        note = (
            f" ({len(self.missing)} canary lock(s) missing from the "
            f"baseline: {', '.join(self.missing)})"
            if self.missing
            else ""
        )
        if not self.ready:
            return "slo: insufficient canary samples, verdict deferred" + note
        if self.ok:
            return "slo: within budget" + note
        return "slo breach: " + "; ".join(self.breaches) + note

    def __repr__(self) -> str:
        return f"SLOVerdict(ok={self.ok}, ready={self.ready}, breaches={len(self.breaches)})"


#: Back-compat name: the verdict class predates the guard family.
SLOVerdict = GuardVerdict


def _lock_deltas(
    baseline: ProfileReport, canary: ProfileReport
) -> Tuple[List[LockDelta], List[str]]:
    """Per-lock aggregates plus the canary locks the baseline lacks."""
    deltas: List[LockDelta] = []
    missing: List[str] = []
    for profile in canary.profiles:
        before = baseline.by_name(profile.lock_name)
        if before is None:
            missing.append(profile.lock_name)
            continue
        deltas.append(
            LockDelta(
                lock_name=profile.lock_name,
                baseline_avg_wait_ns=before.avg_wait_ns,
                canary_avg_wait_ns=profile.avg_wait_ns,
                baseline_avg_hold_ns=before.avg_hold_ns,
                canary_avg_hold_ns=profile.avg_hold_ns,
                canary_acquired=profile.acquired,
            )
        )
    return deltas, missing


class Guard:
    """Base interface: compare two profiler reports, return a verdict."""

    def evaluate(self, baseline: ProfileReport, canary: ProfileReport) -> GuardVerdict:
        raise NotImplementedError


class SLOGuard(Guard):
    """Regression thresholds over whole-canary-set profiler averages.

    Args:
        max_avg_wait_regression: relative avg-wait-time increase across
            the canary set that trips the guard (default 0.20 — the
            paper's Fig. 2(c) worst case).
        max_avg_hold_regression: optional same-shaped bound on hold time
            (a policy that inflates critical sections — Table 1's
            hazard — trips it).
        min_acquisitions: snapshots with fewer canary-side acquisitions
            than this are "not ready" and never trip the guard.
        wait_floor_ns: wait baselines below this are clamped before the
            relative comparison (an uncontended baseline would otherwise
            turn noise into infinite regressions).
        hold_floor_ns: same clamp for the hold baseline (defaults to
            ``wait_floor_ns``; hold guards used to be silently distorted
            by the wait floor).
    """

    def __init__(
        self,
        max_avg_wait_regression: float = 0.20,
        max_avg_hold_regression: Optional[float] = None,
        min_acquisitions: int = 20,
        wait_floor_ns: float = 50.0,
        hold_floor_ns: Optional[float] = None,
    ) -> None:
        self.max_avg_wait_regression = max_avg_wait_regression
        self.max_avg_hold_regression = max_avg_hold_regression
        self.min_acquisitions = min_acquisitions
        self.wait_floor_ns = wait_floor_ns
        self.hold_floor_ns = wait_floor_ns if hold_floor_ns is None else hold_floor_ns

    # ------------------------------------------------------------------
    def evaluate(self, baseline: ProfileReport, canary: ProfileReport) -> GuardVerdict:
        """Compare aggregate canary behaviour against the baseline."""
        deltas, missing = _lock_deltas(baseline, canary)
        total_acquired = sum(d.canary_acquired for d in deltas)
        if not deltas or total_acquired < self.min_acquisitions:
            return GuardVerdict(True, [], deltas, ready=False, missing=missing)

        breaches: List[Breach] = []
        base_wait = max(
            self._avg(baseline, "wait_total_ns", "acquired"), self.wait_floor_ns
        )
        after_wait = self._avg(canary, "wait_total_ns", "acquired")
        if (after_wait - base_wait) / base_wait > self.max_avg_wait_regression:
            breaches.append(
                Breach(
                    AGGREGATE,
                    "avg_wait_ns",
                    base_wait,
                    after_wait,
                    self.max_avg_wait_regression,
                )
            )
        if self.max_avg_hold_regression is not None:
            base_hold = max(
                self._avg(baseline, "hold_total_ns", "releases"), self.hold_floor_ns
            )
            after_hold = self._avg(canary, "hold_total_ns", "releases")
            if (after_hold - base_hold) / base_hold > self.max_avg_hold_regression:
                breaches.append(
                    Breach(
                        AGGREGATE,
                        "avg_hold_ns",
                        base_hold,
                        after_hold,
                        self.max_avg_hold_regression,
                    )
                )
        return GuardVerdict(not breaches, breaches, deltas, ready=True, missing=missing)

    @staticmethod
    def _avg(report: ProfileReport, total_field: str, count_field: str) -> float:
        total = sum(getattr(p, total_field) for p in report.profiles)
        count = sum(getattr(p, count_field) for p in report.profiles)
        return total / count if count else 0.0


class TailWaitGuard(Guard):
    """Per-lock tail (default p99) wait regression over the profiler's
    log₂ wait histograms.

    This is the guard the average-based bound cannot replace: a policy
    that triples one hot lock's p99 while the canary-set average moves a
    few percent passes :class:`SLOGuard` and trips here, with the breach
    naming the lock.

    Args:
        quantile: which tail to bound (0.99 → metric ``p99_wait_ns``).
        max_tail_regression: relative quantile increase per lock that
            trips the guard.
        min_acquisitions: total canary acquisitions below this defer the
            verdict (not ready).
        min_lock_acquisitions: locks with fewer canary samples than this
            are skipped (one lucky wait must not decide a tail).
        tail_floor_ns: quantile baselines are clamped up to this before
            the relative comparison.
    """

    def __init__(
        self,
        quantile: float = 0.99,
        max_tail_regression: float = 0.20,
        min_acquisitions: int = 20,
        min_lock_acquisitions: int = 5,
        tail_floor_ns: float = 100.0,
    ) -> None:
        self.quantile = quantile
        self.max_tail_regression = max_tail_regression
        self.min_acquisitions = min_acquisitions
        self.min_lock_acquisitions = min_lock_acquisitions
        self.tail_floor_ns = tail_floor_ns
        self.metric = f"p{round(quantile * 100):g}_wait_ns"

    def evaluate(self, baseline: ProfileReport, canary: ProfileReport) -> GuardVerdict:
        deltas, missing = _lock_deltas(baseline, canary)
        total_acquired = sum(d.canary_acquired for d in deltas)
        if not deltas or total_acquired < self.min_acquisitions:
            return GuardVerdict(True, [], deltas, ready=False, missing=missing)
        breaches: List[Breach] = []
        for profile in canary.profiles:
            before = baseline.by_name(profile.lock_name)
            if before is None or profile.acquired < self.min_lock_acquisitions:
                continue
            base = max(before.quantile(self.quantile), self.tail_floor_ns)
            after = profile.quantile(self.quantile)
            if (after - base) / base > self.max_tail_regression:
                breaches.append(
                    Breach(
                        profile.lock_name,
                        self.metric,
                        base,
                        after,
                        self.max_tail_regression,
                    )
                )
        return GuardVerdict(not breaches, breaches, deltas, ready=True, missing=missing)


class WaveDriftGuard(TailWaitGuard):
    """Cross-wave tail drift: wave N's pooled canary vs wave 0's.

    Same per-lock quantile comparison as :class:`TailWaitGuard`, but the
    "baseline" the fleet coordinator feeds it is the **first wave's
    pooled canary evidence** (the rollout's anchor), not the same wave's
    pre-patch baseline.  That closes the slow-regression gap: a policy
    whose cost grows a few percent per wave passes every wave's own
    canary-vs-baseline check, yet by the later cohorts its tail has
    drifted far from where the anchor wave landed — and this guard halts
    the rollout before the last cohort instead of after it.

    The metric is named ``p99_wait_drift_ns`` (for the default quantile)
    so journal entries and breach descriptions distinguish drift from a
    same-wave tail regression.
    """

    def __init__(
        self,
        quantile: float = 0.99,
        max_tail_drift: float = 0.30,
        min_acquisitions: int = 20,
        min_lock_acquisitions: int = 5,
        tail_floor_ns: float = 100.0,
    ) -> None:
        super().__init__(
            quantile=quantile,
            max_tail_regression=max_tail_drift,
            min_acquisitions=min_acquisitions,
            min_lock_acquisitions=min_lock_acquisitions,
            tail_floor_ns=tail_floor_ns,
        )
        self.max_tail_drift = max_tail_drift
        self.metric = f"p{round(quantile * 100):g}_wait_drift_ns"


class FairnessGuard(Guard):
    """Per-lock, per-socket acquisition skew vs baseline.

    The skew statistic is an imbalance factor: the busiest socket's
    share of acquisitions times the number of participating sockets —
    1.0 is perfectly fair, N means one of N sockets took everything
    (the starvation ShflLock's shuffling exists to prevent).  The guard
    trips when a lock's canary imbalance exceeds its baseline imbalance
    by more than ``max_skew_increase`` (absolute, since the statistic
    is already relative).
    """

    def __init__(
        self,
        max_skew_increase: float = 0.25,
        min_acquisitions: int = 20,
        min_lock_acquisitions: int = 5,
    ) -> None:
        self.max_skew_increase = max_skew_increase
        self.min_acquisitions = min_acquisitions
        self.min_lock_acquisitions = min_lock_acquisitions

    @staticmethod
    def imbalance(profile: LockProfile, sockets: Iterable[int]) -> float:
        """Busiest-socket share × participating-socket count (≥ 1.0)."""
        sockets = list(sockets)
        counts = [
            profile.per_socket_acquired[s]
            if s < len(profile.per_socket_acquired)
            else 0
            for s in sockets
        ]
        total = sum(counts)
        if total <= 0 or len(sockets) <= 1:
            return 1.0
        return max(counts) / total * len(sockets)

    def evaluate(self, baseline: ProfileReport, canary: ProfileReport) -> GuardVerdict:
        deltas, missing = _lock_deltas(baseline, canary)
        total_acquired = sum(d.canary_acquired for d in deltas)
        if not deltas or total_acquired < self.min_acquisitions:
            return GuardVerdict(True, [], deltas, ready=False, missing=missing)
        breaches: List[Breach] = []
        for profile in canary.profiles:
            before = baseline.by_name(profile.lock_name)
            if before is None or profile.acquired < self.min_lock_acquisitions:
                continue
            # Judge only sockets that participated in either window: a
            # socket the workload never touches is not "starved".
            sockets = [
                s
                for s in range(MAX_SOCKETS)
                if (s < len(before.per_socket_acquired) and before.per_socket_acquired[s])
                or (s < len(profile.per_socket_acquired) and profile.per_socket_acquired[s])
            ]
            base = self.imbalance(before, sockets)
            after = self.imbalance(profile, sockets)
            if after - base > self.max_skew_increase:
                breaches.append(
                    Breach(
                        profile.lock_name,
                        "socket_skew",
                        base,
                        after,
                        self.max_skew_increase,
                    )
                )
        return GuardVerdict(not breaches, breaches, deltas, ready=True, missing=missing)


def _merge(verdicts: List[GuardVerdict], require_all: bool) -> GuardVerdict:
    """Combine member verdicts.

    A member that is not ready abstains: it can neither pass nor trip
    the composite.  The composite is ready once any member is — a ready
    breach must not be vetoed by a colder guard still warming up.
    """
    ready = [v for v in verdicts if v.ready]
    deltas = max((v.deltas for v in verdicts), key=len, default=[])
    missing = sorted({name for v in verdicts for name in v.missing})
    if not ready:
        return GuardVerdict(True, [], deltas, ready=False, missing=missing)
    ok = all(v.ok for v in ready) if require_all else any(v.ok for v in ready)
    breaches = [b for v in ready for b in v.attributed if not v.ok]
    return GuardVerdict(ok, breaches, deltas, ready=True, missing=missing)


class AllOf(Guard):
    """Every member guard must pass (breaches accumulate)."""

    def __init__(self, *guards: Guard) -> None:
        if not guards:
            raise ValueError("AllOf needs at least one guard")
        self.guards = list(guards)

    def evaluate(self, baseline: ProfileReport, canary: ProfileReport) -> GuardVerdict:
        return _merge([g.evaluate(baseline, canary) for g in self.guards], require_all=True)


class AnyOf(Guard):
    """At least one member guard must pass (escape hatch composition)."""

    def __init__(self, *guards: Guard) -> None:
        if not guards:
            raise ValueError("AnyOf needs at least one guard")
        self.guards = list(guards)

    def evaluate(self, baseline: ProfileReport, canary: ProfileReport) -> GuardVerdict:
        return _merge([g.evaluate(baseline, canary) for g in self.guards], require_all=False)


# ----------------------------------------------------------------------
# Fleet pooling: cross-kernel evidence
# ----------------------------------------------------------------------
def _padded_sum(a: Tuple[int, ...], b: Tuple[int, ...], width: int) -> Tuple[int, ...]:
    length = max(len(a), len(b), width if (a or b) else 0)
    return tuple(
        (a[i] if i < len(a) else 0) + (b[i] if i < len(b) else 0)
        for i in range(length)
    )


def _add_profiles(a: LockProfile, b: LockProfile) -> LockProfile:
    return LockProfile(
        lock_name=a.lock_name,
        attempts=a.attempts + b.attempts,
        contended=a.contended + b.contended,
        acquired=a.acquired + b.acquired,
        wait_total_ns=a.wait_total_ns + b.wait_total_ns,
        hold_total_ns=a.hold_total_ns + b.hold_total_ns,
        releases=a.releases + b.releases,
        wait_histogram=_padded_sum(a.wait_histogram, b.wait_histogram, WAIT_BUCKETS),
        per_socket_acquired=_padded_sum(
            a.per_socket_acquired, b.per_socket_acquired, MAX_SOCKETS
        ),
    )


def pool_reports(reports: Iterable[ProfileReport]) -> ProfileReport:
    """Sum per-lock counters — histograms and socket counts included —
    across fleet members' reports (locks are matched by name: sharded
    fleets run the same lock namespace on every kernel).

    A regression too small (or a window too quiet) to judge on any one
    member becomes judgeable on the pooled counters: three kernels each
    10 acquisitions short of readiness pool into a wave 20 over it.
    """
    merged: dict = {}
    started: Optional[int] = None
    stopped: Optional[int] = None
    for report in reports:
        started = report.started_ns if started is None else min(started, report.started_ns)
        stopped = report.stopped_ns if stopped is None else max(stopped, report.stopped_ns)
        for profile in report.profiles:
            current = merged.get(profile.lock_name)
            merged[profile.lock_name] = (
                profile if current is None else _add_profiles(current, profile)
            )
    profiles = [merged[name] for name in sorted(merged)]
    return ProfileReport(profiles, started or 0, stopped or 0)
