"""The canary rollout engine: measure, install small, watch, decide.

A verified submission never goes fleet-wide at once.  The engine:

1. picks a deterministic **canary subset** of the selector's locks;
2. profiles that subset *before* anything changes (the baseline);
3. installs the submission on the subset only — hook programs through
   :meth:`Concord.load_policy` with explicit targets, implementation
   switches as one livepatch per lock (drain semantics);
4. profiles the subset again under the same workload, optionally in
   watch windows that evaluate the SLO guard mid-benchmark;
5. **promotes** (attaches to the remaining locks) when the guard is
   happy, or **rolls back** when it trips: the hook programs unload and
   every livepatch reverts through the patcher's quiesced revert path,
   so the locks return to their pre-canary implementation with waiters
   intact.

All timing is simulated time; the engine drives the kernel's event loop
itself, so callers just start their workload and hand over control.
"""

from __future__ import annotations

import math
from typing import List, Optional

from ..concord.framework import Concord
from ..concord.profiler import ProfileSession, ProfilerStall
from ..faults import fault_point
from .lifecycle import AuditLog, PolicyRecord, PolicyState
from .guards import SLOGuard

__all__ = ["CanaryRollout", "DEFAULT_MAX_SNAPSHOT_STALLS"]

#: Consecutive profiler-snapshot stalls the canary watchdog tolerates
#: before force-resolving the watch window to ROLLED_BACK.
DEFAULT_MAX_SNAPSHOT_STALLS = 3


class CanaryRollout:
    """Executes SUBMITTED-side-verified records through CANARY."""

    def __init__(self, concord: Concord, audit: AuditLog) -> None:
        self.concord = concord
        self.kernel = concord.kernel
        self.audit = audit

    # ------------------------------------------------------------------
    def plan(self, targets: List[str], fraction: float, min_locks: int) -> List[str]:
        """The default canary subset: deterministic (sorted prefix), at
        least ``min_locks``, never the whole fleet unless the fleet is
        tiny.  The fleet planner replaces this with a placement-aware
        subset via ``run(..., canary_locks=...)``."""
        ordered = sorted(targets)
        count = max(min_locks, math.ceil(len(ordered) * fraction))
        return ordered[: min(count, len(ordered))]

    # ------------------------------------------------------------------
    def run(
        self,
        record: PolicyRecord,
        guard: SLOGuard,
        baseline_ns: int,
        canary_ns: int,
        canary_fraction: float = 0.5,
        min_canary_locks: int = 1,
        check_every_ns: Optional[int] = None,
        settle_ns: int = 2_000,
        max_snapshot_stalls: int = DEFAULT_MAX_SNAPSHOT_STALLS,
        drain_deadline_ns: Optional[int] = None,
        canary_locks: Optional[List[str]] = None,
    ) -> PolicyRecord:
        """Drive one record VERIFIED → CANARY → ACTIVE/ROLLED_BACK.

        ``canary_locks`` overrides the default sorted-prefix subset with
        an explicit one (the fleet planner's placement-aware pick); every
        name must be inside the selector's resolved targets.

        Robustness knobs:

        * ``max_snapshot_stalls`` — the **canary watchdog**: a watch
          window whose profiler snapshots keep stalling can never
          produce a verdict, so after this many *consecutive* stalls
          the window is force-resolved to ROLLED_BACK rather than
          left running an unjudged policy.
        * ``drain_deadline_ns`` — passed to the livepatcher as a
          quiesce deadline for every canary impl switch (``None`` keeps
          the unbounded legacy drain).  A switch that cannot quiesce
          raises :class:`~repro.livepatch.PatchError`, which resolves
          the record to ROLLED_BACK with everything unwound.
        """
        if record.state is not PolicyState.VERIFIED:
            from .lifecycle import LifecycleError

            raise LifecycleError(
                f"{record.name}: rollout needs state VERIFIED, record is {record.state}"
            )
        submission = record.submission
        targets = self.kernel.locks.select_names(submission.lock_selector)
        record.target_locks = targets
        if canary_locks is not None:
            outside = [name for name in canary_locks if name not in targets]
            if outside:
                from .lifecycle import LifecycleError

                raise LifecycleError(
                    f"{record.name}: canary locks outside the selector's "
                    f"targets: {', '.join(outside)}"
                )
            canary_locks = list(dict.fromkeys(canary_locks))
            if not canary_locks:
                from .lifecycle import LifecycleError

                raise LifecycleError(f"{record.name}: empty explicit canary subset")
        else:
            canary_locks = self.plan(targets, canary_fraction, min_canary_locks)
        record.canary_locks = canary_locks
        rest = [name for name in targets if name not in canary_locks]

        # -- 1. baseline window on the untouched canary locks ----------
        session = ProfileSession(self.concord, canary_locks)
        self.kernel.run(until=self.kernel.now + baseline_ns)
        record.baseline_report = session.stop()

        # -- 2. install on the canary subset ---------------------------
        try:
            self._install(record, canary_locks, drain_deadline_ns)
        except Exception as exc:
            # _install unwound everything it had applied; the record
            # resolves terminally so quota and audit stay truthful.
            record.error = str(exc)
            record.transition(
                PolicyState.ROLLED_BACK,
                f"canary install failed ({exc}); nothing left installed",
                self.audit,
                self.kernel.now,
            )
            raise
        record.transition(
            PolicyState.CANARY,
            f"installed on {len(canary_locks)}/{len(targets)} lock(s): "
            + ", ".join(canary_locks),
            self.audit,
            self.kernel.now,
        )
        if settle_ns:
            # Let impl-switch drains engage before measuring.
            self.kernel.run(until=self.kernel.now + settle_ns)

        # -- 3. canary window, optionally with mid-benchmark checks ----
        session = ProfileSession(self.concord, canary_locks)
        end = self.kernel.now + canary_ns
        tripped = None
        watchdog: Optional[str] = None
        stalls = 0
        if check_every_ns:
            while self.kernel.now < end and not record.terminal:
                # Crash-injection checkpoint: the drill kills the daemon
                # here, mid-watch-window, with everything installed.
                fault_point("controlplane.canary.checkpoint", policy=record.name)
                self.kernel.run(until=min(end, self.kernel.now + check_every_ns))
                if record.terminal:
                    break  # breaker auto-rollback resolved it mid-window
                try:
                    snap = session.snapshot()
                except ProfilerStall as exc:
                    stalls += 1
                    if stalls >= max_snapshot_stalls:
                        watchdog = (
                            f"watchdog force-resolved stuck watch window after "
                            f"{stalls} consecutive profiler stalls ({exc})"
                        )
                        break
                    continue
                stalls = 0
                verdict = guard.evaluate(record.baseline_report, snap)
                if verdict.ready and not verdict.ok:
                    tripped = verdict
                    break
        else:
            self.kernel.run(until=end)
        record.canary_report = session.stop()
        if record.terminal:
            # The circuit breaker (via the daemon's fail-open bridge)
            # rolled this record back while the window was running;
            # everything is already torn down and audited.
            return record
        record.verdict = tripped or guard.evaluate(
            record.baseline_report, record.canary_report
        )

        # -- 4. decide -------------------------------------------------
        if watchdog is not None:
            self.rollback(record)
            record.transition(
                PolicyState.ROLLED_BACK,
                f"{watchdog}; restored pre-canary hooks/implementation "
                f"on {len(canary_locks)} lock(s)",
                self.audit,
                self.kernel.now,
            )
            return record
        if tripped is not None or (record.verdict.ready and not record.verdict.ok):
            when = "mid-benchmark " if tripped is not None else ""
            self.rollback(record)
            record.transition(
                PolicyState.ROLLED_BACK,
                f"{when}{record.verdict.describe()}; restored pre-canary "
                f"hooks/implementation on {len(canary_locks)} lock(s)",
                self.audit,
                self.kernel.now,
            )
            return record

        self._promote(record, rest)
        cause = record.verdict.describe() if record.verdict.ready else (
            "canary window too quiet to judge; promoting on verifier trust"
        )
        record.transition(
            PolicyState.ACTIVE,
            f"{cause}; live on all {len(targets)} lock(s)",
            self.audit,
            self.kernel.now,
        )
        return record

    # ------------------------------------------------------------------
    def _install(
        self,
        record: PolicyRecord,
        lock_names: List[str],
        drain_deadline_ns: Optional[int] = None,
    ) -> None:
        submission = record.submission
        loaded = []
        applied = []
        drain_kwargs = (
            {"quiesce_deadline_ns": drain_deadline_ns}
            if drain_deadline_ns is not None
            else {}
        )
        try:
            for spec in submission.specs:
                loaded.append(self.concord.load_policy(spec, targets=lock_names))
            if submission.impl_factory is not None:
                for name in lock_names:
                    applied.append(
                        self.concord.switch_lock(
                            name, submission.impl_factory, **drain_kwargs
                        )
                    )
        except Exception:
            # Unwind *everything* partially applied — later patches
            # first, then the hook programs — so a failed install leaves
            # no patch leaked and no program attached.
            patcher = self.kernel.patcher
            for patch in reversed(applied):
                if patch.name in patcher.active:
                    patcher.revert(patch.name)
            for policy in loaded:
                self.concord.unload_policy(policy.name)
            raise
        record.patches.extend(applied)

    def _promote(self, record: PolicyRecord, rest: List[str]) -> None:
        submission = record.submission
        if rest:
            for spec in submission.specs:
                self.concord.attach_policy(spec.name, rest)
        if submission.impl_factory is not None:
            for name in rest:
                record.patches.append(
                    self.concord.switch_lock(name, submission.impl_factory)
                )

    def rollback(self, record: PolicyRecord) -> None:
        """Undo everything :meth:`_install`/:meth:`_promote` did.

        Hook programs unload (idempotently); implementation patches
        revert newest-first through the patcher's quiesced revert path.
        """
        submission = record.submission
        for spec in submission.specs:
            self.concord.unload_policy(spec.name)
        patcher = self.kernel.patcher
        for patch in reversed(record.patches):
            if patch.name in patcher.active:
                patcher.revert(patch.name)
