"""Adaptive overload defense: detect collapse, propose a cull, canary it.

Every earlier layer waits for an *operator*: someone reads the sweep,
sees the knee, writes a culling policy, submits it, watches the canary.
This module closes that loop.  :class:`CollapseDetector` reads the same
wait histograms the profiler already exports and recognizes the
scalability-collapse signature from the paper's motivating workloads —
tail wait blowing up while per-lock throughput *falls* — and
:class:`AdaptationLoop` turns a detection into a self-proposed
Malthusian culling policy (switch the collapsed lock to
:class:`~repro.locks.culling.CullingLock` with a cap derived from the
healthy reference window), submits it through the same admission and
lifecycle gates every human submission passes, canaries it under a
tail + fairness guard composite, and keeps it only if the tail
actually clears.  Every decision is journaled
(``kind: "adaptation"``, events ``collapse-detected`` /
``cull-proposed`` / ``cull-kept`` / ``cull-rolled-back``) so
:meth:`AdaptationLoop.recover` can replay the loop's history after a
crash and — the invariant chaos tests pin — never leave a
proposed-but-unjudged cull installed.

Collapse signature
------------------

The detector keeps, per lock, the highest-throughput window it has ever
seen (the *reference* — the healthy regime near the knee).  A later
window is a collapse when **both** hold:

* tail blowup: ``p99_wait >= p99_blowup x max(ref p99, tail_floor_ns)``
* throughput drop: ``rate <= (1 - rate_drop) x ref rate``

Either alone is ambiguous — a p99 spike with rising throughput is just
more load; falling throughput with a flat tail is the *workload*
quiescing.  Together they are the non-scalable-collapse curve from the
Malthusian-lock literature: more waiters, more cache-line bouncing per
handoff, less useful work.  Collapsed windows never update the
reference (a detector that learned the collapsed regime as "normal"
would never fire again).

Cap derivation
--------------

``suggested_cap`` comes from Little's law applied to the reference
window: ``L = lambda x W`` with ``lambda`` the reference acquisition
rate (ops/ns) and ``W`` the reference *hold* time gives the average
number of lock **holders** — the lock's utilization, at most ~1 for a
mutex.  That is the Malthusian insight in one number: a saturated lock
needs roughly one holder plus one spinning successor to keep handoffs
cheap, and every admitted waiter beyond that was already pure coherence
overhead at peak.  The cull therefore parks everyone beyond
``max(min_cap, ceil(L))`` — in practice ``min_cap`` (default 2: holder
+ one spinner) for any saturated lock.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, List, NamedTuple, Optional, Sequence

from ..concord.profiler import ProfileReport, ProfileSession
from ..faults.registry import (
    SITE_ADAPTIVE_DETECT,
    SITE_ADAPTIVE_PROPOSE,
    fault_point,
)
from ..locks.culling import CullingLock
from .guards import AllOf, FairnessGuard, Guard, TailWaitGuard, pool_reports
from .journal import JournalError
from .lifecycle import ControlPlaneError, PolicyState, PolicySubmission

__all__ = [
    "AdaptationDecision",
    "AdaptationError",
    "AdaptationLoop",
    "CollapseDetector",
    "CollapseSignal",
    "culling_impl_factory",
    "default_cull_guard",
]


class AdaptationError(ControlPlaneError):
    """An adaptation pass failed (also the natural exception type for
    faults injected at the ``adaptive.*`` sites)."""


class CollapseSignal(NamedTuple):
    """One detected collapse: the evidence plus the proposed remedy."""

    lock_name: str
    p99_ns: float
    rate_per_ms: float
    ref_p99_ns: float
    ref_rate_per_ms: float
    suggested_cap: int

    def describe(self) -> str:
        return (
            f"{self.lock_name}: p99 {self.ref_p99_ns:.0f}->{self.p99_ns:.0f}ns, "
            f"rate {self.ref_rate_per_ms:.1f}->{self.rate_per_ms:.1f} ops/ms "
            f"-- collapse; cull to cap {self.suggested_cap}"
        )


class _Reference(NamedTuple):
    """The best (highest-rate) window seen per lock — the healthy regime."""

    rate_per_ms: float
    p99_ns: float
    avg_wait_ns: float
    avg_hold_ns: float


class CollapseDetector:
    """Recognize the collapse signature in successive profiler windows."""

    def __init__(
        self,
        p99_blowup: float = 3.0,
        rate_drop: float = 0.25,
        min_acquired: int = 20,
        tail_floor_ns: float = 200.0,
        min_cap: int = 2,
        max_cap: int = 8,
    ) -> None:
        if p99_blowup <= 1.0:
            raise ValueError(f"p99_blowup must be > 1, got {p99_blowup}")
        if not 0.0 < rate_drop < 1.0:
            raise ValueError(f"rate_drop must be in (0, 1), got {rate_drop}")
        self.p99_blowup = p99_blowup
        self.rate_drop = rate_drop
        self.min_acquired = min_acquired
        self.tail_floor_ns = tail_floor_ns
        self.min_cap = min_cap
        self.max_cap = max_cap
        self._references: Dict[str, _Reference] = {}

    def reference(self, lock_name: str) -> Optional[_Reference]:
        return self._references.get(lock_name)

    def forget(self, lock_name: str) -> None:
        """Drop a lock's reference (after a kept cull changed its regime)."""
        self._references.pop(lock_name, None)

    def seed_reference(
        self,
        lock_name: str,
        rate_per_ms: float,
        p99_ns: float,
        avg_wait_ns: float = 0.0,
        avg_hold_ns: float = 0.0,
    ) -> None:
        """Restore a healthy reference from journaled evidence.

        A detector rebuilt after a crash has seen no windows; if the
        lock is *still* collapsed, its first observed window would
        become the reference and the collapse signature could never
        fire again.  Recovery re-seeds from the ``collapse-detected``
        journal entry instead, so the replayed loop judges the live
        regime against the same healthy window the crashed loop did.
        """
        self._references[lock_name] = _Reference(
            rate_per_ms=rate_per_ms,
            p99_ns=p99_ns,
            avg_wait_ns=avg_wait_ns,
            avg_hold_ns=avg_hold_ns,
        )

    def suggest_cap(self, ref: _Reference) -> int:
        """Little's law on the reference window (see module docstring):
        ``rate x avg_hold`` is the mean holder count (utilization), and
        the cap admits that many plus the ``min_cap`` floor's spinning
        successor."""
        rate_per_ns = ref.rate_per_ms / 1e6
        holders = rate_per_ns * ref.avg_hold_ns
        return max(self.min_cap, min(self.max_cap, math.ceil(holders)))

    def observe(self, report: ProfileReport) -> List[CollapseSignal]:
        """Fold one window in; returns the collapses it evidences.

        Healthy windows that beat a lock's best-seen rate become its new
        reference; collapsed windows never do.
        """
        signals: List[CollapseSignal] = []
        for profile in report.profiles:
            if profile.acquired < self.min_acquired:
                continue
            name = profile.lock_name
            rate = report.rate_per_ms(name)
            p99 = profile.quantile(0.99)
            ref = self._references.get(name)
            if (
                ref is not None
                and p99 >= self.p99_blowup * max(ref.p99_ns, self.tail_floor_ns)
                and rate <= (1.0 - self.rate_drop) * ref.rate_per_ms
            ):
                signals.append(
                    CollapseSignal(
                        lock_name=name,
                        p99_ns=p99,
                        rate_per_ms=rate,
                        ref_p99_ns=ref.p99_ns,
                        ref_rate_per_ms=ref.rate_per_ms,
                        suggested_cap=self.suggest_cap(ref),
                    )
                )
                continue
            if ref is None or rate > ref.rate_per_ms:
                self._references[name] = _Reference(
                    rate_per_ms=rate,
                    p99_ns=p99,
                    avg_wait_ns=profile.avg_wait_ns,
                    avg_hold_ns=profile.avg_hold_ns,
                )
        return signals


def culling_impl_factory(cap: int) -> Callable:
    """An ``old_impl -> CullingLock`` livepatch factory for one cap."""

    def factory(old):
        return CullingLock(old.engine, name=old.name, cap=cap)

    factory.__name__ = f"culling-cap{cap}"
    return factory


def default_cull_guard() -> Guard:
    """The composite a self-proposed cull must clear.

    The tail budget is deliberately loose (+100% over the *collapsed*
    baseline): a cull's wait distribution is bimodal by design — parked
    waiters pay a park round-trip — so the tail guard here is a
    catastrophe bound, not a regression gate (the loop's post-promotion
    clearance check holds the absolute line).  Fairness is the sharp
    edge: an over-aggressive cap leaves the passive stack deep and
    stable, its LIFO bottom starves socket-clustered waiters, and the
    per-socket skew :class:`FairnessGuard` measures blows through the
    default +0.25 budget."""
    return AllOf(TailWaitGuard(max_tail_regression=1.0), FairnessGuard())


class AdaptationDecision(NamedTuple):
    """What one :meth:`AdaptationLoop.run_once` pass concluded."""

    outcome: str  #: "idle" | "kept" | "rolled-back" | "detect-failed" | "propose-failed"
    signal: Optional[CollapseSignal]
    policy: Optional[str]
    cause: str

    def describe(self) -> str:
        detail = self.signal.describe() if self.signal else self.cause
        policy = f" [{self.policy}]" if self.policy else ""
        return f"{self.outcome}{policy}: {detail}"


class AdaptationLoop:
    """The closed observe -> detect -> propose -> canary -> judge loop.

    Two modes share one control flow:

    * **single-kernel** (``daemon=``): windows profile that daemon's
      kernel, proposals go through ``daemon.submit`` + ``daemon.rollout``.
    * **fleet** (``coordinator=``): windows profile every active member
      and are *pooled* (:func:`pool_reports`) before detection — the
      same sum-the-evidence trick the wave verdicts use, so a collapse
      too shallow on any one member is judged on fleet-wide counters —
      and proposals roll out through ``coordinator.execute`` as a
      single-wave canary plan.

    Fault points: ``adaptive.detect`` fires at the top of every pass (a
    fail skips the pass; a stall runs the kernel forward), and
    ``adaptive.propose`` fires after ``cull-proposed`` is journaled but
    before anything is installed — the crash window :meth:`recover`
    must resolve.  Journal writes are best-effort (``JournalError`` is
    swallowed) *except* none: the no-unjudged-cull invariant rides the
    daemons' own recovery (a crashed CANARY is torn down), not this
    journal, so a lost adaptation entry can cost history but never
    correctness.
    """

    def __init__(
        self,
        daemon=None,
        coordinator=None,
        detector: Optional[CollapseDetector] = None,
        guard: Optional[Guard] = None,
        selector: str = "*",
        window_ns: int = 200_000,
        baseline_ns: int = 60_000,
        canary_ns: int = 60_000,
        check_every_ns: int = 20_000,
        max_residual_tail: float = 2.0,
        recover_fraction: float = 0.75,
        cap_override: Optional[int] = None,
        client_id: str = "adaptd",
    ) -> None:
        if (daemon is None) == (coordinator is None):
            raise ValueError("pass exactly one of daemon= or coordinator=")
        self.daemon = daemon
        self.coordinator = coordinator
        self.detector = detector if detector is not None else CollapseDetector()
        self.guard = guard if guard is not None else default_cull_guard()
        self.selector = selector
        self.window_ns = window_ns
        self.baseline_ns = baseline_ns
        self.canary_ns = canary_ns
        self.check_every_ns = check_every_ns
        self.max_residual_tail = max_residual_tail
        self.recover_fraction = recover_fraction
        self.cap_override = cap_override
        self.client_id = client_id
        #: lock name -> number of proposals ever made for it (names the
        #: next proposal uniquely even across rollbacks and recovery).
        self._proposals: Dict[str, int] = {}
        #: locks currently governed by a *kept* cull — further collapse
        #: signals for them are suppressed (the post-cull regime runs
        #: slower than the pre-knee reference by design; re-proposing
        #: on top of an installed cull would thrash).
        self._governed: Dict[str, str] = {}
        self.history: List[AdaptationDecision] = []
        self._registered = False

    # ------------------------------------------------------------------
    # Mode plumbing
    # ------------------------------------------------------------------
    @property
    def journal(self):
        if self.daemon is not None:
            return self.daemon.journal
        return self.coordinator.journal

    def _kernels(self):
        if self.daemon is not None:
            return [self.daemon.kernel]
        return [
            member.kernel for member in self.coordinator.fleet.active_members()
        ]

    def _advance(self, delta_ns: int) -> None:
        for kernel in self._kernels():
            kernel.run(until=kernel.now + delta_ns)

    def _now(self) -> int:
        kernels = self._kernels()
        return max(k.now for k in kernels) if kernels else 0

    def _journal_event(self, event: str, **fields) -> None:
        journal = self.journal
        if journal is None:
            return
        entry = {"kind": "adaptation", "ts": self._now(), "event": event}
        entry.update(fields)
        try:
            journal.append(entry)
        except JournalError:
            pass  # history lost, correctness carried by daemon recovery

    def observe_window(self, window_ns: Optional[int] = None) -> ProfileReport:
        """Profile one window of simulated time (pooled in fleet mode)."""
        window = window_ns if window_ns is not None else self.window_ns
        if self.daemon is not None:
            session = ProfileSession(self.daemon.concord, self.selector)
            kernel = self.daemon.kernel
            kernel.run(until=kernel.now + window)
            return session.stop()
        sessions = []
        for member in self.coordinator.fleet.active_members():
            sessions.append(ProfileSession(member.concord, self.selector))
        self._advance(window)
        return pool_reports(session.stop() for session in sessions)

    # ------------------------------------------------------------------
    # The loop
    # ------------------------------------------------------------------
    def run_once(self) -> AdaptationDecision:
        """One full pass; returns what it decided (and appends it to
        :attr:`history`)."""
        decision = self._pass()
        self.history.append(decision)
        return decision

    def run(self, passes: int) -> List[AdaptationDecision]:
        """Run up to ``passes`` passes, stopping early once a proposal
        was judged (kept or rolled back)."""
        decisions = []
        for _ in range(passes):
            decision = self.run_once()
            decisions.append(decision)
            if decision.outcome in ("kept", "rolled-back"):
                break
        return decisions

    def _pass(self) -> AdaptationDecision:
        try:
            stall = fault_point(SITE_ADAPTIVE_DETECT, AdaptationError)
            if stall:
                self._advance(stall)
        except AdaptationError as exc:
            return AdaptationDecision(
                "detect-failed", None, None, f"detect pass faulted: {exc}"
            )
        report = self.observe_window()
        signals = [
            signal
            for signal in self.detector.observe(report)
            if signal.lock_name not in self._governed
        ]
        if not signals:
            # Healthy window: feed the learned baselines, if the daemon
            # keeps any (the loop is the steady trickle of trusted
            # windows the calibration story needs).
            if self.daemon is not None:
                self.daemon.observe_report(report)
            return AdaptationDecision("idle", None, None, "no collapse signature")
        signal = signals[0]  # one proposal per pass: judge before more
        ref = self.detector.reference(signal.lock_name)
        self._journal_event(
            "collapse-detected",
            lock=signal.lock_name,
            p99_ns=signal.p99_ns,
            ref_p99_ns=signal.ref_p99_ns,
            rate_per_ms=signal.rate_per_ms,
            ref_rate_per_ms=signal.ref_rate_per_ms,
            # The full reference rides along so a post-crash recover()
            # can re-seed a fresh detector with the healthy window.
            ref_avg_wait_ns=ref.avg_wait_ns if ref else 0.0,
            ref_avg_hold_ns=ref.avg_hold_ns if ref else 0.0,
            suggested_cap=signal.suggested_cap,
        )
        cap = self.cap_override if self.cap_override is not None else signal.suggested_cap
        seq = self._proposals.get(signal.lock_name, 0) + 1
        self._proposals[signal.lock_name] = seq
        policy = f"cull.{signal.lock_name}.{seq}"
        self._journal_event(
            "cull-proposed", lock=signal.lock_name, policy=policy, cap=cap
        )
        try:
            stall = fault_point(
                SITE_ADAPTIVE_PROPOSE, AdaptationError, lock=signal.lock_name
            )
            if stall:
                self._advance(stall)
        except AdaptationError as exc:
            # Journaled as proposed but nothing installed: resolve it
            # right here so the journal never ends on an open proposal.
            cause = f"proposal aborted before install: {exc}"
            self._journal_event("cull-rolled-back", policy=policy, cause=cause)
            return AdaptationDecision("propose-failed", signal, policy, cause)
        promoted, cause = self._canary(policy, signal, cap)
        if not promoted:
            self._drain_switches(signal.lock_name)
            self._journal_event("cull-rolled-back", policy=policy, cause=cause)
            return AdaptationDecision("rolled-back", signal, policy, cause)
        kept, verdict, post = self._judge_clearance(signal)
        if kept:
            self._governed[signal.lock_name] = policy
            self.detector.forget(signal.lock_name)
            self._journal_event("cull-kept", policy=policy, cause=verdict, **post)
            return AdaptationDecision("kept", signal, policy, verdict)
        self._force_rollback(policy, verdict)
        self._drain_switches(signal.lock_name)
        self._journal_event("cull-rolled-back", policy=policy, cause=verdict, **post)
        return AdaptationDecision("rolled-back", signal, policy, verdict)

    # ------------------------------------------------------------------
    # Canary plumbing
    # ------------------------------------------------------------------
    def _submission(self, policy: str, lock_name: str, cap: int) -> PolicySubmission:
        return PolicySubmission(
            impl_factory=culling_impl_factory(cap),
            name=policy,
            lock_selector=lock_name,
            impl_name=f"culling-cap{cap}",
        )

    def _canary(self, policy: str, signal: CollapseSignal, cap: int):
        """Submit + canary the cull; returns ``(promoted, cause)``."""
        if self.daemon is not None:
            return self._canary_single(policy, signal, cap)
        return self._canary_fleet(policy, signal, cap)

    def _canary_single(self, policy: str, signal: CollapseSignal, cap: int):
        daemon = self.daemon
        if not self._registered:
            try:
                daemon.register_client(self.client_id)
            except ControlPlaneError:
                pass  # journal replay already restored our registration
            self._registered = True
        # Recovery re-attaches by impl name: the factory must outlive us.
        daemon.impl_registry[f"culling-cap{cap}"] = culling_impl_factory(cap)
        try:
            record = daemon.submit(
                self.client_id, self._submission(policy, signal.lock_name, cap)
            )
            if record.state is not PolicyState.VERIFIED:
                return False, f"submission not verified: {record.state.name}"
            record = daemon.rollout(
                policy,
                guard=self.guard,
                baseline_ns=self.baseline_ns,
                canary_ns=self.canary_ns,
                check_every_ns=self.check_every_ns,
                canary_locks=[signal.lock_name],
            )
        except ControlPlaneError as exc:
            return False, f"canary failed: {exc}"
        if record.state is PolicyState.ACTIVE:
            return True, "canary promoted"
        verdict = record.verdict.describe() if record.verdict else record.state.name
        return False, f"canary verdict: {verdict}"

    def _canary_fleet(self, policy: str, signal: CollapseSignal, cap: int):
        from ..fleet.planner import FleetPlan, WaveSpec

        coordinator = self.coordinator
        members = coordinator.fleet.active_members()
        if not members:
            return False, "no active members"
        for member in members:
            member.register_impl(f"culling-cap{cap}", culling_impl_factory(cap))
        names = [member.name for member in members]
        plan = FleetPlan(
            policy=policy,
            waves=[WaveSpec(index=0, kernels=names, canary=True, bake_ns=0)],
            canary_locks={name: [signal.lock_name] for name in names},
        )
        try:
            rollout = coordinator.execute(
                plan,
                lambda member: self._submission(policy, signal.lock_name, cap),
                guard=self.guard,
                baseline_ns=self.baseline_ns,
                canary_ns=self.canary_ns,
                check_every_ns=self.check_every_ns,
            )
        except ControlPlaneError as exc:
            return False, f"fleet canary failed: {exc}"
        if rollout.state.name == "COMPLETE":
            return True, "fleet canary complete"
        return False, rollout.halt_cause or f"fleet rollout {rollout.state.name}"

    def _judge_clearance(self, signal: CollapseSignal):
        """Post-promotion check: did the cull actually fix anything?

        The canary guard already compared the cull against the
        *collapsed* baseline; this judges the absolute outcome.  A
        Malthusian cull's wait distribution is deliberately bimodal —
        admitted spinners wait almost nothing, parked waiters wait a
        park round-trip — so "the tail cleared" cannot mean "p99
        shrank".  It means the collapse signature is *gone*: throughput
        back above ``recover_fraction`` of the healthy reference rate
        (an over-aggressive cap leaves it on the floor), and the
        residual parked tail bounded by ``max_residual_tail`` times the
        collapsed p99 (a cull that made waiting strictly worse is no
        defense).  A cull that passed its canary but failed either is
        rolled back.
        """
        post = self.observe_window()
        profile = post.by_name(signal.lock_name)
        if profile is None or profile.acquired == 0:
            return False, "post-cull window empty", {}
        p99 = profile.quantile(0.99)
        rate = post.rate_per_ms(signal.lock_name)
        metrics = {"p99_ns": p99, "rate_per_ms": rate}
        bounded = p99 <= self.max_residual_tail * signal.p99_ns
        recovered = rate >= self.recover_fraction * signal.ref_rate_per_ms
        verdict = (
            f"post-cull p99 {p99:.0f}ns vs collapsed {signal.p99_ns:.0f}ns, "
            f"rate {rate:.1f} vs reference {signal.ref_rate_per_ms:.1f} ops/ms"
        )
        if bounded and recovered:
            return True, f"tail cleared: {verdict}", metrics
        if not recovered:
            return False, f"throughput did not recover: {verdict}", metrics
        return False, f"residual tail unbounded: {verdict}", metrics

    def _drain_switches(self, lock_name: str) -> None:
        """Run each kernel until the lock's pending impl switch drains.

        Rollback goes through the patcher's *quiesced* revert: the
        counter-switch is only requested, and installs when the site
        next quiesces — which takes simulated time nobody else will
        spend once the canary has returned.  A rolled-back decision
        must not leave the culled impl installed, so the loop drives
        the drain itself (bounded, in case the site never quiesces).
        """
        for kernel in self._kernels():
            site = kernel.locks.get(lock_name)
            if site is None:
                continue
            for _ in range(16):
                if site.core.pending_impl is None:
                    break
                kernel.run(until=kernel.now + max(1, self.check_every_ns))

    def _force_rollback(self, policy: str, cause: str) -> None:
        if self.daemon is not None:
            try:
                self.daemon.force_rollback(policy, cause)
            except ControlPlaneError:
                pass
            return
        for member in self.coordinator.fleet.active_members():
            record = member.daemon.records.get(policy)
            if record is not None and record.state is PolicyState.ACTIVE:
                try:
                    member.daemon.force_rollback(policy, cause)
                except ControlPlaneError:
                    pass

    # ------------------------------------------------------------------
    # Recovery
    # ------------------------------------------------------------------
    def recover(self) -> Dict[str, int]:
        """Replay adaptation history and resolve open proposals.

        Call *after* the daemon's (or coordinator's) own ``recover()``:
        by then every crashed CANARY has been torn down and every
        surviving ACTIVE re-attached, so an open ``cull-proposed`` can
        be judged by what actually survived — ACTIVE means the canary
        promoted before the crash (journal ``cull-kept``), anything
        else means the proposal died with it (``cull-rolled-back``).
        Either way the journal never ends on an unjudged cull.
        """
        journal = self.journal
        if journal is None:
            return {"replayed": 0, "resolved": 0}
        last_event: Dict[str, Dict] = {}
        replayed = 0
        for entry in journal.entries():
            if entry.get("kind") != "adaptation":
                continue
            replayed += 1
            event = entry.get("event")
            if event == "collapse-detected":
                # Re-seed the healthy reference: a fresh detector facing
                # a still-collapsed lock must not learn the collapse as
                # its baseline (see CollapseDetector.seed_reference).
                self.detector.seed_reference(
                    str(entry.get("lock")),
                    float(entry.get("ref_rate_per_ms", 0.0)),
                    float(entry.get("ref_p99_ns", 0.0)),
                    avg_wait_ns=float(entry.get("ref_avg_wait_ns", 0.0)),
                    avg_hold_ns=float(entry.get("ref_avg_hold_ns", 0.0)),
                )
            elif event == "cull-proposed":
                lock = str(entry.get("lock"))
                policy = str(entry.get("policy"))
                seq = self._seq_of(policy)
                if seq > self._proposals.get(lock, 0):
                    self._proposals[lock] = seq
                last_event[policy] = dict(entry, lock=lock)
            elif event in ("cull-kept", "cull-rolled-back"):
                policy = str(entry.get("policy"))
                open_entry = last_event.get(policy)
                if event == "cull-kept" and open_entry is not None:
                    self._governed[open_entry["lock"]] = policy
                last_event[policy] = dict(entry)
        resolved = 0
        for policy, entry in last_event.items():
            if entry.get("event") != "cull-proposed":
                continue
            resolved += 1
            if self._is_active(policy):
                self._governed[entry["lock"]] = policy
                self._journal_event(
                    "cull-kept",
                    policy=policy,
                    cause="recovered: canary promoted before the crash",
                )
            else:
                self._journal_event(
                    "cull-rolled-back",
                    policy=policy,
                    cause="recovered: proposal unjudged at crash; not kept",
                )
        for lock in self._governed:
            self.detector.forget(lock)
        return {"replayed": replayed, "resolved": resolved}

    @staticmethod
    def _seq_of(policy: str) -> int:
        try:
            return int(policy.rsplit(".", 1)[1])
        except (IndexError, ValueError):
            return 0

    def _is_active(self, policy: str) -> bool:
        if self.daemon is not None:
            record = self.daemon.records.get(policy)
            return record is not None and record.state is PolicyState.ACTIVE
        return any(
            member.daemon.records.get(policy) is not None
            and member.daemon.records[policy].state is PolicyState.ACTIVE
            for member in self.coordinator.fleet.active_members()
        )
