"""Dynamic concurrency control for *userspace* locks (§6).

"In addition to kernel locks, userspace applications have their own
locks ... We plan to extend Concord for userspace applications that
provides more control of the concurrency control in a dynamic manner,
while the application is running.  In contrast, existing techniques,
such as library interposition, allow only a one time change to a
different lock implementation when the application starts its
execution."

:class:`UserspaceRuntime` models both worlds over the same machinery:

* :meth:`interpose` — the LD_PRELOAD baseline: pick an implementation
  for a named lock **before the application starts**; afterwards it
  raises, exactly like real interposition;
* :meth:`retune` — the C3 way: swap the implementation at any time with
  drain semantics (the app's threads keep running).

Application locks register in the kernel's lock registry under
``user.<app>.<lock>``, so the very same :class:`~repro.concord.Concord`
instance (and profiler, and policies) that tunes kernel locks tunes
application locks too — the unification §6 argues for.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from ..kernel.core import Kernel
from ..locks.base import Lock, LockError
from ..locks.mutex import SpinParkMutex
from ..locks.switchable import SwitchableLock
from ..sim.task import Task

__all__ = ["UserspaceRuntime", "InterpositionError"]


class InterpositionError(LockError):
    """A one-time interposition was attempted after application start."""


class UserspaceRuntime:
    """One application's lock namespace inside the simulated process."""

    def __init__(self, kernel: Kernel, app_name: str = "app") -> None:
        self.kernel = kernel
        self.app_name = app_name
        self._locks: Dict[str, SwitchableLock] = {}
        self._started = False
        self.threads_spawned = 0

    # ------------------------------------------------------------------
    def create_lock(self, name: str, impl: Optional[Lock] = None) -> SwitchableLock:
        """Declare an application lock (default: a pthread-style mutex)."""
        if name in self._locks:
            raise LockError(f"{self.app_name}: lock {name!r} already exists")
        if impl is None:
            impl = SpinParkMutex(self.kernel.engine, name=f"{self.app_name}.{name}")
        site = self.kernel.add_lock(self._registry_name(name), impl)
        self._locks[name] = site
        return site

    def lock(self, name: str) -> SwitchableLock:
        try:
            return self._locks[name]
        except KeyError:
            raise LockError(f"{self.app_name}: no lock named {name!r}") from None

    def _registry_name(self, name: str) -> str:
        return f"user.{self.app_name}.{name}"

    # ------------------------------------------------------------------
    # The two worlds
    # ------------------------------------------------------------------
    def interpose(self, name: str, factory: Callable[[Lock], Lock]) -> None:
        """Library interposition: swap the implementation — but only
        before the application has started (the baseline's limitation)."""
        if self._started:
            raise InterpositionError(
                f"{self.app_name}: library interposition cannot retarget "
                f"{name!r} after the application has started — use retune()"
            )
        site = self.lock(name)
        site.core.impl = factory(site.core.impl)

    def retune(self, name: str, factory: Callable[[Lock], Lock]):
        """C3-style dynamic retargeting: works while threads are running
        (drain semantics via the switchable call site)."""
        return self.kernel.patcher.switch_lock(self._registry_name(name), factory)

    # ------------------------------------------------------------------
    def connect(self, daemon, **capabilities):
        """Open a control-plane session for this application.

        The client id is the app name and, unless overridden, the
        session may only target the app's own ``user.<app>.*`` locks —
        the multi-tenant counterpart of :meth:`retune`.
        """
        from .client import PolicyClient

        capabilities.setdefault("allowed_selectors", (f"user.{self.app_name}.*",))
        return PolicyClient.connect(daemon, self.app_name, **capabilities)

    # ------------------------------------------------------------------
    def spawn(self, body, cpu: int, name: str = "", **kwargs) -> Task:
        """Start an application thread; the first spawn starts the app."""
        self._started = True
        self.threads_spawned += 1
        return self.kernel.spawn(
            body, cpu, name=name or f"{self.app_name}-t{self.threads_spawned}", **kwargs
        )

    @property
    def started(self) -> bool:
        return self._started

    def __repr__(self) -> str:
        state = "running" if self._started else "not started"
        return f"UserspaceRuntime({self.app_name!r}, {len(self._locks)} locks, {state})"
