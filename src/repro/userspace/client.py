"""Client sessions against ``concordd`` (the multi-tenant side of §6).

A :class:`PolicyClient` is one application's authenticated handle on the
control plane: it can **submit** policy bundles, **watch** its own audit
trail, and **withdraw** what it no longer wants — and nothing else.
Capabilities and quotas are fixed at registration, so two sessions can
safely race submissions at the same daemon: the admission controller
serializes them and the loser gets a typed denial, not a half-installed
policy.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Tuple

from ..controlplane.daemon import Concordd
from ..controlplane.lifecycle import AuditRecord, PolicyRecord, PolicySubmission

__all__ = ["PolicyClient"]


class PolicyClient:
    """One client's session with a :class:`~repro.controlplane.Concordd`.

    Construct via :meth:`connect` (registers the client) or wrap an
    already-registered identity with ``PolicyClient(daemon, client_id)``.
    """

    def __init__(self, daemon: Concordd, client_id: str) -> None:
        self.daemon = daemon
        self.client_id = client_id
        self.daemon.admission.client(client_id)  # must be registered

    @classmethod
    def connect(
        cls,
        daemon: Concordd,
        client_id: str,
        allowed_selectors: Iterable[str] = ("*",),
        max_live_policies: int = 4,
        may_switch_impl: bool = True,
    ) -> "PolicyClient":
        """Register ``client_id`` with the daemon and open a session."""
        daemon.register_client(
            client_id, allowed_selectors, max_live_policies, may_switch_impl
        )
        return cls(daemon, client_id)

    # ------------------------------------------------------------------
    def submit(self, submission: PolicySubmission) -> PolicyRecord:
        return self.daemon.submit(self.client_id, submission)

    def rollout(self, name: str, **kwargs) -> PolicyRecord:
        record = self.daemon.status(name)
        if record.client_id != self.client_id:
            from ..controlplane.admission import CapabilityError

            raise CapabilityError(
                f"client {self.client_id!r} may not roll out {name!r} "
                f"(owned by {record.client_id!r})"
            )
        return self.daemon.rollout(name, **kwargs)

    def withdraw(self, name: str) -> PolicyRecord:
        return self.daemon.withdraw(self.client_id, name)

    # ------------------------------------------------------------------
    def status(self, name: str) -> PolicyRecord:
        return self.daemon.status(name)

    def policies(self) -> List[PolicyRecord]:
        return self.daemon.policies(self.client_id)

    def watch(self, since_ns: Optional[int] = None) -> Tuple[AuditRecord, ...]:
        """This client's audit trail, optionally only entries after
        ``since_ns`` (poll-style watching from a simulated app)."""
        records = self.daemon.watch(self.client_id)
        if since_ns is None:
            return records
        return tuple(r for r in records if r.time_ns > since_ns)

    def __repr__(self) -> str:
        return f"PolicyClient({self.client_id!r}, {len(self.policies())} policies)"
