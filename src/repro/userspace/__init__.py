"""Userspace concurrency control (the paper's §6 extension)."""

from .client import PolicyClient
from .runtime import InterpositionError, UserspaceRuntime

__all__ = ["InterpositionError", "PolicyClient", "UserspaceRuntime"]
