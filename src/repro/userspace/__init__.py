"""Userspace concurrency control (the paper's §6 extension)."""

from .runtime import InterpositionError, UserspaceRuntime

__all__ = ["InterpositionError", "UserspaceRuntime"]
