"""Deterministic fault injection for the policy pipeline.

Usage::

    from repro.faults import FaultPlan, injected

    plan = FaultPlan(seed=7)
    plan.fail("concord.verifier", times=2)        # two verifier flakes
    plan.stall("livepatch.drain", delay_ns=50_000)  # drain won't quiesce
    with injected(plan):
        daemon.rollout("policy")

For randomized coverage, :func:`sample_plan` draws a survivable plan
from a seed (the ``--chaos-seed`` CI mode).
"""

from .chaos import (
    CHAOS_ADAPTIVE_SITES,
    CHAOS_CRASH_SITES,
    CHAOS_FAIL_SITES,
    CHAOS_MEMBER_SITES,
    CHAOS_NET_SITES,
    CHAOS_REPLICATION_SITES,
    CHAOS_STALL_SITES,
    CHAOS_STORAGE_SITES,
    CHAOS_TRAFFIC_SITES,
    sample_plan,
)
from .plan import FaultError, FaultPlan, FaultRule, InjectedCrash
from .registry import (
    SITE_ADMISSION_DECISION,
    SITE_BPF_HELPER,
    SITE_BPF_VM_BUDGET,
    SITE_BPFFS_PIN,
    SITE_BPFFS_UNPIN,
    SITE_CANARY_CHECKPOINT,
    SITE_FLEET_DEBT_DRAIN,
    SITE_FLEET_HEARTBEAT,
    SITE_FLEET_MEMBER_CALL,
    SITE_FLEET_PROBE,
    SITE_FLEET_REVERT,
    SITE_FLEET_WAVE,
    SITE_JOURNAL_APPEND,
    SITE_JOURNAL_FSYNC,
    SITE_JOURNAL_REPLAY,
    SITE_ADAPTIVE_DETECT,
    SITE_ADAPTIVE_PROPOSE,
    SITE_NET_LINK_DELIVER,
    SITE_NET_PARTITION_FLIP,
    SITE_PATCH_DRAIN,
    SITE_PATCH_ENABLE,
    SITE_PROFILER_HISTOGRAM,
    SITE_PROFILER_SNAPSHOT,
    SITE_REPLICATION_APPEND,
    SITE_REPLICATION_CATCHUP,
    SITE_REPLICATION_READ,
    SITE_STORAGE_CORRUPT_DIGEST,
    SITE_STORAGE_CORRUPT_LINE,
    SITE_STORAGE_CORRUPT_SNAPSHOT,
    SITE_TRAFFIC_PHASE_SHIFT,
    SITE_VERIFIER,
    active,
    clear,
    fault_point,
    injected,
    install,
)

__all__ = [
    "FaultError",
    "FaultPlan",
    "FaultRule",
    "InjectedCrash",
    "fault_point",
    "install",
    "clear",
    "active",
    "injected",
    "sample_plan",
    "CHAOS_ADAPTIVE_SITES",
    "CHAOS_FAIL_SITES",
    "CHAOS_STALL_SITES",
    "CHAOS_CRASH_SITES",
    "CHAOS_MEMBER_SITES",
    "CHAOS_NET_SITES",
    "CHAOS_REPLICATION_SITES",
    "CHAOS_STORAGE_SITES",
    "CHAOS_TRAFFIC_SITES",
    "SITE_BPF_HELPER",
    "SITE_BPF_VM_BUDGET",
    "SITE_VERIFIER",
    "SITE_BPFFS_PIN",
    "SITE_BPFFS_UNPIN",
    "SITE_PROFILER_SNAPSHOT",
    "SITE_PROFILER_HISTOGRAM",
    "SITE_PATCH_ENABLE",
    "SITE_PATCH_DRAIN",
    "SITE_CANARY_CHECKPOINT",
    "SITE_ADMISSION_DECISION",
    "SITE_JOURNAL_APPEND",
    "SITE_JOURNAL_FSYNC",
    "SITE_JOURNAL_REPLAY",
    "SITE_FLEET_WAVE",
    "SITE_FLEET_REVERT",
    "SITE_FLEET_PROBE",
    "SITE_FLEET_HEARTBEAT",
    "SITE_FLEET_MEMBER_CALL",
    "SITE_FLEET_DEBT_DRAIN",
    "SITE_REPLICATION_APPEND",
    "SITE_REPLICATION_READ",
    "SITE_REPLICATION_CATCHUP",
    "SITE_STORAGE_CORRUPT_LINE",
    "SITE_STORAGE_CORRUPT_SNAPSHOT",
    "SITE_STORAGE_CORRUPT_DIGEST",
    "SITE_TRAFFIC_PHASE_SHIFT",
    "SITE_NET_PARTITION_FLIP",
    "SITE_NET_LINK_DELIVER",
    "SITE_ADAPTIVE_DETECT",
    "SITE_ADAPTIVE_PROPOSE",
]
