"""Deterministic fault injection for the policy pipeline.

Usage::

    from repro.faults import FaultPlan, injected

    plan = FaultPlan(seed=7)
    plan.fail("concord.verifier", times=2)        # two verifier flakes
    plan.stall("livepatch.drain", delay_ns=50_000)  # drain won't quiesce
    with injected(plan):
        daemon.rollout("policy")
"""

from .plan import FaultError, FaultPlan, FaultRule, InjectedCrash
from .registry import (
    SITE_BPF_HELPER,
    SITE_BPF_VM_BUDGET,
    SITE_BPFFS_PIN,
    SITE_BPFFS_UNPIN,
    SITE_CANARY_CHECKPOINT,
    SITE_PATCH_DRAIN,
    SITE_PATCH_ENABLE,
    SITE_PROFILER_SNAPSHOT,
    SITE_VERIFIER,
    active,
    clear,
    fault_point,
    injected,
    install,
)

__all__ = [
    "FaultError",
    "FaultPlan",
    "FaultRule",
    "InjectedCrash",
    "fault_point",
    "install",
    "clear",
    "active",
    "injected",
    "SITE_BPF_HELPER",
    "SITE_BPF_VM_BUDGET",
    "SITE_VERIFIER",
    "SITE_BPFFS_PIN",
    "SITE_BPFFS_UNPIN",
    "SITE_PROFILER_SNAPSHOT",
    "SITE_PATCH_ENABLE",
    "SITE_PATCH_DRAIN",
    "SITE_CANARY_CHECKPOINT",
]
