"""Deterministic fault plans: *what* fails, *where*, and *how often*.

A :class:`FaultPlan` is a seedable, ordered list of :class:`FaultRule`
objects.  Real code paths consult the plan through
:func:`repro.faults.registry.fault_point` at **named sites** — the same
idea as the kernel's ``fail_function``/``failslab`` knobs, specialised
for the policy pipeline.  A rule can

* **fail** — raise a typed exception at the site (verifier flake, pin
  I/O error, helper fault, instruction-budget exhaustion);
* **stall** — return a positive delay the site interprets as simulated
  latency (a livepatch drain that refuses to quiesce, a profiler
  snapshot that hangs);
* **crash** — raise :class:`InjectedCrash`, the drill harness's model
  of ``kill -9`` hitting the control plane mid-operation.

Determinism: rule selection is pure bookkeeping (hit counters), and the
only randomness — ``probability`` — draws from the plan's own seeded
RNG, so the same (plan, workload seed) pair always fails the same way.
The plan also records every hit and every firing, which tests use to
assert that the sites they armed were actually exercised.
"""

from __future__ import annotations

import fnmatch
from collections import Counter
from random import Random
from typing import Any, Dict, List, Optional, Tuple

__all__ = ["FaultError", "InjectedCrash", "FaultRule", "FaultPlan"]


class FaultError(Exception):
    """Default exception for a fail-rule whose site declares no type."""


class InjectedCrash(BaseException):
    """The fault plan killed the control plane (simulated ``kill -9``).

    Deliberately *not* an :class:`Exception` subclass so no pipeline
    ``except Exception`` handler can swallow it — a crash unwinds the
    daemon without any teardown, exactly like the real signal.
    """


class FaultRule:
    """One injection rule: where it applies and what it does.

    Args:
        site: fnmatch glob over fault-site names (``"livepatch.*"``).
        error: for fail-rules — an exception class or a callable
            ``msg -> exception``.  ``None`` on a fail-rule defers to the
            site's declared default type (so an injected verifier flake
            really is a :class:`VerificationError`).
        delay_ns: for stall-rules — the simulated stall returned to the
            site.  A rule is a stall-rule iff ``delay_ns > 0`` and no
            ``error`` is set.
        times: how many times the rule fires (``None`` = unlimited).
        after: skip the first ``after`` matching hits (fire on the
            ``after+1``-th).
        probability: chance an eligible hit fires, drawn from the plan's
            seeded RNG.
        match: optional ``{ctx_key: glob}`` filters over the keyword
            context the site passes (e.g. ``{"program": "steady*"}``
            faults only one policy's programs).
    """

    def __init__(
        self,
        site: str,
        *,
        error: Any = None,
        delay_ns: int = 0,
        times: Optional[int] = 1,
        after: int = 0,
        probability: float = 1.0,
        match: Optional[Dict[str, str]] = None,
    ) -> None:
        if delay_ns < 0:
            raise ValueError("delay_ns must be >= 0")
        if not 0.0 <= probability <= 1.0:
            raise ValueError("probability must be within [0, 1]")
        if delay_ns and error is not None:
            raise ValueError("a rule either fails or stalls, not both")
        self.site = site
        self.error = error
        self.delay_ns = delay_ns
        self.times = times
        self.after = after
        self.probability = probability
        self.match = dict(match or {})
        self.hit_count = 0
        self.fire_count = 0

    @property
    def is_stall(self) -> bool:
        return self.delay_ns > 0 and self.error is None

    def matches(self, site: str, ctx: Dict[str, Any]) -> bool:
        if not fnmatch.fnmatchcase(site, self.site):
            return False
        for key, pattern in self.match.items():
            if key not in ctx or not fnmatch.fnmatchcase(str(ctx[key]), pattern):
                return False
        return True

    def make_exception(self, site: str, ctx: Dict[str, Any], default_exc: Any) -> BaseException:
        detail = ", ".join(f"{k}={v!r}" for k, v in sorted(ctx.items()))
        message = f"injected fault at {site}" + (f" ({detail})" if detail else "")
        factory = self.error if self.error is not None else default_exc
        if factory is None:
            factory = FaultError
        if isinstance(factory, BaseException):
            return factory
        return factory(message)

    def __repr__(self) -> str:
        kind = "stall" if self.is_stall else "fail"
        return (
            f"FaultRule({self.site!r}, {kind}, fired {self.fire_count}"
            + (f"/{self.times}" if self.times is not None else "")
            + ")"
        )


class FaultPlan:
    """An ordered, seedable set of rules plus per-site accounting."""

    def __init__(self, seed: int = 0, name: str = "faultplan") -> None:
        self.seed = seed
        self.name = name
        self.rng = Random(seed)
        self.rules: List[FaultRule] = []
        #: every consultation, fired or not (site coverage assertions)
        self.hits: Counter = Counter()
        #: firings per site
        self.fired: Counter = Counter()
        #: chronological record of what fired: (site, rule index)
        self.log: List[Tuple[str, int]] = []

    # -- rule builders --------------------------------------------------
    def add(self, rule: FaultRule) -> FaultRule:
        self.rules.append(rule)
        return rule

    def fail(self, site: str, error: Any = None, **kwargs) -> FaultRule:
        """Arm a fail-rule: the site raises (its default type if
        ``error`` is None)."""
        return self.add(FaultRule(site, error=error, **kwargs))

    def stall(self, site: str, delay_ns: int, **kwargs) -> FaultRule:
        """Arm a stall-rule: the site observes ``delay_ns`` of injected
        latency (drains refuse to quiesce, snapshots hang)."""
        return self.add(FaultRule(site, delay_ns=delay_ns, **kwargs))

    def crash(self, site: str, **kwargs) -> FaultRule:
        """Arm a crash-rule: :class:`InjectedCrash` unwinds the caller
        with no cleanup (the drill's ``kill -9``)."""
        return self.add(FaultRule(site, error=InjectedCrash, **kwargs))

    # -- consultation ---------------------------------------------------
    def check(self, site: str, ctx: Dict[str, Any], default_exc: Any = None) -> int:
        """Consult the plan at ``site``; the first eligible rule wins.

        Returns an injected stall in ns (0 = no fault) or raises the
        rule's exception.
        """
        self.hits[site] += 1
        for index, rule in enumerate(self.rules):
            if not rule.matches(site, ctx):
                continue
            rule.hit_count += 1
            if rule.hit_count <= rule.after:
                continue
            if rule.times is not None and rule.fire_count >= rule.times:
                continue
            if rule.probability < 1.0 and self.rng.random() >= rule.probability:
                continue
            rule.fire_count += 1
            self.fired[site] += 1
            self.log.append((site, index))
            if rule.is_stall:
                return rule.delay_ns
            raise rule.make_exception(site, ctx, default_exc)
        return 0

    def describe(self) -> str:
        lines = [f"FaultPlan({self.name!r}, seed={self.seed}, {len(self.rules)} rules)"]
        for rule in self.rules:
            lines.append(f"  {rule!r}")
        for site, count in sorted(self.fired.items()):
            lines.append(f"  fired {count}x at {site} ({self.hits[site]} hits)")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return f"FaultPlan({self.name!r}, seed={self.seed}, rules={len(self.rules)})"
