"""Randomized "chaos" fault plans: sampled, not hand-written.

Hand-written :class:`~repro.faults.plan.FaultPlan`\\ s test the failure
modes someone thought of; the chaos sampler tests the ones nobody did.
:func:`sample_plan` draws a small plan — a few transient failures,
stalls, and at most one crash — from a seeded RNG, so a CI job can run
the same scenario under many adversaries (``pytest --chaos-seed N``)
and any red seed reproduces locally bit-for-bit.

The sampled rules are deliberately *survivable*: transient fail-rules
fire a bounded number of times at sites the pipeline either retries
(recovery's verifier/pin retries) or resolves fail-open (admission
denial → REJECTED, canary install failure → ROLLED_BACK); stalls are
bounded; crashes only hit the checkpoints the drill and fleet recovery
machinery are built to survive.  The contract a chaos test asserts is
therefore not "everything succeeded" but the system's *invariants*:
no split fleet, no leaked installation, journal and kernel agreeing.
"""

from __future__ import annotations

from random import Random
from typing import Optional, Sequence

from .plan import FaultPlan
from .registry import (
    SITE_ADAPTIVE_DETECT,
    SITE_ADAPTIVE_PROPOSE,
    SITE_ADMISSION_DECISION,
    SITE_BPFFS_PIN,
    SITE_BPFFS_UNPIN,
    SITE_CANARY_CHECKPOINT,
    SITE_FLEET_DEBT_DRAIN,
    SITE_FLEET_HEARTBEAT,
    SITE_FLEET_MEMBER_CALL,
    SITE_FLEET_PROBE,
    SITE_FLEET_WAVE,
    SITE_JOURNAL_APPEND,
    SITE_JOURNAL_FSYNC,
    SITE_NET_LINK_DELIVER,
    SITE_NET_PARTITION_FLIP,
    SITE_PATCH_DRAIN,
    SITE_PROFILER_HISTOGRAM,
    SITE_PROFILER_SNAPSHOT,
    SITE_REPLICATION_APPEND,
    SITE_REPLICATION_CATCHUP,
    SITE_REPLICATION_READ,
    SITE_STORAGE_CORRUPT_DIGEST,
    SITE_STORAGE_CORRUPT_LINE,
    SITE_STORAGE_CORRUPT_SNAPSHOT,
    SITE_TRAFFIC_PHASE_SHIFT,
    SITE_VERIFIER,
)

__all__ = [
    "sample_plan",
    "CHAOS_ADAPTIVE_SITES",
    "CHAOS_FAIL_SITES",
    "CHAOS_STALL_SITES",
    "CHAOS_CRASH_SITES",
    "CHAOS_MEMBER_SITES",
    "CHAOS_NET_SITES",
    "CHAOS_REPLICATION_SITES",
    "CHAOS_STORAGE_SITES",
    "CHAOS_TRAFFIC_SITES",
]

#: Sites where a sampled *transient* failure is survivable by design.
CHAOS_FAIL_SITES = (
    SITE_VERIFIER,
    SITE_BPFFS_PIN,
    SITE_BPFFS_UNPIN,
    SITE_ADMISSION_DECISION,
    SITE_JOURNAL_APPEND,
    SITE_JOURNAL_FSYNC,
)

#: Sites that interpret an injected delay as simulated latency.  The
#: histogram site models a stalled bucket-range read: it fires on live
#: snapshots only, so guard evaluation is exercised under profiler
#: faults while the final (quiesced) stop() collect stays safe.
CHAOS_STALL_SITES = (
    SITE_PATCH_DRAIN,
    SITE_PROFILER_SNAPSHOT,
    SITE_PROFILER_HISTOGRAM,
)

#: Checkpoints the crash-recovery machinery is built to survive.
CHAOS_CRASH_SITES = (SITE_CANARY_CHECKPOINT, SITE_FLEET_WAVE)

#: Member-outage sites: a sampled failure here models a fleet member
#: going dark (probe/heartbeat loss, a member call timing out, a debt
#: drain bouncing).  Survivable because the coordinator's degraded path
#: quarantines the member and books revert debt instead of raising.
CHAOS_MEMBER_SITES = (
    SITE_FLEET_MEMBER_CALL,
    SITE_FLEET_PROBE,
    SITE_FLEET_HEARTBEAT,
    SITE_FLEET_DEBT_DRAIN,
)

#: Replica-site incident sites: a sampled failure here models one site
#: of a member's replica group dying mid-append, mid-read, or
#: mid-catch-up.  Survivable at replication factor 3 because the group
#: fails the site, keeps quorum on the remaining two, and fails over if
#: the casualty was the leader.
CHAOS_REPLICATION_SITES = (
    SITE_REPLICATION_APPEND,
    SITE_REPLICATION_READ,
    SITE_REPLICATION_CATCHUP,
)

#: Silent-corruption sites: a sampled rule here flips one byte of a
#: durable record (journal line / site record), a snapshot blob, or a
#: digest read during a scrub.  The operation still reports success —
#: survivable because the scrubber detects the rot by checksum or
#: cross-site digest and repairs the casualty from quorum peers; the
#: invariant a chaos test asserts is "post-repair quorum reads equal
#: the pre-corruption committed prefix".
CHAOS_STORAGE_SITES = (
    SITE_STORAGE_CORRUPT_LINE,
    SITE_STORAGE_CORRUPT_SNAPSHOT,
    SITE_STORAGE_CORRUPT_DIGEST,
)

#: Traffic-timing sites: a sampled stall here shifts one trace phase's
#: arrivals earlier at install time, so a burst the rollout plan placed
#: after the bake window lands *inside* it.  Survivable because the
#: pooled guards are exactly the machinery that must hold under
#: unplanned load — the invariant is "halt with an attributed breach or
#: complete", never a split fleet.
CHAOS_TRAFFIC_SITES = (SITE_TRAFFIC_PHASE_SHIFT,)

#: Network-fabric sites: a sampled rule here drops or delays fabric
#: messages (``net.link.deliver``) or takes a link dark for a bounded
#: window of simulated time (a ``net.partition.flip`` stall — a timed
#: partition that self-heals).  Survivable because every undeliverable
#: message feeds the degraded machinery that already exists: the
#: coordinator's retry envelope, quarantine + revert debt, and the
#: replica groups' quorum/failover path.
CHAOS_NET_SITES = (SITE_NET_LINK_DELIVER, SITE_NET_PARTITION_FLIP)

#: Adaptation-loop sites: a transient failure at either is survivable
#: by construction — a faulted detect pass is skipped and retried next
#: pass, a faulted propose aborts before any install (or, post-journal,
#: is resolved by the loop's recovery as rolled-back).
CHAOS_ADAPTIVE_SITES = (SITE_ADAPTIVE_DETECT, SITE_ADAPTIVE_PROPOSE)


def sample_plan(
    seed: int,
    *,
    max_rules: int = 4,
    allow_crash: bool = True,
    fail_sites: Sequence[str] = CHAOS_FAIL_SITES,
    stall_sites: Sequence[str] = CHAOS_STALL_SITES,
    crash_sites: Sequence[str] = CHAOS_CRASH_SITES,
    member_sites: Sequence[str] = CHAOS_MEMBER_SITES,
    replication_sites: Sequence[str] = (),
    storage_sites: Sequence[str] = (),
    traffic_sites: Sequence[str] = (),
    net_sites: Sequence[str] = (),
    adaptive_sites: Sequence[str] = (),
    name: Optional[str] = None,
) -> FaultPlan:
    """Draw a chaos :class:`FaultPlan` from ``seed``.

    The sampler's RNG is separate from the plan's own (which drives
    ``probability`` rolls), so the *shape* of the plan is a pure
    function of ``seed`` regardless of how often sites are hit.
    """
    rng = Random(seed)
    plan = FaultPlan(seed=seed, name=name or f"chaos-{seed}")
    crashed = False
    for _ in range(rng.randint(2, max(2, max_rules))):
        roll = rng.random()
        if roll < 0.2 and allow_crash and not crashed:
            crashed = True
            plan.crash(
                rng.choice(list(crash_sites)),
                after=rng.randint(1, 3),
                times=1,
            )
        elif roll < 0.35 and member_sites:
            # A member outage: `times` is drawn large enough to outlast
            # the coordinator's retry envelope some of the time, so the
            # degraded path (quarantine + revert debt) actually runs.
            plan.fail(
                rng.choice(list(member_sites)),
                times=rng.randint(1, 6),
                after=rng.randint(0, 4),
            )
        elif roll < 0.6 and stall_sites:
            plan.stall(
                rng.choice(list(stall_sites)),
                delay_ns=rng.choice((20_000, 50_000, 100_000)),
                times=rng.randint(1, 3),
                after=rng.randint(0, 2),
            )
        else:
            plan.fail(
                rng.choice(list(fail_sites)),
                times=rng.randint(1, 2),
                after=rng.randint(0, 3),
            )
    # The replication rule is drawn *after* the main loop so plans for
    # existing seeds stay byte-identical when ``replication_sites`` is
    # empty (the default).  At most one single-shot rule keeps sampled
    # plans survivable at replication factor 3: one site dies under the
    # faulted operation, the group retains quorum.
    if replication_sites and rng.random() < 0.5:
        plan.fail(
            rng.choice(list(replication_sites)),
            times=1,
            after=rng.randint(0, 2),
        )
    # The storage rule is drawn after the replication rule for the same
    # reason: ``storage_sites`` defaults empty, so plans for existing
    # seeds stay byte-identical.  At most one single-shot bit-flip keeps
    # the rot repairable: one copy goes bad, quorum peers stay clean.
    if storage_sites and rng.random() < 0.5:
        plan.fail(
            rng.choice(list(storage_sites)),
            times=1,
            after=rng.randint(0, 3),
        )
    # The traffic rule is drawn last, again so plans for existing seeds
    # stay byte-identical (``traffic_sites`` defaults empty).  A stall
    # here is a timing shift, not an outage: one phase of the trace
    # arrives up to 200µs early, which is enough to move a burst from
    # "after the bake window" to "inside it".
    if traffic_sites and rng.random() < 0.5:
        plan.stall(
            rng.choice(list(traffic_sites)),
            delay_ns=rng.choice((50_000, 100_000, 200_000)),
            times=1,
            after=rng.randint(0, 2),
        )
    # The network rule is drawn last of all, once more so plans for
    # existing seeds stay byte-identical (``net_sites`` defaults empty).
    # A partition-flip rule is a *stall*: the faulted link goes dark for
    # the stall's duration of simulated time, then self-heals — sampled
    # chaos may split the fleet but can never strand it.  A link rule
    # drops or delays a bounded number of individual messages.
    if net_sites and rng.random() < 0.5:
        site = rng.choice(list(net_sites))
        if site == SITE_NET_PARTITION_FLIP:
            plan.stall(
                site,
                delay_ns=rng.choice((100_000, 200_000, 400_000)),
                times=1,
                after=rng.randint(0, 3),
            )
        elif rng.random() < 0.5:
            plan.fail(site, times=rng.randint(1, 2), after=rng.randint(0, 3))
        else:
            plan.stall(
                site,
                delay_ns=rng.choice((5_000, 20_000, 50_000)),
                times=rng.randint(1, 3),
                after=rng.randint(0, 3),
            )
    # The adaptation rule is drawn after every existing group, once
    # more so plans for existing seeds stay byte-identical
    # (``adaptive_sites`` defaults empty).  At most one single-shot
    # rule: a fail skips one loop pass (detect) or aborts one proposal
    # (propose); a stall delays the pass.  Either way the loop's
    # no-unjudged-cull invariant must hold.
    if adaptive_sites and rng.random() < 0.5:
        site = rng.choice(list(adaptive_sites))
        if rng.random() < 0.5:
            plan.fail(site, times=1, after=rng.randint(0, 2))
        else:
            plan.stall(
                site,
                delay_ns=rng.choice((20_000, 50_000, 100_000)),
                times=1,
                after=rng.randint(0, 2),
            )
    return plan
