"""Process-wide fault-injection registry.

Instrumented code calls :func:`fault_point` at named sites; tests and
the ``concordd drill`` harness arm a :class:`~repro.faults.plan.FaultPlan`
with :func:`install` (or the :func:`injected` context manager).  With no
plan installed every site is a cheap no-op — one global read and a
``None`` check — so production paths pay nothing.

Site naming convention is ``layer.component[.operation]``; the canonical
sites are exported as ``SITE_*`` constants so tests don't scatter string
literals.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Iterator, Optional

from .plan import FaultPlan

__all__ = [
    "fault_point",
    "install",
    "clear",
    "active",
    "injected",
    "SITE_BPF_HELPER",
    "SITE_BPF_VM_BUDGET",
    "SITE_VERIFIER",
    "SITE_BPFFS_PIN",
    "SITE_BPFFS_UNPIN",
    "SITE_PROFILER_SNAPSHOT",
    "SITE_PROFILER_HISTOGRAM",
    "SITE_PATCH_ENABLE",
    "SITE_PATCH_DRAIN",
    "SITE_CANARY_CHECKPOINT",
    "SITE_ADMISSION_DECISION",
    "SITE_JOURNAL_APPEND",
    "SITE_JOURNAL_FSYNC",
    "SITE_JOURNAL_REPLAY",
    "SITE_FLEET_WAVE",
    "SITE_FLEET_REVERT",
    "SITE_FLEET_PROBE",
    "SITE_FLEET_HEARTBEAT",
    "SITE_FLEET_MEMBER_CALL",
    "SITE_FLEET_DEBT_DRAIN",
    "SITE_REPLICATION_APPEND",
    "SITE_REPLICATION_READ",
    "SITE_REPLICATION_CATCHUP",
    "SITE_STORAGE_CORRUPT_LINE",
    "SITE_STORAGE_CORRUPT_SNAPSHOT",
    "SITE_STORAGE_CORRUPT_DIGEST",
    "SITE_TRAFFIC_PHASE_SHIFT",
    "SITE_NET_PARTITION_FLIP",
    "SITE_NET_LINK_DELIVER",
    "SITE_ADAPTIVE_DETECT",
    "SITE_ADAPTIVE_PROPOSE",
]

# Canonical fault sites wired into the pipeline.
SITE_BPF_HELPER = "bpf.helper"
SITE_BPF_VM_BUDGET = "bpf.vm.budget"
SITE_VERIFIER = "concord.verifier"
SITE_BPFFS_PIN = "concord.bpffs.pin"
SITE_BPFFS_UNPIN = "concord.bpffs.unpin"
SITE_PROFILER_SNAPSHOT = "concord.profiler.snapshot"
SITE_PROFILER_HISTOGRAM = "concord.profiler.histogram"
SITE_PATCH_ENABLE = "livepatch.enable"
SITE_PATCH_DRAIN = "livepatch.drain"
SITE_CANARY_CHECKPOINT = "controlplane.canary.checkpoint"
SITE_ADMISSION_DECISION = "controlplane.admission.decision"
SITE_JOURNAL_APPEND = "controlplane.journal.append"
SITE_JOURNAL_FSYNC = "controlplane.journal.fsync"
SITE_JOURNAL_REPLAY = "controlplane.journal.replay"
SITE_FLEET_WAVE = "fleet.wave.checkpoint"
SITE_FLEET_REVERT = "fleet.revert"
SITE_FLEET_PROBE = "fleet.health.probe"
SITE_FLEET_HEARTBEAT = "fleet.health.heartbeat"
SITE_FLEET_MEMBER_CALL = "fleet.member.call"
SITE_FLEET_DEBT_DRAIN = "fleet.debt.drain"
SITE_REPLICATION_APPEND = "replication.site.append"
SITE_REPLICATION_READ = "replication.site.read"
SITE_REPLICATION_CATCHUP = "replication.site.catchup"
# Bit-flip sites: unlike fail/stall sites these do not make an
# *operation* fail — a firing rule silently corrupts the durable bytes
# (one journal line, one snapshot blob, one scrub digest read) and the
# write still reports success.  Detection is the scrubber's job.
SITE_STORAGE_CORRUPT_LINE = "storage.corrupt.line"
SITE_STORAGE_CORRUPT_SNAPSHOT = "storage.corrupt.snapshot"
SITE_STORAGE_CORRUPT_DIGEST = "storage.corrupt.digest"
# Traffic-timing site: an injected stall of N ns shifts that trace
# phase's arrivals N ns *earlier* at install time (the burst lands
# mid-bake instead of where the rollout plan expected it).  The trace
# itself stays byte-identical — only the replay timing moves.
SITE_TRAFFIC_PHASE_SHIFT = "traffic.phase.shift"
# Network-fabric sites, consulted on every Fabric.deliver.  At the
# partition site a fail-rule rejects the message as already-partitioned
# and a *stall*-rule takes the whole link dark for the stall's duration
# of simulated time (a timed partition that self-heals, so sampled
# chaos can split the fleet without stranding it).  At the link site a
# fail-rule drops the one message and a stall-rule adds latency to it.
SITE_NET_PARTITION_FLIP = "net.partition.flip"
SITE_NET_LINK_DELIVER = "net.link.deliver"
# Adaptation-loop sites, consulted once per loop pass: a fail at the
# detect site aborts that observation cycle before any signal is
# raised; a fail at the propose site aborts a proposal *after* the
# ``cull-proposed`` decision is journaled but before the canary runs —
# the crash-window the loop's recovery has to resolve (no cull may
# stay installed unjudged).  Stalls delay the pass by simulated time.
SITE_ADAPTIVE_DETECT = "adaptive.detect"
SITE_ADAPTIVE_PROPOSE = "adaptive.propose"

_active: Optional[FaultPlan] = None


def install(plan: FaultPlan) -> FaultPlan:
    """Make ``plan`` the process-wide active plan (replacing any other)."""
    global _active
    _active = plan
    return plan


def clear() -> None:
    """Remove the active plan; all sites become no-ops again."""
    global _active
    _active = None


def active() -> Optional[FaultPlan]:
    """The currently installed plan, or ``None``."""
    return _active


@contextmanager
def injected(plan: FaultPlan) -> Iterator[FaultPlan]:
    """Install ``plan`` for the duration of a ``with`` block.

    The previous plan (usually ``None``) is restored on exit even if the
    block raises — including :class:`InjectedCrash`.
    """
    global _active
    previous = _active
    _active = plan
    try:
        yield plan
    finally:
        _active = previous


def fault_point(site: str, default_exc: Any = None, **ctx: Any) -> int:
    """Consult the active plan at a named site.

    Returns an injected stall duration in simulated ns (0 when no plan
    is installed or no rule fires).  Fail-rules raise here: the rule's
    exception if it names one, else ``default_exc`` — the site's natural
    error type — else :class:`~repro.faults.plan.FaultError`.
    """
    plan = _active
    if plan is None:
        return 0
    return plan.check(site, ctx, default_exc)
