"""Kernel live patching: patch objects, the patcher, shadow variables."""

from .patcher import LivePatch, PatchError, PatchOp, Patcher
from .shadow import ShadowStore

__all__ = ["LivePatch", "PatchError", "PatchOp", "Patcher", "ShadowStore"]
