"""Kernel live patching (kpatch/klp) for lock call sites.

Concord "uses the livepatch module to replace the annotated functions
for the specified locks" (Figure 1, step 6).  In the simulation every
patchable lock resolves through a :class:`~repro.locks.switchable`
wrapper; this module provides the *patch objects* and the engine-side
bookkeeping on top:

* :class:`LivePatch` — a named set of operations (attach hooks to a
  lock, switch a lock's implementation) applied and reverted atomically
  per call site;
* :class:`Patcher` — applies patches against a lock registry, tracks
  what is active, measures transition latency (request → engaged, i.e.
  the kpatch consistency-model drain), and supports rollback: the
  :meth:`Patcher.revert` path restores the pre-patch hooks *and* the
  pre-patch lock implementation through the same quiesced drain the
  forward switch used (no waiter ever observes a half-reverted site).

Steady-state cost of a patched site is the trampoline charge inside the
switchable wrapper; transition cost is the drain latency, both of which
the ablation benchmarks report.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from ..locks.base import HookSet, Lock, LockError
from ..locks.registry import LockRegistry
from ..locks.switchable import SwitchableLock, SwitchableRWLock

__all__ = ["PatchOp", "LivePatch", "Patcher", "PatchError"]


class PatchError(LockError):
    """A patch could not be applied or reverted."""


class PatchOp:
    """One operation inside a patch: hooks and/or an implementation swap."""

    __slots__ = ("lock_name", "hooks", "new_impl_factory")

    def __init__(
        self,
        lock_name: str,
        hooks: Optional[HookSet] = None,
        new_impl_factory: Optional[Callable[[Lock], Lock]] = None,
    ) -> None:
        self.lock_name = lock_name
        self.hooks = hooks
        #: Called with the current implementation, returns the new one
        #: (factory style so a patch object can be built before the
        #: engine exists).
        self.new_impl_factory = new_impl_factory

    def __repr__(self) -> str:
        kinds = []
        if self.hooks is not None:
            kinds.append(f"hooks[{len(self.hooks)}]")
        if self.new_impl_factory is not None:
            kinds.append("impl-switch")
        return f"PatchOp({self.lock_name}, {'+'.join(kinds) or 'noop'})"


class LivePatch:
    """A named, revertible collection of :class:`PatchOp`."""

    def __init__(self, name: str, ops: List[PatchOp]) -> None:
        self.name = name
        self.ops = list(ops)
        self.applied = False
        self.reverted = False
        self.applied_at: Optional[int] = None
        self.reverted_at: Optional[int] = None
        #: Saved state for revert: lock name -> old hooks
        self._saved_hooks: Dict[str, Optional[HookSet]] = {}
        #: Saved state for revert: lock name -> pre-switch implementation
        self._saved_impls: Dict[str, Lock] = {}

    def __repr__(self) -> str:
        state = "reverted" if self.reverted else ("applied" if self.applied else "pending")
        return f"LivePatch({self.name!r}, {len(self.ops)} ops, {state})"


class Patcher:
    """Applies livepatches to registered lock call sites."""

    def __init__(self, engine, registry: LockRegistry) -> None:
        self.engine = engine
        self.registry = registry
        self.active: Dict[str, LivePatch] = {}
        self.history: List[str] = []

    # ------------------------------------------------------------------
    def enable(self, patch: LivePatch) -> None:
        """Apply a patch (klp_enable_patch).

        Hook attachment is immediate (the trampoline flips on for
        subsequent invocations).  Implementation switches use drain
        semantics inside the switchable wrapper: the swap engages once
        in-flight critical sections on the old implementation complete;
        :attr:`SwitchableLock.core.last_switch_latency` reports the
        drain time afterwards.
        """
        if patch.name in self.active:
            raise PatchError(f"patch {patch.name!r} is already enabled")
        if patch.applied:
            raise PatchError(f"patch {patch.name!r} was already applied once")
        sites = []
        for op in patch.ops:
            site = self.registry.get(op.lock_name)
            if not isinstance(site, (SwitchableLock, SwitchableRWLock)):
                raise PatchError(
                    f"lock {op.lock_name!r} is not a patchable call site "
                    f"(wrap it in SwitchableLock to annotate it)"
                )
            sites.append(site)
        for op, site in zip(patch.ops, sites):
            if op.hooks is not None:
                patch._saved_hooks[op.lock_name] = site.core.impl.hooks
                site.attach_hooks(op.hooks)
            if op.new_impl_factory is not None:
                patch._saved_impls[op.lock_name] = site.core.impl
                new_impl = op.new_impl_factory(site.core.impl)
                site.request_switch(new_impl)
        patch.applied = True
        patch.applied_at = self.engine.now
        self.active[patch.name] = patch
        self.history.append(f"{self.engine.now}: enabled {patch.name}")

    def disable(self, patch_name: str) -> None:
        """Revert a patch's hook attachments (klp_disable_patch).

        Implementation switches are not automatically un-swapped (the
        kernel would need a counter-patch); issue a new patch with the
        previous implementation to swap back.
        """
        patch = self.active.pop(patch_name, None)
        if patch is None:
            raise PatchError(f"patch {patch_name!r} is not enabled")
        for op in patch.ops:
            if op.hooks is not None:
                site = self.registry.get(op.lock_name)
                site.attach_hooks(patch._saved_hooks.get(op.lock_name))
        self.history.append(f"{self.engine.now}: disabled {patch_name}")

    def revert(self, patch_name: str) -> LivePatch:
        """Fully roll a patch back: hooks *and* implementation switches.

        Unlike :meth:`disable`, implementation switches are counter-
        patched to the implementation the site ran before :meth:`enable`,
        with quiescence: if the forward drain is still in flight the
        pending implementation is redirected (no waiter ever lands on
        the abandoned implementation); otherwise a fresh drain is
        requested.  Lock state never spans two implementations in either
        direction — the consistency argument is the forward one, run in
        reverse.
        """
        patch = self.active.pop(patch_name, None)
        if patch is None:
            raise PatchError(f"patch {patch_name!r} is not enabled")
        for op in patch.ops:
            site = self.registry.get(op.lock_name)
            if op.hooks is not None:
                site.attach_hooks(patch._saved_hooks.get(op.lock_name))
            if op.new_impl_factory is not None:
                saved = patch._saved_impls[op.lock_name]
                if site.core.pending_impl is not None:
                    # Forward drain still in flight: redirect it so the
                    # site quiesces straight back to the saved impl.
                    site.core.pending_impl = saved
                else:
                    site.request_switch(saved)
        patch.reverted = True
        patch.reverted_at = self.engine.now
        self.history.append(f"{self.engine.now}: reverted {patch_name}")
        return patch

    # ------------------------------------------------------------------
    def switch_lock(self, lock_name: str, new_impl_factory) -> LivePatch:
        """Convenience: one-op patch switching a lock's implementation."""
        patch = LivePatch(
            f"switch:{lock_name}@{self.engine.now}",
            [PatchOp(lock_name, new_impl_factory=new_impl_factory)],
        )
        self.enable(patch)
        return patch

    def attach_hooks(self, lock_name: str, hooks: HookSet) -> LivePatch:
        """Convenience: one-op patch attaching a hook set to a lock."""
        patch = LivePatch(
            f"hooks:{lock_name}@{self.engine.now}",
            [PatchOp(lock_name, hooks=hooks)],
        )
        self.enable(patch)
        return patch

    def switch_latency(self, lock_name: str) -> Optional[int]:
        site = self.registry.get(lock_name)
        if isinstance(site, (SwitchableLock, SwitchableRWLock)):
            return site.core.last_switch_latency
        return None
