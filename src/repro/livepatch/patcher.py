"""Kernel live patching (kpatch/klp) for lock call sites.

Concord "uses the livepatch module to replace the annotated functions
for the specified locks" (Figure 1, step 6).  In the simulation every
patchable lock resolves through a :class:`~repro.locks.switchable`
wrapper; this module provides the *patch objects* and the engine-side
bookkeeping on top:

* :class:`LivePatch` — a named set of operations (attach hooks to a
  lock, switch a lock's implementation) applied and reverted atomically
  per call site;
* :class:`Patcher` — applies patches against a lock registry, tracks
  what is active, measures transition latency (request → engaged, i.e.
  the kpatch consistency-model drain), and supports rollback: the
  :meth:`Patcher.revert` path restores the pre-patch hooks *and* the
  pre-patch lock implementation through the same quiesced drain the
  forward switch used (no waiter ever observes a half-reverted site).

Steady-state cost of a patched site is the trampoline charge inside the
switchable wrapper; transition cost is the drain latency, both of which
the ablation benchmarks report.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from ..faults import fault_point
from ..locks.base import HookSet, Lock, LockError
from ..locks.registry import LockRegistry
from ..locks.switchable import SwitchableLock, SwitchableRWLock

__all__ = [
    "PatchOp",
    "LivePatch",
    "Patcher",
    "PatchError",
    "DEFAULT_DRAIN_RETRIES",
    "DEFAULT_DRAIN_BACKOFF_NS",
]

#: Bounded-retry defaults for the quiesce deadline (opt-in via
#: ``enable(..., quiesce_deadline_ns=...)``).
DEFAULT_DRAIN_RETRIES = 3
DEFAULT_DRAIN_BACKOFF_NS = 20_000


class PatchError(LockError):
    """A patch could not be applied or reverted."""


class PatchOp:
    """One operation inside a patch: hooks and/or an implementation swap."""

    __slots__ = ("lock_name", "hooks", "new_impl_factory")

    def __init__(
        self,
        lock_name: str,
        hooks: Optional[HookSet] = None,
        new_impl_factory: Optional[Callable[[Lock], Lock]] = None,
    ) -> None:
        self.lock_name = lock_name
        self.hooks = hooks
        #: Called with the current implementation, returns the new one
        #: (factory style so a patch object can be built before the
        #: engine exists).
        self.new_impl_factory = new_impl_factory

    def __repr__(self) -> str:
        kinds = []
        if self.hooks is not None:
            kinds.append(f"hooks[{len(self.hooks)}]")
        if self.new_impl_factory is not None:
            kinds.append("impl-switch")
        return f"PatchOp({self.lock_name}, {'+'.join(kinds) or 'noop'})"


class LivePatch:
    """A named, revertible collection of :class:`PatchOp`."""

    def __init__(self, name: str, ops: List[PatchOp]) -> None:
        self.name = name
        self.ops = list(ops)
        self.applied = False
        self.reverted = False
        self.applied_at: Optional[int] = None
        self.reverted_at: Optional[int] = None
        #: Saved state for revert: lock name -> old hooks
        self._saved_hooks: Dict[str, Optional[HookSet]] = {}
        #: Saved state for revert: lock name -> pre-switch implementation
        self._saved_impls: Dict[str, Lock] = {}

    def __repr__(self) -> str:
        state = "reverted" if self.reverted else ("applied" if self.applied else "pending")
        return f"LivePatch({self.name!r}, {len(self.ops)} ops, {state})"


class Patcher:
    """Applies livepatches to registered lock call sites."""

    def __init__(self, engine, registry: LockRegistry) -> None:
        self.engine = engine
        self.registry = registry
        self.active: Dict[str, LivePatch] = {}
        self.history: List[str] = []

    # ------------------------------------------------------------------
    def enable(
        self,
        patch: LivePatch,
        *,
        quiesce_deadline_ns: Optional[int] = None,
        max_drain_retries: int = DEFAULT_DRAIN_RETRIES,
        drain_backoff_ns: int = DEFAULT_DRAIN_BACKOFF_NS,
    ) -> None:
        """Apply a patch (klp_enable_patch).

        Hook attachment is immediate (the trampoline flips on for
        subsequent invocations).  Implementation switches use drain
        semantics inside the switchable wrapper: the swap engages once
        in-flight critical sections on the old implementation complete;
        :attr:`SwitchableLock.core.last_switch_latency` reports the
        drain time afterwards.

        With ``quiesce_deadline_ns`` set, :meth:`enable` additionally
        *drives the engine* until every implementation switch in the
        patch has engaged.  A drain that misses the deadline is retried
        ``max_drain_retries`` times with exponential backoff (the
        deadline extends by ``drain_backoff_ns * 2**attempt`` each
        round, mirroring klp's periodic transition retry); exhausting
        the retries reverts the patch and raises :class:`PatchError` —
        the site is left exactly as it was before :meth:`enable`.
        Without a deadline (the default) the drain completes whenever
        the workload quiesces, as before.
        """
        fault_point("livepatch.enable", default_exc=PatchError, patch=patch.name)
        if patch.name in self.active:
            raise PatchError(f"patch {patch.name!r} is already enabled")
        if patch.applied:
            raise PatchError(f"patch {patch.name!r} was already applied once")
        sites = []
        for op in patch.ops:
            site = self.registry.get(op.lock_name)
            if not isinstance(site, (SwitchableLock, SwitchableRWLock)):
                raise PatchError(
                    f"lock {op.lock_name!r} is not a patchable call site "
                    f"(wrap it in SwitchableLock to annotate it)"
                )
            sites.append(site)
        for op, site in zip(patch.ops, sites):
            if op.hooks is not None:
                patch._saved_hooks[op.lock_name] = site.core.impl.hooks
                site.attach_hooks(op.hooks)
            if op.new_impl_factory is not None:
                patch._saved_impls[op.lock_name] = site.core.impl
                new_impl = op.new_impl_factory(site.core.impl)
                site.request_switch(new_impl)
        patch.applied = True
        patch.applied_at = self.engine.now
        self.active[patch.name] = patch
        self.history.append(f"{self.engine.now}: enabled {patch.name}")
        if quiesce_deadline_ns is not None:
            self._await_quiesce(
                patch, sites, quiesce_deadline_ns, max_drain_retries, drain_backoff_ns
            )

    def _await_quiesce(
        self,
        patch: LivePatch,
        sites,
        deadline_ns: int,
        max_retries: int,
        backoff_ns: int,
    ) -> None:
        """Drive the engine until the patch's impl switches engage.

        Bounded: ``max_retries`` deadline extensions with exponential
        backoff, then revert + :class:`PatchError`.
        """
        pending = [
            site
            for op, site in zip(patch.ops, sites)
            if op.new_impl_factory is not None
        ]
        deadline = self.engine.now + deadline_ns
        attempt = 0
        while any(site.core.pending_impl is not None for site in pending):
            if self.engine.now >= deadline:
                attempt += 1
                if attempt > max_retries:
                    stuck = [
                        site.name
                        for site in pending
                        if site.core.pending_impl is not None
                    ]
                    self.revert(patch.name)
                    raise PatchError(
                        f"patch {patch.name!r} failed to quiesce within "
                        f"{deadline_ns}ns + {max_retries} retries "
                        f"(stuck: {', '.join(stuck)}); reverted"
                    )
                extension = backoff_ns * (2 ** (attempt - 1))
                deadline = self.engine.now + extension
                self.history.append(
                    f"{self.engine.now}: drain retry {attempt}/{max_retries} "
                    f"for {patch.name} (+{extension}ns)"
                )
                # Re-kick each stuck site: a drain whose injected stall
                # has lapsed completes here rather than waiting for the
                # next waiter to leave.
                for site in pending:
                    if site.core.pending_impl is not None:
                        site.core.maybe_complete()
                continue
            self.engine.run(until=deadline)

    def disable(self, patch_name: str) -> None:
        """Revert a patch's hook attachments (klp_disable_patch).

        Implementation switches are not automatically un-swapped (the
        kernel would need a counter-patch); issue a new patch with the
        previous implementation to swap back.
        """
        patch = self.active.pop(patch_name, None)
        if patch is None:
            raise PatchError(f"patch {patch_name!r} is not enabled")
        for op in patch.ops:
            if op.hooks is not None:
                site = self.registry.get(op.lock_name)
                site.attach_hooks(patch._saved_hooks.get(op.lock_name))
        self.history.append(f"{self.engine.now}: disabled {patch_name}")

    def revert(self, patch_name: str) -> LivePatch:
        """Fully roll a patch back: hooks *and* implementation switches.

        Unlike :meth:`disable`, implementation switches are counter-
        patched to the implementation the site ran before :meth:`enable`,
        with quiescence: if the forward drain is still in flight the
        pending implementation is redirected (no waiter ever lands on
        the abandoned implementation); otherwise a fresh drain is
        requested.  Lock state never spans two implementations in either
        direction — the consistency argument is the forward one, run in
        reverse.
        """
        patch = self.active.pop(patch_name, None)
        if patch is None:
            raise PatchError(f"patch {patch_name!r} is not enabled")
        for op in patch.ops:
            site = self.registry.get(op.lock_name)
            if op.hooks is not None:
                site.attach_hooks(patch._saved_hooks.get(op.lock_name))
            if op.new_impl_factory is not None:
                saved = patch._saved_impls[op.lock_name]
                if site.core.pending_impl is not None:
                    # Forward drain still in flight: redirect it so the
                    # site quiesces straight back to the saved impl, and
                    # drop any injected stall so the gate cannot stay
                    # closed on a switch nobody wants anymore.
                    site.core.pending_impl = saved
                    site.core.cancel_stall()
                else:
                    site.request_switch(saved)
        patch.reverted = True
        patch.reverted_at = self.engine.now
        self.history.append(f"{self.engine.now}: reverted {patch_name}")
        return patch

    # ------------------------------------------------------------------
    def switch_lock(self, lock_name: str, new_impl_factory, **drain_kwargs) -> LivePatch:
        """Convenience: one-op patch switching a lock's implementation.

        ``drain_kwargs`` pass through to :meth:`enable`
        (``quiesce_deadline_ns`` and friends).
        """
        patch = LivePatch(
            f"switch:{lock_name}@{self.engine.now}",
            [PatchOp(lock_name, new_impl_factory=new_impl_factory)],
        )
        self.enable(patch, **drain_kwargs)
        return patch

    def attach_hooks(self, lock_name: str, hooks: HookSet) -> LivePatch:
        """Convenience: one-op patch attaching a hook set to a lock."""
        patch = LivePatch(
            f"hooks:{lock_name}@{self.engine.now}",
            [PatchOp(lock_name, hooks=hooks)],
        )
        self.enable(patch)
        return patch

    def switch_latency(self, lock_name: str) -> Optional[int]:
        site = self.registry.get(lock_name)
        if isinstance(site, (SwitchableLock, SwitchableRWLock)):
            return site.core.last_switch_latency
        return None
