"""Livepatch shadow variables (Documentation/livepatch/shadow-vars).

The paper relies on "livepatching shadow data structures for modifying
data structures that are used by locking primitives.  For example, we
can extend the node data structure of the queue based lock with extra
information" (§4.2).

A shadow variable attaches an extra field to an *existing* object
without changing its layout: lookups key on ``(object identity, shadow
id)``.  Policies use this to hang per-node or per-lock state (e.g. a
measured critical-section length) off structures that were compiled
long before the policy existed.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional, Tuple

__all__ = ["ShadowStore"]


class ShadowStore:
    """Process-wide registry of shadow variables.

    Mirrors the kernel API: ``klp_shadow_get``, ``klp_shadow_alloc``
    (get-or-create), ``klp_shadow_free``, ``klp_shadow_free_all``.
    Objects are keyed by identity, so two equal-but-distinct nodes keep
    distinct shadows.
    """

    def __init__(self) -> None:
        self._store: Dict[Tuple[int, int], Any] = {}
        #: Keeps shadowed objects alive so ids stay unique while a
        #: shadow exists (id() reuse after GC would alias entries).
        self._pins: Dict[Tuple[int, int], Any] = {}

    def get(self, obj: Any, shadow_id: int, default: Any = None) -> Any:
        return self._store.get((id(obj), shadow_id), default)

    def get_or_alloc(self, obj: Any, shadow_id: int, ctor: Callable[[], Any]) -> Any:
        key = (id(obj), shadow_id)
        if key not in self._store:
            self._store[key] = ctor()
            self._pins[key] = obj
        return self._store[key]

    def set(self, obj: Any, shadow_id: int, value: Any) -> None:
        key = (id(obj), shadow_id)
        self._store[key] = value
        self._pins[key] = obj

    def free(self, obj: Any, shadow_id: int) -> Optional[Any]:
        key = (id(obj), shadow_id)
        self._pins.pop(key, None)
        return self._store.pop(key, None)

    def free_all(self, shadow_id: int) -> int:
        """Free every shadow with this id; returns how many were freed."""
        keys = [key for key in self._store if key[1] == shadow_id]
        for key in keys:
            self._store.pop(key, None)
            self._pins.pop(key, None)
        return len(keys)

    def __len__(self) -> int:
        return len(self._store)
