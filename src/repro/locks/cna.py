"""Compact NUMA-Aware lock (CNA — Dice & Kogan, EuroSys '19).

CNA is the other modern NUMA lock the paper's background discusses: an
MCS-compatible queue lock where the *unlock* path scans the queue for a
successor on the holder's socket, deferring remote waiters onto a
secondary queue.  Handoffs therefore stay on-socket (cheap) until a
fairness threshold flushes the secondary queue back in front.

Included as a baseline for the ablation benches: ShflLock moves the
reordering *off* the critical path (the waiting head shuffles), CNA pays
for it inside unlock.

Queue discipline invariants maintained here:

* the queue's last node is never deferred (its ``next`` may be written
  by a concurrent appender);
* a node is either main-queue-linked, on the secondary list, the
  current holder, or already released — never two at once;
* the secondary list re-enters the queue only with all links freshly
  rewritten (stale ``next`` pointers are never followed).
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional

from ..sim.cache import Cell
from ..sim.ops import CAS, Load, Store, WaitValue, Xchg
from ..sim.task import Task
from .base import Lock

__all__ = ["CNALock", "CNANode"]


class CNANode:
    __slots__ = ("task", "cpu", "socket", "next", "locked")

    def __init__(self, engine, task: Task) -> None:
        self.task = task
        self.cpu = task.cpu_id
        self.socket = task.numa_node
        self.next: Cell = engine.cell(None, name=f"cna.next.{task.tid}")
        self.locked: Cell = engine.cell(True, name=f"cna.locked.{task.tid}")

    def __repr__(self) -> str:
        return f"CNANode({self.task.name}, socket={self.socket})"


class CNALock(Lock):
    """MCS variant with socket-local handoff and a secondary queue.

    Args:
        scan_window: how many successors the unlock path examines.
        flush_threshold: local handoffs before the secondary queue is
            flushed back (long-term fairness bound).
    """

    def __init__(
        self,
        engine,
        name: str = "",
        scan_window: int = 16,
        flush_threshold: int = 256,
    ) -> None:
        super().__init__(engine, name)
        self.tail = engine.cell(None, name=f"{self.name}.tail")
        self.scan_window = scan_window
        self.flush_threshold = flush_threshold
        self._nodes: Dict[int, CNANode] = {}
        self._secondary: List[CNANode] = []
        self._local_handoffs = 0
        self.deferred_total = 0
        self.flushes = 0

    # ------------------------------------------------------------------
    def acquire(self, task: Task) -> Iterator:
        node = CNANode(self.engine, task)
        self._nodes[task.tid] = node
        prev: Optional[CNANode] = yield Xchg(self.tail, node)
        contended = prev is not None
        if contended:
            yield Store(prev.next, node)
            yield WaitValue(node.locked, lambda v: v is False)
        self._mark_acquired(task, contended)

    def release(self, task: Task) -> Iterator:
        node = self._nodes.pop(task.tid)
        self._mark_released(task)

        succ = yield Load(node.next)
        if succ is None:
            if not self._secondary:
                ok, _old = yield CAS(self.tail, node, None)
                if ok:
                    return
                succ = yield WaitValue(node.next, lambda v: v is not None)
            else:
                handed = yield from self._install_secondary_as_queue(node)
                if handed:
                    return
                succ = yield WaitValue(node.next, lambda v: v is not None)

        if self._secondary and self._local_handoffs >= self.flush_threshold:
            yield from self._flush_in_front_of(succ)
            return

        yield from self._scan_and_handoff(node, succ)

    def try_acquire(self, task: Task) -> Iterator:
        node = CNANode(self.engine, task)
        ok, _old = yield CAS(self.tail, None, node)
        if ok:
            self._nodes[task.tid] = node
            self._mark_acquired(task)
        return ok

    # ------------------------------------------------------------------
    def _install_secondary_as_queue(self, node: CNANode) -> Iterator:
        """Main queue empty: try to make the secondary list *the* queue.

        Returns True if the handoff happened; False if a new arrival beat
        our tail CAS (caller falls back to the main queue).
        """
        chain = self._secondary
        self._secondary = []
        for left, right in zip(chain, chain[1:]):
            yield Store(left.next, right)
        yield Store(chain[-1].next, None)
        ok, _old = yield CAS(self.tail, node, chain[-1])
        if ok:
            self._local_handoffs = 0
            self.flushes += 1
            yield Store(chain[0].locked, False)
            return True
        # Raced with an appender: put the chain back and use the main queue.
        self._secondary = chain
        return False

    def _flush_in_front_of(self, succ: CNANode) -> Iterator:
        """Fairness flush: splice the secondary list before ``succ``."""
        chain = self._secondary
        self._secondary = []
        self._local_handoffs = 0
        self.flushes += 1
        for left, right in zip(chain, chain[1:]):
            yield Store(left.next, right)
        yield Store(chain[-1].next, succ)
        yield Store(chain[0].locked, False)

    def _scan_and_handoff(self, node: CNANode, succ: CNANode) -> Iterator:
        """Find a same-socket successor, deferring remote waiters."""
        my_socket = node.socket
        deferred: List[CNANode] = []
        cursor: CNANode = succ
        visited = 0
        chosen: Optional[CNANode] = None
        while True:
            visited += 1
            if cursor.socket == my_socket:
                chosen = cursor
                break
            if visited >= self.scan_window:
                chosen = cursor
                break
            nxt = yield Load(cursor.next)
            if nxt is None:
                chosen = cursor  # never defer the (apparent) tail
                break
            deferred.append(cursor)
            yield Store(cursor.next, None)  # detach from the main chain
            cursor = nxt

        self._secondary.extend(deferred)
        self.deferred_total += len(deferred)
        if chosen.socket == my_socket:
            self._local_handoffs += 1
        else:
            self._local_handoffs = 0
        yield Store(chosen.locked, False)
