"""Run-time switchable lock call sites (the livepatch target).

In the paper, Concord "uses the livepatch module to replace the
annotated functions for the specified locks".  The simulated equivalent:
every patchable lock call site resolves through a :class:`SwitchableLock`
(or :class:`SwitchableRWLock`), which

* forwards to the *current implementation*,
* charges a trampoline cost per entry once the site has been patched
  (the ftrace/livepatch redirection a patched kernel function pays —
  this is the machinery behind the worst-case ~20 % of Figure 2c), and
* supports an atomic implementation switch with *drain* semantics: new
  acquirers are gated while in-flight critical sections on the old
  implementation complete, then the pointer flips.  Lock state never
  spans two implementations, which is the mutual-exclusion safety
  argument the paper's verifier must preserve.

The switch latency (request → engaged) is observable and benchmarked by
the ablation suite.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterator, List, Optional

from ..faults import fault_point
from ..sim.ops import Delay, Load, WaitValue
from ..sim.task import Task
from .base import (
    HOOK_LOCK_ACQUIRE,
    HOOK_LOCK_ACQUIRED,
    HOOK_LOCK_CONTENDED,
    HOOK_LOCK_RELEASE,
    HookSet,
    Lock,
    LockError,
    RWLock,
)

__all__ = ["SwitchableLock", "SwitchableRWLock", "DEFAULT_TRAMPOLINE_NS"]

#: Per-entry cost of the livepatch trampoline + Concord dispatch check.
DEFAULT_TRAMPOLINE_NS = 40

def _fire_event(impl, task, hook):
    """Fire a profiling hook at the patched call site, if attached.

    Membership is checked first so a site patched only with decision
    programs pays nothing extra here — the per-entry trampoline is
    already charged by the wrapper.
    """
    hooks = impl.hooks
    if hooks is not None and hook in hooks.programs:
        yield from impl._fire(task, hook, {})



class _SwitchCore:
    """State shared by the exclusive and rw switchable wrappers."""

    def __init__(self, engine, name: str, impl) -> None:
        self.engine = engine
        self.name = name
        self.gate = engine.cell(0, name=f"{name}.gate")
        self.impl = impl
        self.pending_impl = None
        self.inflight = 0
        self.patched = False
        self.trampoline_ns = DEFAULT_TRAMPOLINE_NS
        self.switch_requested_at: Optional[int] = None
        self.switch_engaged_at: Optional[int] = None
        self.switch_count = 0
        #: When set, the drain is stalled (injected) until this time.
        self.stall_until: Optional[int] = None
        self._on_switch: List[Callable] = []

    def request_switch(self, new_impl) -> None:
        if self.pending_impl is not None:
            raise LockError("a lock switch is already in progress")
        self.pending_impl = new_impl
        self.switch_requested_at = self.engine.now
        self.switch_engaged_at = None
        self.engine.external_store(self.gate, 1)
        self.maybe_complete()

    def maybe_complete(self) -> None:
        if self.pending_impl is None or self.inflight != 0:
            return
        if self.stall_until is not None:
            if self.engine.now < self.stall_until:
                return
            self.stall_until = None
        stall_ns = fault_point("livepatch.drain", lock=self.name)
        if stall_ns:
            # The drain refuses to quiesce for stall_ns of simulated
            # time; the gate stays closed and we re-check afterwards.
            self.stall_until = self.engine.now + stall_ns
            self.engine.call_after(stall_ns, self.maybe_complete)
            return
        old = self.impl
        self.impl = self.pending_impl
        self.pending_impl = None
        self.switch_engaged_at = self.engine.now
        self.switch_count += 1
        self.patched = True
        self.engine.external_store(self.gate, 0)
        for callback in self._on_switch:
            callback(old, self.impl)

    def cancel_stall(self) -> None:
        """Drop an injected drain stall and retry completion now.

        Used by :meth:`Patcher.revert` after redirecting a pending
        switch: the redirected drain must not stay parked behind the
        original stall, or the gate would block every waiter.
        """
        if self.stall_until is not None:
            self.stall_until = None
            self.maybe_complete()

    @property
    def last_switch_latency(self) -> Optional[int]:
        if self.switch_requested_at is None or self.switch_engaged_at is None:
            return None
        return self.switch_engaged_at - self.switch_requested_at

    def enter(self) -> Iterator:
        """Gate + trampoline; returns the implementation to use."""
        value = yield Load(self.gate)
        if value:
            yield WaitValue(self.gate, lambda v: v == 0)
        if self.patched and self.trampoline_ns:
            yield Delay(self.trampoline_ns)
        self.inflight += 1
        return self.impl

    def exit_side_cost(self) -> Iterator:
        if self.patched and self.trampoline_ns:
            yield Delay(self.trampoline_ns)

    def leave(self) -> None:
        self.inflight -= 1
        if self.inflight < 0:
            raise LockError("switchable lock inflight underflow")
        self.maybe_complete()


class SwitchableLock(Lock):
    """A patchable exclusive-lock call site."""

    kind = "switchable"

    def __init__(self, engine, impl: Lock, name: str = "") -> None:
        super().__init__(engine, name or f"switchable.{impl.name}")
        self.core = _SwitchCore(engine, self.name, impl)
        self._acquired_impl: Dict[int, Lock] = {}

    # -- patch control (used by repro.livepatch) -------------------------
    @property
    def impl(self) -> Lock:
        return self.core.impl

    def request_switch(self, new_impl: Lock) -> None:
        self.core.request_switch(new_impl)

    def set_patched(self, patched: bool = True, trampoline_ns: Optional[int] = None) -> None:
        self.core.patched = patched
        if trampoline_ns is not None:
            self.core.trampoline_ns = trampoline_ns

    def attach_hooks(self, hooks: Optional[HookSet]) -> None:
        """Attach Concord hook programs to the *current* implementation."""
        self.core.impl.hooks = hooks
        self.core.patched = hooks is not None or self.core.switch_count > 0

    # -- lock protocol ---------------------------------------------------
    def acquire(self, task: Task) -> Iterator:
        impl = yield from self.core.enter()
        self._acquired_impl[task.tid] = impl
        yield from _fire_event(impl, task, HOOK_LOCK_ACQUIRE)
        yield from impl.acquire(task)
        if impl.last_acquire_contended:
            yield from _fire_event(impl, task, HOOK_LOCK_CONTENDED)
        yield from _fire_event(impl, task, HOOK_LOCK_ACQUIRED)

    def release(self, task: Task) -> Iterator:
        impl = self._acquired_impl.pop(task.tid)
        yield from self.core.exit_side_cost()
        yield from _fire_event(impl, task, HOOK_LOCK_RELEASE)
        yield from impl.release(task)
        self.core.leave()

    def try_acquire(self, task: Task) -> Iterator:
        impl = yield from self.core.enter()
        ok = yield from impl.try_acquire(task)
        if ok:
            self._acquired_impl[task.tid] = impl
        else:
            self.core.leave()
        return ok

    @property
    def locked(self) -> bool:
        return self.core.impl.locked

    @property
    def owner(self):
        return self.core.impl.owner


class SwitchableRWLock(RWLock):
    """A patchable readers-writer lock call site."""

    kind = "switchable-rw"

    def __init__(self, engine, impl: RWLock, name: str = "") -> None:
        super().__init__(engine, name or f"switchable.{impl.name}")
        self.core = _SwitchCore(engine, self.name, impl)
        self._read_impl: Dict[int, RWLock] = {}
        self._write_impl: Dict[int, RWLock] = {}

    @property
    def impl(self) -> RWLock:
        return self.core.impl

    def request_switch(self, new_impl: RWLock) -> None:
        self.core.request_switch(new_impl)

    def set_patched(self, patched: bool = True, trampoline_ns: Optional[int] = None) -> None:
        self.core.patched = patched
        if trampoline_ns is not None:
            self.core.trampoline_ns = trampoline_ns

    def attach_hooks(self, hooks: Optional[HookSet]) -> None:
        self.core.impl.hooks = hooks
        self.core.patched = hooks is not None or self.core.switch_count > 0

    # -- read side -------------------------------------------------------
    def read_acquire(self, task: Task) -> Iterator:
        impl = yield from self.core.enter()
        self._read_impl[task.tid] = impl
        yield from _fire_event(impl, task, HOOK_LOCK_ACQUIRE)
        yield from impl.read_acquire(task)
        yield from _fire_event(impl, task, HOOK_LOCK_ACQUIRED)

    def read_release(self, task: Task) -> Iterator:
        impl = self._read_impl.pop(task.tid)
        yield from self.core.exit_side_cost()
        yield from _fire_event(impl, task, HOOK_LOCK_RELEASE)
        yield from impl.read_release(task)
        self.core.leave()

    # -- write side ------------------------------------------------------
    def write_acquire(self, task: Task) -> Iterator:
        impl = yield from self.core.enter()
        self._write_impl[task.tid] = impl
        yield from _fire_event(impl, task, HOOK_LOCK_ACQUIRE)
        yield from impl.write_acquire(task)
        if impl.last_acquire_contended:
            yield from _fire_event(impl, task, HOOK_LOCK_CONTENDED)
        yield from _fire_event(impl, task, HOOK_LOCK_ACQUIRED)

    def write_release(self, task: Task) -> Iterator:
        impl = self._write_impl.pop(task.tid)
        yield from self.core.exit_side_cost()
        yield from _fire_event(impl, task, HOOK_LOCK_RELEASE)
        yield from impl.write_release(task)
        self.core.leave()

    @property
    def locked(self) -> bool:
        return self.core.impl.locked

    @property
    def owner(self):
        return self.core.impl.owner

    @property
    def reader_count(self) -> int:
        return self.core.impl.reader_count
