"""Malthusian culling lock: mutual exclusion with a concurrency cap.

Malthusian Locks (PAPERS.md) observes that past the collapse knee every
extra *active* waiter makes the critical section itself slower — the
lock word and queue nodes bounce through more caches — so admitting the
whole crowd is self-defeating.  The remedy is to shrink the active set:
at most ``cap`` contenders are admitted to an MCS queue (local spinning,
fast cache-line handoffs), and the rest are *culled* onto a passive
parked stack, one revived whenever an admitted task leaves.  Parking is
expensive (``wake_latency`` per revival), which is exactly why only the
excess is parked: the admitted spinners keep handoffs fast while the
revival pipeline refills the active set in the background.

Culled waiters are revived LIFO (most recently parked first — the
Malthusian cache-warmth preference), which deliberately trades
long-term fairness for throughput.  With a sane cap the passive stack
churns fast — each release refills the whole active set, so everyone
recirculates and per-socket acquisition shares stay level.  When the
cap is *over*-aggressive the stack becomes deep and slow: the handful
of recently-parked waiters near the top recirculate while the bottom
dwellers starve, and because parking order follows scheduling order
the starved set clusters on whole sockets.  That starvation is nearly
invisible to ``TailWaitGuard`` (starved waiters complete few
acquisitions, so they barely move the completed-wait histogram) but
loud in ``FairnessGuard``'s per-socket skew — exactly the signal the
adaptation loop's canary uses to roll a too-deep cull back.

The adaptation loop installs this lock as a livepatch impl switch
(``culling-cap{N}``).  ``parked_count`` is exported so crowd-sensitive
workloads (``MalthusianBench``, ``TraceRunner`` bindings with a waiter
penalty) charge their coherence penalty only for the *active* crowd —
parked and in-wake-transit waiters are descheduled and cost nothing,
which is what restores throughput.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional

from ..sim.ops import CAS, Load, Park, Store, Unpark, WaitValue, Xchg
from ..sim.task import Task
from .base import Lock
from .mcs import MCSNode

__all__ = ["CullingLock"]


class CullingLock(Lock):
    """At most ``cap`` active contenders; the rest park on a LIFO stack.

    Admission bookkeeping is plain Python state (atomic between sim
    yields); the admitted set runs the canonical MCS queue over
    coherence-modelled cells, so the capped fast path pays realistic
    cache traffic and handoff latency.
    """

    kind = "culling"

    def __init__(self, engine, name: str = "", cap: int = 2) -> None:
        super().__init__(engine, name)
        if cap < 1:
            raise ValueError(f"cap must be >= 1, got {cap}")
        self.cap = cap
        #: Tasks admitted to the MCS queue (holding or actively spinning).
        self._active = 0
        #: Revived waiters still in wake transit (descheduled, not yet
        #: re-admitted — they cost no coherence either).
        self._transit = 0
        #: LIFO passive stack of culled waiters.
        self._culled: List[Task] = []
        self.tail = engine.cell(None, name=f"{self.name}.tail")
        self._nodes: Dict[int, MCSNode] = {}
        self.cull_count = 0
        self.revive_count = 0

    @property
    def parked_count(self) -> int:
        """Descheduled waiters (parked or in wake transit) — excluded
        from the active crowd by crowd-sensitive cost models."""
        return len(self._culled) + self._transit

    def acquire(self, task: Task) -> Iterator:
        contended = False
        # Cull: beyond the cap, park on the passive stack.  Fresh
        # arrivals also park (anti-barging) when the backlog is already
        # deep — barging past a deep stack would defeat the LIFO
        # revival order.  A revived task loops on the cap alone: a
        # fresh arrival may have claimed the freed slot before we were
        # scheduled, in which case we park again.
        must_wait = self._active >= self.cap or len(self._culled) > 2 * self.cap
        while must_wait:
            contended = True
            self.cull_count += 1
            self._culled.append(task)
            yield Park()
            self._transit -= 1
            must_wait = self._active >= self.cap
        self._active += 1
        # Admitted: canonical MCS among at most ``cap`` tasks.
        node = MCSNode(self.engine, task)
        self._nodes[task.tid] = node
        prev: Optional[MCSNode] = yield Xchg(self.tail, node)
        if prev is not None:
            contended = True
            yield Store(prev.next, node)
            yield WaitValue(node.locked, lambda v: v is False)
        self._mark_acquired(task, contended)

    def release(self, task: Task) -> Iterator:
        node = self._nodes.pop(task.tid)
        self._mark_released(task)
        self._active -= 1
        succ = yield Load(node.next)
        if succ is None:
            ok, _old = yield CAS(self.tail, node, None)
            if not ok:
                # Someone is appending: wait for them to link in.
                succ = yield WaitValue(node.next, lambda v: v is not None)
        if succ is not None:
            yield Store(succ.locked, False)
        # Refill the active set from the passive stack.  Revive eagerly
        # enough to keep one spare in wake transit beyond the cap — the
        # transit pipeline is what hides ``wake_latency`` behind the
        # admitted spinners' critical sections.
        while self._culled and self._active + self._transit <= self.cap:
            self.revive_count += 1
            self._transit += 1
            yield Unpark(self._culled.pop())

    def try_acquire(self, task: Task) -> Iterator:
        if self._active >= self.cap:
            return False
        node = MCSNode(self.engine, task)
        ok, _old = yield CAS(self.tail, None, node)
        if ok:
            self._nodes[task.tid] = node
            self._active += 1
            self._mark_acquired(task)
        return ok
