"""BRAVO: Biased Locking for Reader-Writer Locks (Dice & Kogan, ATC '19).

BRAVO wraps an existing rw lock.  While the lock is *reader-biased*,
readers skip the underlying lock entirely: each reader publishes itself
in a slot of a global *visible-readers table* (one slot per reader,
hashed) and revalidates the bias.  A writer revokes the bias, scans the
whole table waiting for every visible reader to drain, and only then
takes the underlying write lock.  The result: contended readers touch
*distinct* cache lines — reader scalability becomes linear — at the cost
of an expensive (but rare, in read-mostly workloads) writer scan.

This is the second lock the paper modifies with Concord: Figure 2(a)
compares Stock (plain rwsem), compiled-in BRAVO, and Concord-BRAVO
(bias logic installed at run time).

Faithful details kept from the original algorithm:

* slot hashing with collision fallback to the slow path;
* post-publication bias re-check (a racing writer may have revoked);
* revocation cost amortization via ``inhibit_until`` — after a writer
  pays a scan costing T, bias stays off for N*T (default N=9).
"""

from __future__ import annotations

from typing import Iterator, List, Optional

from ..sim.cache import Cell
from ..sim.ops import CAS, Load, Store, WaitValue
from ..sim.task import Task
from .base import RWLock

__all__ = ["BravoLock"]

#: Multiplier for the revocation-inhibition window (the paper's N).
_INHIBIT_MULTIPLIER = 9


class BravoLock(RWLock):
    """BRAVO bias layer over any :class:`RWLock`.

    Args:
        underlying: the rw lock to wrap (e.g. :class:`RWSemaphore`).
        table_slots: visible-readers table size; defaults to 4 slots per
            CPU, which makes per-CPU-pinned readers collision-free.
        start_biased: whether reader bias is enabled initially.
    """

    kind = "bravo"

    def __init__(
        self,
        engine,
        underlying: RWLock,
        name: str = "",
        table_slots: Optional[int] = None,
        start_biased: bool = True,
    ) -> None:
        super().__init__(engine, name or f"bravo.{underlying.name}")
        self.underlying = underlying
        slots = table_slots or 4 * engine.topology.nr_cpus
        self.table: List[Cell] = [
            engine.cell(None, name=f"{self.name}.vr[{i}]") for i in range(slots)
        ]
        self.rbias = engine.cell(1 if start_biased else 0, name=f"{self.name}.rbias")
        self.inhibit_until = 0  # plain int: written only under the write lock
        self._slot_of = {}
        self.fastpath_reads = 0
        self.slowpath_reads = 0
        self.revocations = 0

    # ------------------------------------------------------------------
    def _hash_slot(self, task: Task) -> int:
        # Mix cpu and tid so unpinned tasks also spread out.
        return (task.cpu_id * 4 + (task.tid % 4)) % len(self.table)

    # ------------------------------------------------------------------
    # Readers
    # ------------------------------------------------------------------
    def read_acquire(self, task: Task) -> Iterator:
        biased = yield Load(self.rbias)
        if biased:
            index = self._hash_slot(task)
            slot = self.table[index]
            ok, _old = yield CAS(slot, None, task)
            if ok:
                # Re-check: a writer may have revoked bias between our
                # load and the slot publication.
                biased = yield Load(self.rbias)
                if biased:
                    self._slot_of[task.tid] = index
                    self.fastpath_reads += 1
                    self._mark_read_acquired(task)
                    return
                yield Store(slot, None)
        # Slow path: the underlying lock.
        self.slowpath_reads += 1
        yield from self.underlying.read_acquire(task)
        self._slot_of[task.tid] = None
        # Try to re-enable bias once the inhibition window has passed.
        if self.engine.now >= self.inhibit_until:
            biased = yield Load(self.rbias)
            if not biased:
                yield Store(self.rbias, 1)
        self._mark_read_acquired(task)

    def read_release(self, task: Task) -> Iterator:
        index = self._slot_of.pop(task.tid, None)
        self._mark_read_released(task)
        if index is not None:
            yield Store(self.table[index], None)
        else:
            yield from self.underlying.read_release(task)

    # ------------------------------------------------------------------
    # Writers
    # ------------------------------------------------------------------
    def write_acquire(self, task: Task) -> Iterator:
        yield from self.underlying.write_acquire(task)
        biased = yield Load(self.rbias)
        if biased:
            self.revocations += 1
            start = self.engine.now
            yield Store(self.rbias, 0)
            # Scan the visible-readers table and wait for each published
            # reader to drain.  New readers now fail the bias re-check,
            # so the scan terminates.
            for slot in self.table:
                occupant = yield Load(slot)
                if occupant is not None:
                    yield WaitValue(slot, lambda v: v is None)
            scan_cost = self.engine.now - start
            self.inhibit_until = self.engine.now + _INHIBIT_MULTIPLIER * scan_cost
        self._mark_acquired(task, contended=True)

    def write_release(self, task: Task) -> Iterator:
        self._mark_released(task)
        yield from self.underlying.write_release(task)
