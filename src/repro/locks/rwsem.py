"""Blocking readers-writer semaphore (Linux ``rw_semaphore`` analogue).

This is "Stock" in the paper's Figure 2(a): the lock protecting
``mm->mmap_sem`` on the page-fault path.  The properties that matter for
reproduction:

* the reader fast path is an atomic add on one shared word, so at high
  reader counts the word's cache line serializes every fault — the flat
  "Stock" curve;
* waiters that cannot enter spin briefly and then *park*, paying wake-up
  latency when the lock becomes available (blocking semantics);
* an arriving writer publishes PENDING, which blocks new readers
  (writer-fairness, like the kernel's handoff logic).

Wait lists are Python-level bookkeeping (a real rwsem guards them with
an internal spinlock whose traffic is secondary to the count word);
park/unpark costs are fully charged through the engine.
"""

from __future__ import annotations

from typing import Iterator, List

from ..sim.ops import CAS, Delay, FetchAdd, Load, Park, Unpark
from ..sim.task import Task
from .base import RWLock
from .rwlock import PENDING, READER_MASK, WRITER

__all__ = ["RWSemaphore"]

_SPIN_NS = 2000
_POLL_NS = 250


def _reader_may_proceed(value: int) -> bool:
    return not value & (WRITER | PENDING)


def _writer_phase1_may_proceed(value: int) -> bool:
    return not value & (WRITER | PENDING)


def _writer_phase2_may_proceed(value: int) -> bool:
    # We hold PENDING; we only wait for the readers to drain.
    return (value & READER_MASK) == 0


class RWSemaphore(RWLock):
    """Neutral blocking rw-semaphore with spin-then-park waiting.

    Args:
        spin_budget_ns: optimistic spin time before a blocked task
            parks.  This is exactly the "ad-hoc spin time" §3.1.1 says
            C3 should expose to applications; the adaptive-parking
            policy experiments tune it at run time.
    """

    kind = "rwsem"

    def __init__(self, engine, name: str = "", spin_budget_ns: int = _SPIN_NS) -> None:
        super().__init__(engine, name)
        self.word = engine.cell(0, name=f"{self.name}.count")
        self.spin_budget_ns = spin_budget_ns
        self._parked_readers: List[Task] = []
        self._parked_writers: List[Task] = []
        # The (single) PENDING holder waiting for readers to drain parks
        # in its own lot so read_release can wake exactly it.
        self._parked_pending: List[Task] = []

    # ------------------------------------------------------------------
    # Readers
    # ------------------------------------------------------------------
    def read_acquire(self, task: Task) -> Iterator:
        spun = 0
        while True:
            # Probe before the RMW: once a writer has published PENDING,
            # readers must not keep bouncing transient +1/-1 pairs on the
            # word — those keep the count nonzero and starve the writer's
            # drain (Linux's HANDOFF bit exists for the same reason).
            value = yield Load(self.word)
            if value & (WRITER | PENDING):
                spun = yield from self._wait_turn(
                    task, self._parked_readers, spun, _reader_may_proceed
                )
                continue
            old = yield FetchAdd(self.word, 1)
            if not old & (WRITER | PENDING):
                break  # fast path: we are in
            # A writer holds or waits: undo and wait.  The undo may be
            # the decrement that drains the reader count to zero, so it
            # must hand the baton exactly like read_release does.
            old = yield FetchAdd(self.word, -1)
            if (old - 1) & READER_MASK == 0 and old & PENDING and self._parked_pending:
                target = self._parked_pending.pop(0)
                yield Unpark(target)
            spun = yield from self._wait_turn(
                task, self._parked_readers, spun, _reader_may_proceed
            )
        self._mark_read_acquired(task)

    def read_release(self, task: Task) -> Iterator:
        self._mark_read_released(task)
        old = yield FetchAdd(self.word, -1)
        if (old - 1) & READER_MASK == 0 and old & PENDING:
            # Last reader out with a writer waiting: hand the baton to the
            # PENDING holder specifically.
            if self._parked_pending:
                target = self._parked_pending.pop(0)
                yield Unpark(target)

    # ------------------------------------------------------------------
    # Writers
    # ------------------------------------------------------------------
    def write_acquire(self, task: Task) -> Iterator:
        spun = 0
        # Phase 1: claim PENDING.
        while True:
            value = yield Load(self.word)
            if value & (PENDING | WRITER):
                spun = yield from self._wait_turn(
                    task, self._parked_writers, spun, _writer_phase1_may_proceed
                )
                continue
            ok, _old = yield CAS(self.word, value, value | PENDING)
            if ok:
                break
        # Phase 2: wait for readers to drain, convert PENDING -> WRITER.
        spun = 0
        while True:
            value = yield Load(self.word)
            if value == PENDING:
                ok, _old = yield CAS(self.word, PENDING, WRITER)
                if ok:
                    break
                continue
            spun = yield from self._wait_turn(
                task, self._parked_pending, spun, _writer_phase2_may_proceed
            )
        self._mark_acquired(task, contended=True)

    def write_release(self, task: Task) -> Iterator:
        self._mark_released(task)
        yield FetchAdd(self.word, -WRITER)
        # Prefer waking a writer (neutrality: alternation under contention),
        # then release the reader herd.
        yield from self._wake_writer(task)
        yield from self._wake_all_readers(task)

    # ------------------------------------------------------------------
    # Waiting machinery
    # ------------------------------------------------------------------
    def _wait_turn(self, task: Task, parking_lot: List[Task], spun: int, may_proceed) -> Iterator:
        """Spin for the remaining budget, then park.  Returns updated spin."""
        if spun < self.spin_budget_ns:
            yield Delay(_POLL_NS)
            return spun + _POLL_NS
        # Register, re-check, park (the re-check closes the lost-wakeup
        # window: any release after registration will unpark us).
        parking_lot.append(task)
        value = yield Load(self.word)
        if may_proceed(value):
            try:
                parking_lot.remove(task)
            except ValueError:
                pass  # a waker already claimed us; its token is pending
            return 0
        yield Park()
        try:
            parking_lot.remove(task)
        except ValueError:
            pass
        return 0

    def _wake_writer(self, task: Task) -> Iterator:
        if self._parked_writers:
            target = self._parked_writers.pop(0)
            yield Unpark(target)

    def _wake_all_readers(self, task: Task) -> Iterator:
        while self._parked_readers:
            target = self._parked_readers.pop(0)
            yield Unpark(target)
