"""Spinning readers-writer locks (kernel ``rwlock_t`` analogues).

The *neutral* variant mirrors Linux's qrwlock fairness: an arriving
writer publishes a PENDING bit that stops new readers, so writers are
not starved, and readers otherwise share.  Both reader entry and exit
are atomic RMWs on one shared word — which is why neutral rw locks stop
scaling once enough readers hammer the line, the pathology BRAVO (and
Figure 2a) addresses.

Word layout::

    bits 0..19   reader count
    bit  20      WRITER   (a writer holds the lock)
    bit  21      PENDING  (a writer is waiting; blocks new readers)
"""

from __future__ import annotations

from typing import Iterator

from ..sim.ops import CAS, Delay, FetchAdd, Load, WaitValue
from ..sim.task import Task
from .base import RWLock

__all__ = ["NeutralRWLock", "ReaderPrefRWLock", "WRITER", "PENDING", "READER_MASK"]

READER_MASK = (1 << 20) - 1
WRITER = 1 << 20
PENDING = 1 << 21

_BACKOFF_NS = 150


class NeutralRWLock(RWLock):
    """Fair (task-neutral) spinning readers-writer lock."""

    #: Bits that block a new reader from entering.
    _reader_block_mask = WRITER | PENDING

    def __init__(self, engine, name: str = "") -> None:
        super().__init__(engine, name)
        self.word = engine.cell(0, name=f"{self.name}.word")

    # -- readers ---------------------------------------------------------
    def read_acquire(self, task: Task) -> Iterator:
        while True:
            value = yield Load(self.word)
            if value & self._reader_block_mask:
                yield Delay(_BACKOFF_NS)
                continue
            ok, _old = yield CAS(self.word, value, value + 1)
            if ok:
                break
        self._mark_read_acquired(task)

    def read_release(self, task: Task) -> Iterator:
        self._mark_read_released(task)
        yield FetchAdd(self.word, -1)

    # -- writers ---------------------------------------------------------
    def write_acquire(self, task: Task) -> Iterator:
        # Phase 1: claim the PENDING slot (one waiting writer at a time).
        while True:
            value = yield Load(self.word)
            if value & (PENDING | WRITER):
                yield Delay(_BACKOFF_NS)
                continue
            ok, _old = yield CAS(self.word, value, value | PENDING)
            if ok:
                break
        # Phase 2: wait for readers to drain, then convert to WRITER.
        while True:
            value = yield Load(self.word)
            if value == PENDING:
                ok, _old = yield CAS(self.word, PENDING, WRITER)
                if ok:
                    break
            yield Delay(_BACKOFF_NS)
        self._mark_acquired(task, contended=True)

    def write_release(self, task: Task) -> Iterator:
        self._mark_released(task)
        yield FetchAdd(self.word, -WRITER)


class ReaderPrefRWLock(NeutralRWLock):
    """Reader-preference variant: new readers ignore waiting writers.

    Maximizes read throughput, can starve writers — one endpoint of the
    reader/writer priority trade-off C3 lets applications pick per
    workload.
    """

    _reader_block_mask = WRITER
