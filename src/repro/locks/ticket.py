"""Ticket spinlock (pre-3.15 Linux ``arch_spinlock_t``).

Perfectly fair (FIFO by construction) but non-scalable: every waiter
spins on the shared ``owner`` word, so each release invalidates every
waiter's cache copy — O(N) coherence traffic per handoff.  This is the
classic motivation for queue-based locks and a useful baseline for the
lock2 experiments.
"""

from __future__ import annotations

from typing import Iterator

from ..sim.ops import FetchAdd, Load, Store, WaitValue, CAS
from ..sim.task import Task
from .base import Lock

__all__ = ["TicketLock"]


class TicketLock(Lock):
    def __init__(self, engine, name: str = "") -> None:
        super().__init__(engine, name)
        self.next_ticket = engine.cell(0, name=f"{self.name}.next")
        self.owner_ticket = engine.cell(0, name=f"{self.name}.owner")
        self._my_ticket = {}

    def acquire(self, task: Task) -> Iterator:
        ticket = yield FetchAdd(self.next_ticket, 1)
        current = yield Load(self.owner_ticket)
        contended = current != ticket
        if contended:
            yield WaitValue(self.owner_ticket, lambda v, t=ticket: v == t)
        self._my_ticket[task.tid] = ticket
        self._mark_acquired(task, contended)

    def release(self, task: Task) -> Iterator:
        ticket = self._my_ticket.pop(task.tid)
        self._mark_released(task)
        yield Store(self.owner_ticket, ticket + 1)

    def try_acquire(self, task: Task) -> Iterator:
        # trylock: take a ticket only if the lock is immediately free,
        # done in one shot by CAS on the (next == owner) encoding.  We
        # approximate by loading both words and CASing next forward.
        owner = yield Load(self.owner_ticket)
        ok, _ = yield CAS(self.next_ticket, owner, owner + 1)
        if ok:
            self._my_ticket[task.tid] = owner
            self._mark_acquired(task)
        return ok
