"""Kernel lock algorithm library.

Every algorithm runs against the simulated coherence model, so relative
scalability behaviours (TAS collapse, MCS flatness, NUMA batching wins,
BRAVO reader scaling) emerge from the same mechanisms as on hardware.

Exclusive locks: :class:`TASLock`, :class:`TTASLock`, :class:`TicketLock`,
:class:`MCSLock`, :class:`CNALock`, :class:`CohortLock`,
:class:`ShflLock`, :class:`SpinParkMutex`, :class:`CullingLock`
(concurrency-capped Malthusian culling).

Readers-writer locks: :class:`NeutralRWLock`, :class:`ReaderPrefRWLock`,
:class:`RWSemaphore`, :class:`BravoLock`, :class:`PerCPURWLock`.

Interval locks: :class:`RangeLock` (readers/writers over address
ranges; conflicts only where intervals overlap).

Infrastructure: :class:`SwitchableLock`/:class:`SwitchableRWLock`
(livepatchable call sites), :class:`LockRegistry`, and the hook-point
machinery in :mod:`.base`.
"""

from .base import (
    ALL_HOOKS,
    DECISION_HOOKS,
    HOOK_CMP_NODE,
    HOOK_LOCK_ACQUIRE,
    HOOK_LOCK_ACQUIRED,
    HOOK_LOCK_CONTENDED,
    HOOK_LOCK_RELEASE,
    HOOK_SCHEDULE_WAITER,
    HOOK_SKIP_SHUFFLE,
    PROFILING_HOOKS,
    HookSet,
    Lock,
    LockError,
    RWLock,
)
from .bravo import BravoLock
from .cna import CNALock, CNANode
from .cohort import CohortLock
from .culling import CullingLock
from .mcs import MCSLock, MCSNode
from .mutex import SpinParkMutex
from .percpu_rwlock import PerCPURWLock
from .phase_fair import PhaseFairRWLock
from .qspinlock import QSpinLock
from .range_lock import RangeLock
from .registry import LockRegistry
from .rwlock import NeutralRWLock, ReaderPrefRWLock
from .rwsem import RWSemaphore
from .seqlock import SeqLock
from .shfllock import NumaPolicy, ShflLock, ShflNode, ShufflePolicy
from .switchable import DEFAULT_TRAMPOLINE_NS, SwitchableLock, SwitchableRWLock
from .tas import TASLock, TTASLock
from .ticket import TicketLock

__all__ = [
    "ALL_HOOKS",
    "DECISION_HOOKS",
    "HOOK_CMP_NODE",
    "HOOK_LOCK_ACQUIRE",
    "HOOK_LOCK_ACQUIRED",
    "HOOK_LOCK_CONTENDED",
    "HOOK_LOCK_RELEASE",
    "HOOK_SCHEDULE_WAITER",
    "HOOK_SKIP_SHUFFLE",
    "PROFILING_HOOKS",
    "HookSet",
    "Lock",
    "LockError",
    "RWLock",
    "BravoLock",
    "CNALock",
    "CNANode",
    "CohortLock",
    "CullingLock",
    "MCSLock",
    "MCSNode",
    "SpinParkMutex",
    "PerCPURWLock",
    "PhaseFairRWLock",
    "QSpinLock",
    "RangeLock",
    "LockRegistry",
    "NeutralRWLock",
    "ReaderPrefRWLock",
    "RWSemaphore",
    "SeqLock",
    "NumaPolicy",
    "ShflLock",
    "ShflNode",
    "ShufflePolicy",
    "DEFAULT_TRAMPOLINE_NS",
    "SwitchableLock",
    "SwitchableRWLock",
    "TASLock",
    "TTASLock",
    "TicketLock",
]
