"""Test-and-set spinlocks.

The simplest (and least scalable) locks: every waiter hammers the same
cache line with atomic RMWs, so contended throughput *collapses* as the
line ping-pongs between sockets.  These exist as baselines — the "locks
are dangerous" end of the design space the paper's background section
describes — and as the top-level word used inside ShflLock.
"""

from __future__ import annotations

from typing import Iterator

from ..sim.ops import CAS, Delay, Load, Store
from ..sim.task import Task
from .base import Lock

__all__ = ["TASLock", "TTASLock"]

_UNLOCKED = 0
_LOCKED = 1


class TASLock(Lock):
    """Naive test-and-set: CAS until it sticks.

    Args:
        backoff_ns: initial retry backoff.
        max_backoff_ns: exponential backoff cap.  A small cap keeps the
            line hot (more contention, more realistic collapse); a large
            cap trades latency for less traffic.
    """

    def __init__(self, engine, name: str = "", backoff_ns: int = 60, max_backoff_ns: int = 2000) -> None:
        super().__init__(engine, name)
        self.word = engine.cell(_UNLOCKED, name=f"{self.name}.word")
        self.backoff_ns = backoff_ns
        self.max_backoff_ns = max_backoff_ns

    def acquire(self, task: Task) -> Iterator:
        backoff = self.backoff_ns
        contended = False
        while True:
            ok, _old = yield CAS(self.word, _UNLOCKED, _LOCKED)
            if ok:
                break
            contended = True
            yield Delay(backoff)
            backoff = min(backoff * 2, self.max_backoff_ns)
        self._mark_acquired(task, contended)

    def release(self, task: Task) -> Iterator:
        self._mark_released(task)
        yield Store(self.word, _UNLOCKED)

    def try_acquire(self, task: Task) -> Iterator:
        ok, _old = yield CAS(self.word, _UNLOCKED, _LOCKED)
        if ok:
            self._mark_acquired(task)
        return ok


class TTASLock(TASLock):
    """Test-and-test-and-set: read before attempting the RMW.

    Reading first lets waiters spin on a shared copy; only the release
    broadcast triggers a storm of CAS attempts.  Better than TAS, still
    unfair and non-scalable.
    """

    def acquire(self, task: Task) -> Iterator:
        backoff = self.backoff_ns
        contended = False
        while True:
            value = yield Load(self.word)
            if value == _UNLOCKED:
                ok, _old = yield CAS(self.word, _UNLOCKED, _LOCKED)
                if ok:
                    break
            contended = True
            yield Delay(backoff)
            backoff = min(backoff * 2, self.max_backoff_ns)
        self._mark_acquired(task, contended)
