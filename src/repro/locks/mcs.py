"""MCS queue lock (Mellor-Crummey & Scott, 1991).

The canonical scalable spinlock and our stand-in for Linux's
``qspinlock`` ("Stock" in the paper's Figure 2b): waiters form an
explicit queue and each spins on a flag in its *own* node, so a release
causes exactly one cache-line transfer, to the successor.  Fair (strict
FIFO), flat under contention — and NUMA-oblivious, which is exactly the
weakness ShflLock's shuffling attacks: with threads spread across
sockets, most handoffs cross a socket boundary and pay remote-transfer
latency.
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional

from ..sim.cache import Cell
from ..sim.ops import CAS, Load, Store, WaitValue, Xchg
from ..sim.task import Task
from .base import Lock

__all__ = ["MCSNode", "MCSLock"]


class MCSNode:
    """One waiter's queue node: a ``next`` pointer line and a spin flag line."""

    __slots__ = ("task", "next", "locked", "cpu", "socket")

    def __init__(self, engine, task: Task) -> None:
        self.task = task
        self.cpu = task.cpu_id
        self.socket = task.numa_node
        self.next: Cell = engine.cell(None, name=f"mcs.next.{task.tid}")
        self.locked: Cell = engine.cell(True, name=f"mcs.locked.{task.tid}")

    def __repr__(self) -> str:
        return f"MCSNode({self.task.name})"


class MCSLock(Lock):
    def __init__(self, engine, name: str = "") -> None:
        super().__init__(engine, name)
        self.tail = engine.cell(None, name=f"{self.name}.tail")
        self._nodes: Dict[int, MCSNode] = {}

    def acquire(self, task: Task) -> Iterator:
        node = MCSNode(self.engine, task)
        self._nodes[task.tid] = node
        prev: Optional[MCSNode] = yield Xchg(self.tail, node)
        contended = prev is not None
        if contended:
            yield Store(prev.next, node)
            yield WaitValue(node.locked, lambda v: v is False)
        self._mark_acquired(task, contended)

    def release(self, task: Task) -> Iterator:
        node = self._nodes.pop(task.tid)
        self._mark_released(task)
        succ = yield Load(node.next)
        if succ is None:
            ok, _old = yield CAS(self.tail, node, None)
            if ok:
                return
            # Someone is appending: wait for them to link in.
            succ = yield WaitValue(node.next, lambda v: v is not None)
        yield Store(succ.locked, False)

    def try_acquire(self, task: Task) -> Iterator:
        node = MCSNode(self.engine, task)
        ok, _old = yield CAS(self.tail, None, node)
        if ok:
            self._nodes[task.tid] = node
            self._mark_acquired(task)
        return ok
