"""Phase-fair readers-writer lock (Brandenburg & Anderson, PF-T).

§3.1.2 "Realtime scheduling": lock policies for latency-critical
applications "can design an algorithm based on the phase-fair property
... eliminates jitters and guarantees an upper bound on tail latency".

Phase-fairness: reader and writer *phases* alternate, so a reader waits
for at most one writer phase plus one reader phase regardless of how
many writers are queued — an O(1) bound that task-fair and
writer-preference locks cannot give.  This is the ticket-based PF-T
variant, implemented on the simulated atomics.

Word layout of ``rin``/``rout``: reader counts in the high bits
(increments of RINC), writer presence/phase in the low two bits.
"""

from __future__ import annotations

from typing import Dict, Iterator

from ..sim.ops import FetchAdd, Load, WaitValue
from ..sim.task import Task
from .base import RWLock

__all__ = ["PhaseFairRWLock"]

RINC = 0x100          # reader increment
WBITS = 0x3           # writer present + phase id
PRES = 0x2            # writer present
PHID = 0x1            # writer phase id


class PhaseFairRWLock(RWLock):
    kind = "phase-fair"

    def __init__(self, engine, name: str = "") -> None:
        super().__init__(engine, name)
        self.rin = engine.cell(0, name=f"{self.name}.rin")
        self.rout = engine.cell(0, name=f"{self.name}.rout")
        self.win = engine.cell(0, name=f"{self.name}.win")
        self.wout = engine.cell(0, name=f"{self.name}.wout")
        self._writer_w: Dict[int, int] = {}

    # -- readers ---------------------------------------------------------
    def read_acquire(self, task: Task) -> Iterator:
        entry = yield FetchAdd(self.rin, RINC)
        blocked_phase = entry & WBITS
        if blocked_phase != 0:
            # A writer is present: wait for the phase to change (at most
            # one writer phase, by construction).
            yield WaitValue(self.rin, lambda v, w=blocked_phase: (v & WBITS) != w)
        self._mark_read_acquired(task)

    def read_release(self, task: Task) -> Iterator:
        self._mark_read_released(task)
        yield FetchAdd(self.rout, RINC)

    # -- writers ---------------------------------------------------------
    def write_acquire(self, task: Task) -> Iterator:
        ticket = yield FetchAdd(self.win, 1)
        current = yield Load(self.wout)
        if current != ticket:
            yield WaitValue(self.wout, lambda v, t=ticket: v == t)
        # We are the head writer: close the reader gate with our phase id
        # and wait for in-flight readers to drain.
        w = PRES | (ticket & PHID)
        entry = yield FetchAdd(self.rin, w)
        readers_at_cut = entry & ~WBITS
        drained = yield Load(self.rout)
        if (drained & ~WBITS) != readers_at_cut:
            yield WaitValue(
                self.rout, lambda v, target=readers_at_cut: (v & ~WBITS) == target
            )
        self._writer_w[task.tid] = w
        self._mark_acquired(task, contended=True)

    def write_release(self, task: Task) -> Iterator:
        w = self._writer_w.pop(task.tid)
        self._mark_released(task)
        # Reopen the reader gate (flips WBITS, releasing blocked readers)
        # then pass the writer baton.
        yield FetchAdd(self.rin, -w)
        yield FetchAdd(self.wout, 1)
