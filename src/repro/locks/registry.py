"""Named lock instances (the kallsyms-for-locks directory).

The paper's framework addresses locks by identity — "one lock instance,
locks in a specific function, code path or namespace, or even every lock
in the kernel" (§3.2).  The registry supports exactly those selector
granularities with dotted hierarchical names, e.g.::

    mm.mmap_lock
    vfs.inode.17.lock
    net.sock.lock

and glob selection (``vfs.inode.*.lock``, ``*``).
"""

from __future__ import annotations

import fnmatch
from typing import Dict, Iterator, List, Optional

from .base import Lock, LockError

__all__ = ["LockRegistry"]


class LockRegistry:
    """A directory of named lock instances."""

    def __init__(self) -> None:
        self._locks: Dict[str, Lock] = {}

    def register(self, name: str, lock: Lock) -> Lock:
        """Register ``lock`` under ``name``; returns the lock for chaining."""
        if name in self._locks:
            raise LockError(f"lock name {name!r} already registered")
        self._locks[name] = lock
        return lock

    def unregister(self, name: str) -> None:
        self._locks.pop(name, None)

    def get(self, name: str) -> Lock:
        try:
            return self._locks[name]
        except KeyError:
            raise LockError(f"no lock registered as {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._locks

    def __len__(self) -> int:
        return len(self._locks)

    def names(self) -> List[str]:
        return sorted(self._locks)

    def select(self, pattern: str) -> List[Lock]:
        """All locks whose name matches the glob ``pattern``."""
        return [
            lock
            for name, lock in sorted(self._locks.items())
            if fnmatch.fnmatchcase(name, pattern)
        ]

    def select_names(self, pattern: str) -> List[str]:
        return [name for name in sorted(self._locks) if fnmatch.fnmatchcase(name, pattern)]

    def items(self) -> Iterator:
        return iter(sorted(self._locks.items()))

    def name_of(self, lock: Lock) -> Optional[str]:
        for name, candidate in self._locks.items():
            if candidate is lock:
                return name
        return None
