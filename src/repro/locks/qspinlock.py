"""Linux qspinlock: the kernel's actual "Stock" spinlock.

MCS with a twist that matters at low contention: the *pending* bit.
The first contending CPU does not allocate a queue node — it sets
PENDING and spins on the lock byte directly (cheap 2-CPU handoff);
only the third CPU onward queues MCS-style.  The queue head then spins
until both LOCKED and PENDING clear.

This is the precise algorithm the paper's Figure 2(b) "Stock" line runs;
:class:`~repro.locks.mcs.MCSLock` (pure MCS) remains the default stock
baseline in the benchmarks because the pending-bit fast path only
affects the 2-3 thread regime, but qspinlock is provided for fidelity
and for low-count experiments.
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional

from ..sim.ops import CAS, Load, Store, WaitValue, Xchg
from ..sim.task import Task
from .base import Lock
from .mcs import MCSNode

__all__ = ["QSpinLock"]

# Lock-word values (modelled as one cell, like the kernel's 32-bit word;
# the tail lives in its own cell because our cells hold object refs).
_FREE = 0
_LOCKED = 1
_PENDING = 2          # flag bit
_LOCKED_PENDING = _LOCKED | _PENDING


class QSpinLock(Lock):
    kind = "qspinlock"

    def __init__(self, engine, name: str = "") -> None:
        super().__init__(engine, name)
        self.word = engine.cell(_FREE, name=f"{self.name}.word")
        self.tail = engine.cell(None, name=f"{self.name}.tail")
        self._nodes: Dict[int, Optional[MCSNode]] = {}
        self.pending_fastpaths = 0

    # ------------------------------------------------------------------
    def acquire(self, task: Task) -> Iterator:
        # Fast path only when nobody is queued (in the real lock the tail
        # bits share the word, so a single cmpxchg covers this check —
        # stealing past a queue would starve the event-driven head).
        queued = yield Load(self.tail)
        old = None
        if queued is None:
            ok, old = yield CAS(self.word, _FREE, _LOCKED)
            if ok:
                self._nodes[task.tid] = None
                self._mark_acquired(task, contended=False)
                return

        # Pending path: lock held, nobody pending, nobody queued -> spin
        # on the word itself instead of allocating a queue node.
        if old == _LOCKED:
            queued = yield Load(self.tail)
            if queued is None:
                ok, old = yield CAS(self.word, _LOCKED, _LOCKED_PENDING)
                if ok:
                    # We hold PENDING: wait for the owner to drop LOCKED,
                    # then claim it (PENDING -> LOCKED).
                    yield WaitValue(self.word, lambda v: v & _LOCKED == 0)
                    yield Store(self.word, _LOCKED)
                    self.pending_fastpaths += 1
                    self._nodes[task.tid] = None
                    self._mark_acquired(task, contended=True)
                    return

        # Slow path: MCS queue.
        node = MCSNode(self.engine, task)
        self._nodes[task.tid] = node
        prev: Optional[MCSNode] = yield Xchg(self.tail, node)
        if prev is not None:
            yield Store(prev.next, node)
            yield WaitValue(node.locked, lambda v: v is False)
        # Queue head: wait for LOCKED and PENDING to both clear, then own.
        while True:
            value = yield WaitValue(self.word, lambda v: v == _FREE)
            ok, _old = yield CAS(self.word, _FREE, _LOCKED)
            if ok:
                break
        # Hand queue-head status to the successor (like MCS release, but
        # done at acquire time: the word carries the lock itself).
        succ = yield Load(node.next)
        if succ is None:
            ok, _old = yield CAS(self.tail, node, None)
            if not ok:
                succ = yield WaitValue(node.next, lambda v: v is not None)
        if succ is not None:
            yield Store(succ.locked, False)
        self._mark_acquired(task, contended=True)

    def release(self, task: Task) -> Iterator:
        self._nodes.pop(task.tid, None)
        self._mark_released(task)
        # Clear only the LOCKED bit: a pending spinner keeps its claim.
        while True:
            value = yield Load(self.word)
            ok, _old = yield CAS(self.word, value, value & ~_LOCKED)
            if ok:
                break

    def try_acquire(self, task: Task) -> Iterator:
        ok, _old = yield CAS(self.word, _FREE, _LOCKED)
        if ok:
            self._nodes[task.tid] = None
            self._mark_acquired(task)
        return ok
