"""Per-CPU (distributed) readers-writer lock.

The classic big-reader lock (``brlock``/percpu-rwsem family): every CPU
has its own reader counter line, so concurrent readers never share a
cache line and scale linearly; a writer flips a global flag and then
waits for *every* per-CPU counter to drain, making writes expensive.

§3.1.1 of the paper uses exactly this trade-off as its first lock-
switching scenario: "switch from a neutral readers-writer lock design to
a per-CPU ... readers-writer design for a read-intensive workload."
"""

from __future__ import annotations

from typing import Iterator, List

from ..sim.cache import Cell
from ..sim.ops import CAS, Delay, FetchAdd, Load, Store, WaitValue
from ..sim.task import Task
from .base import RWLock

__all__ = ["PerCPURWLock"]

_WRITER_BACKOFF_NS = 200


class PerCPURWLock(RWLock):
    kind = "percpu-rw"

    def __init__(self, engine, name: str = "") -> None:
        super().__init__(engine, name)
        self.writer_flag = engine.cell(0, name=f"{self.name}.writer")
        self.counters: List[Cell] = [
            engine.cell(0, name=f"{self.name}.cnt[{cpu}]")
            for cpu in range(engine.topology.nr_cpus)
        ]

    # -- readers ---------------------------------------------------------
    def read_acquire(self, task: Task) -> Iterator:
        counter = self.counters[task.cpu_id]
        while True:
            flag = yield Load(self.writer_flag)
            if flag:
                yield WaitValue(self.writer_flag, lambda v: v == 0)
            yield FetchAdd(counter, 1)
            # Publication race: re-check the writer flag after announcing
            # ourselves (store-load ordering a real brlock gets from the
            # atomic's full barrier).
            flag = yield Load(self.writer_flag)
            if not flag:
                break
            yield FetchAdd(counter, -1)
        self._mark_read_acquired(task)

    def read_release(self, task: Task) -> Iterator:
        self._mark_read_released(task)
        yield FetchAdd(self.counters[task.cpu_id], -1)

    # -- writers ---------------------------------------------------------
    def write_acquire(self, task: Task) -> Iterator:
        # Serialize writers on the flag itself (writer vs writer is rare
        # in the workloads this lock is chosen for).
        while True:
            flag = yield Load(self.writer_flag)
            if flag == 0:
                ok, _old = yield CAS(self.writer_flag, 0, 1)
                if ok:
                    break
            yield Delay(_WRITER_BACKOFF_NS)
        # Wait for every per-CPU counter to drain.
        for counter in self.counters:
            value = yield Load(counter)
            if value > 0:
                yield WaitValue(counter, lambda v: v <= 0)
        self._mark_acquired(task, contended=True)

    def write_release(self, task: Task) -> Iterator:
        self._mark_released(task)
        yield Store(self.writer_flag, 0)
