"""Sequence lock (``seqlock_t``) — the other §6 extension target.

Writers increment a sequence counter on entry and exit (odd = write in
progress); readers snapshot the counter, read optimistically, and retry
if it changed or was odd.  Readers never block writers — ideal for
tiny, frequently-read, rarely-written data (the kernel's jiffies,
timekeeping, mount structures).

The retry loop makes reads *optimistic concurrency control*, which is
exactly the direction §6 points ("we can further extend this paradigm to
other forms of concurrency control mechanisms, such as optimistic
locking").  The reader API is generator-style::

    while True:
        seq = yield from seq_lock.read_begin(task)
        value = yield ops.Load(cell)      # the optimistic read section
        retry = yield from seq_lock.read_retry(task, seq)
        if not retry:
            break
"""

from __future__ import annotations

from typing import Iterator

from ..sim.ops import Delay, FetchAdd, Load, WaitValue
from ..sim.task import Task
from .base import Lock

__all__ = ["SeqLock"]


class SeqLock(Lock):
    """Sequence counter + an internal writer lock.

    Writer mutual exclusion is provided by a plain CAS loop on the
    (even) sequence word itself, like the kernel's ``seqlock_t`` =
    seqcount + spinlock fused.
    """

    kind = "seqlock"

    def __init__(self, engine, name: str = "") -> None:
        super().__init__(engine, name)
        self.sequence = engine.cell(0, name=f"{self.name}.seq")
        self.read_retries = 0
        self.reads = 0

    # -- readers (never block, may retry) --------------------------------
    def read_begin(self, task: Task) -> Iterator:
        """Snapshot the sequence; spins past an in-flight writer."""
        while True:
            seq = yield Load(self.sequence)
            if seq % 2 == 0:
                return seq
            yield WaitValue(self.sequence, lambda v: v % 2 == 0)

    def read_retry(self, task: Task, seq: int) -> Iterator:
        """True if the section raced a writer and must be retried."""
        current = yield Load(self.sequence)
        retry = current != seq
        if retry:
            self.read_retries += 1
        else:
            self.reads += 1
        return retry

    # -- writers ----------------------------------------------------------
    def write_acquire(self, task: Task) -> Iterator:
        from ..sim.ops import CAS

        while True:
            seq = yield Load(self.sequence)
            if seq % 2 == 0:
                ok, _old = yield CAS(self.sequence, seq, seq + 1)
                if ok:
                    break
            yield Delay(80)
        self._mark_acquired(task, contended=False)

    def write_release(self, task: Task) -> Iterator:
        self._mark_released(task)
        yield FetchAdd(self.sequence, 1)  # back to even: readers may settle

    # The exclusive-lock protocol maps onto the writer side.
    def acquire(self, task: Task) -> Iterator:
        return self.write_acquire(task)

    def release(self, task: Task) -> Iterator:
        return self.write_release(task)
