"""Range lock: readers-writer locking over address intervals.

Models the "Scalable Range Locks" idea (PAPERS.md): instead of one
``mmap_sem`` serializing the whole address space, lockers name the
half-open interval ``[start, end)`` they touch, and two operations
conflict only when their intervals overlap *and* at least one writes.
Disjoint mmap/munmap/page-fault traffic proceeds in parallel — the
scaling win the paper measures — while overlapping writers still
serialize.

Implementation notes:

* Held ranges live in a Python-level list (zero simulated cost);
  the *simulated* cost of walking the range structure is charged as a
  ``Delay`` proportional to the number of held ranges, which is what
  makes the global-vs-range tradeoff measurable rather than free.
* Waiters queue FIFO.  A new locker must be compatible with every
  holder **and** every earlier queued waiter it overlaps — overlap
  FIFO prevents a stream of readers from starving a queued writer,
  and makes grant order deterministic.
* On release the queue is scanned in order; every waiter compatible
  with the remaining holders and the still-blocked prefix is granted
  (marked *before* its ``Unpark``, so the park-token semantics of the
  engine guarantee no lost wake-up).

Not a :class:`~repro.locks.base.Lock` subclass: the acquire signature
carries the interval, so range locks are not drop-in switchable sites.
Workloads hold them directly.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Tuple

from ..sim.engine import Engine
from ..sim.ops import Delay, Park, Unpark
from ..sim.task import Task
from .base import LockError

__all__ = ["RangeLock"]

#: Base simulated cost of one range-tree walk.
WALK_NS = 60
#: Extra walk cost per currently-held range (tree depth proxy).
WALK_PER_HELD_NS = 8


class _Entry:
    """One held or queued interval."""

    __slots__ = ("task", "start", "end", "write", "granted")

    def __init__(self, task: Task, start: int, end: int, write: bool) -> None:
        self.task = task
        self.start = start
        self.end = end
        self.write = write
        self.granted = False

    def conflicts(self, start: int, end: int, write: bool) -> bool:
        overlap = self.start < end and start < self.end
        return overlap and (write or self.write)


class RangeLock:
    """A FIFO interval readers-writer lock."""

    kind = "range"

    def __init__(self, engine: Engine, name: str = "") -> None:
        self.engine = engine
        self.name = name or f"RangeLock@{id(self):x}"
        self._held: List[_Entry] = []
        self._queue: List[_Entry] = []
        # Counters (Python-level, zero simulated cost).
        self.acquisitions = 0
        self.read_grants = 0
        self.write_grants = 0
        self.conflicts = 0
        self.peak_concurrency = 0

    # -- protocol ------------------------------------------------------
    def read_acquire(self, task: Task, start: int, end: int) -> Iterator:
        return self._acquire(task, start, end, write=False)

    def write_acquire(self, task: Task, start: int, end: int) -> Iterator:
        return self._acquire(task, start, end, write=True)

    def read_release(self, task: Task, start: int, end: int) -> Iterator:
        return self._release(task, start, end, write=False)

    def write_release(self, task: Task, start: int, end: int) -> Iterator:
        return self._release(task, start, end, write=True)

    # -- internals -----------------------------------------------------
    def _compatible(self, start: int, end: int, write: bool) -> bool:
        """No conflict with holders or with earlier still-queued waiters."""
        for entry in self._held:
            if entry.conflicts(start, end, write):
                return False
        for entry in self._queue:
            if entry.conflicts(start, end, write):
                return False
        return True

    def _grant(self, entry: _Entry) -> None:
        entry.granted = True
        self._held.append(entry)
        self.acquisitions += 1
        if entry.write:
            self.write_grants += 1
        else:
            self.read_grants += 1
        if len(self._held) > self.peak_concurrency:
            self.peak_concurrency = len(self._held)

    def _acquire(self, task: Task, start: int, end: int, write: bool) -> Iterator:
        if end <= start:
            raise LockError(f"{self.name}: empty range [{start}, {end})")
        yield Delay(WALK_NS + WALK_PER_HELD_NS * len(self._held))
        entry = _Entry(task, start, end, write)
        if self._compatible(start, end, write):
            self._grant(entry)
            return
        self.conflicts += 1
        self._queue.append(entry)
        while not entry.granted:
            yield Park()

    def _find_held(
        self, task: Task, start: int, end: int, write: bool
    ) -> Optional[_Entry]:
        for entry in self._held:
            if (
                entry.task is task
                and entry.start == start
                and entry.end == end
                and entry.write is write
            ):
                return entry
        return None

    def _release(self, task: Task, start: int, end: int, write: bool) -> Iterator:
        entry = self._find_held(task, start, end, write)
        if entry is None:
            mode = "write" if write else "read"
            raise LockError(
                f"{self.name}: {task.name} {mode}-released [{start}, {end}) "
                f"without holding it"
            )
        self._held.remove(entry)
        yield Delay(WALK_NS)
        # FIFO wake pass: grant every waiter compatible with the holders
        # and with all still-blocked waiters ahead of it.  Grants are
        # recorded before the unparks, so a compatibility check racing
        # with the wake-ups sees a consistent picture.
        woken: List[_Entry] = []
        blocked: List[_Entry] = []
        for waiter in list(self._queue):
            ok = not any(
                h.conflicts(waiter.start, waiter.end, waiter.write)
                for h in self._held
            ) and not any(
                b.conflicts(waiter.start, waiter.end, waiter.write)
                for b in blocked
            )
            if ok:
                self._queue.remove(waiter)
                self._grant(waiter)
                woken.append(waiter)
            else:
                blocked.append(waiter)
        for waiter in woken:
            yield Unpark(waiter.task)

    # -- introspection -------------------------------------------------
    @property
    def held_ranges(self) -> List[Tuple[int, int, bool]]:
        return [(e.start, e.end, e.write) for e in self._held]

    @property
    def queue_depth(self) -> int:
        return len(self._queue)

    def __repr__(self) -> str:
        return (
            f"RangeLock({self.name}, held={len(self._held)}, "
            f"queued={len(self._queue)})"
        )
