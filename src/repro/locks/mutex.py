"""Blocking mutex with a tunable spin-then-park policy.

Models the kernel's generic mutex: an acquirer spins optimistically for
a while (hoping the holder releases soon) and then parks.  The spin
budget is the knob §3.1.1 calls the "adaptable parking/wake-up
strategy": kernels hard-code it, C3 lets applications set it from
userspace — either directly (``spin_budget_ns``) or per-acquisition
through the ``schedule_waiter`` hook, which can consult a BPF map with
the measured critical-section length.
"""

from __future__ import annotations

from typing import Iterator, List

from ..sim.ops import CAS, Delay, Load, Park, Store, Unpark
from ..sim.task import Task
from .base import HOOK_SCHEDULE_WAITER, Lock

__all__ = ["SpinParkMutex"]

_UNLOCKED = 0
_LOCKED = 1

_POLL_NS = 200


class SpinParkMutex(Lock):
    kind = "mutex"

    def __init__(self, engine, name: str = "", spin_budget_ns: int = 5000) -> None:
        super().__init__(engine, name)
        self.word = engine.cell(_UNLOCKED, name=f"{self.name}.word")
        self.spin_budget_ns = spin_budget_ns
        self._parked: List[Task] = []
        self.park_count = 0

    def acquire(self, task: Task) -> Iterator:
        contended = False
        spun = 0
        while True:
            value = yield Load(self.word)
            if value == _UNLOCKED:
                ok, _old = yield CAS(self.word, _UNLOCKED, _LOCKED)
                if ok:
                    break
            contended = True
            budget = yield from self._spin_budget_for(task)
            if spun < budget:
                yield Delay(_POLL_NS)
                spun += _POLL_NS
                continue
            # Register, re-check, park.
            self._parked.append(task)
            value = yield Load(self.word)
            if value == _UNLOCKED:
                try:
                    self._parked.remove(task)
                except ValueError:
                    pass
            else:
                self.park_count += 1
                yield Park()
                try:
                    self._parked.remove(task)
                except ValueError:
                    pass
            spun = 0
        self._mark_acquired(task, contended)

    def _spin_budget_for(self, task: Task) -> Iterator:
        """Per-acquisition spin budget; overridable via schedule_waiter."""
        if self.hooks is not None and HOOK_SCHEDULE_WAITER in self.hooks:
            value = yield from self._fire(
                task, HOOK_SCHEDULE_WAITER, {"curr_node": None}, default=None
            )
            if value is not None and value >= 0:
                return int(value)
        return self.spin_budget_ns

    def release(self, task: Task) -> Iterator:
        self._mark_released(task)
        yield Store(self.word, _UNLOCKED)
        if self._parked:
            target = self._parked.pop(0)
            yield Unpark(target)

    def try_acquire(self, task: Task) -> Iterator:
        ok, _old = yield CAS(self.word, _UNLOCKED, _LOCKED)
        if ok:
            self._mark_acquired(task)
        return ok
