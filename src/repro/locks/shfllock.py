"""ShflLock (Kashyap et al., SOSP '19) with Concord hook points.

ShflLock decouples lock *policy* from lock *implementation*: waiters
form a queue, and while the queue head spins on the top-level lock word
it acts as the **shuffler**, reordering the waiters behind it according
to a policy — all off the critical path.  The stock kernel policy groups
waiters by NUMA socket so consecutive lock handoffs stay on one socket.

This implementation exposes the paper's Table 1 hook points:

* ``cmp_node(lock, shuffler_node, curr_node)`` — should ``curr_node``
  move forward (be grouped behind the shuffler)?
* ``skip_shuffle(lock, shuffler_node)`` — skip this shuffling pass.
* ``schedule_waiter(lock, curr_node)`` — park/spin decision for waiters
  (only consulted in blocking mode).

Each hook resolves in priority order: Concord-attached BPF program →
compiled-in Python policy → built-in default.  The three call sites are
exactly where a livepatched kernel would redirect to eBPF.

Safety properties enforced here (the "runtime checks" of §4.2):

* shuffling never moves the queue's last node (append-race freedom);
* a shuffling pass is bounded by ``max_shuffle_window`` nodes and a head
  tenure is bounded by ``max_shuffle_rounds`` passes (starvation bound);
* queue membership is re-verified after every pass in debug mode.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional

from ..sim.cache import Cell
from ..sim.ops import CAS, Delay, Load, Park, Store, Unpark, WaitValue, Xchg
from ..sim.task import Task
from .base import (
    HOOK_CMP_NODE,
    HOOK_SCHEDULE_WAITER,
    HOOK_SKIP_SHUFFLE,
    Lock,
    LockError,
)

__all__ = ["ShflNode", "ShufflePolicy", "NumaPolicy", "ShflLock"]

_FREE = 0
_LOCKED = 1

# node.status values.  A waiter sleeps on its own status line; the
# promoter writes S_HEAD, and the shuffler role travels down the queue
# through S_SHUFFLER (one active shuffler at a time).
S_WAITING = 0
S_SHUFFLER = 1
S_HEAD = 2

#: Cost (ns) of a compiled-in policy callback (a direct C call).
_COMPILED_POLICY_NS = 3
#: Poll interval for blocking-mode waiters before they park.
_BLOCKING_POLL_NS = 400


class ShflNode:
    """Queue node, one per in-flight acquisition.

    ``next`` and ``status`` are shared cache lines; the metadata fields
    (cpu, socket, priority, enqueue time) live on the same line as
    ``next`` from the coherence model's point of view — the shuffler's
    load of ``next`` pays for reading them.
    """

    __slots__ = (
        "task",
        "cpu",
        "socket",
        "priority",
        "enqueue_time",
        "next",
        "status",
        "parked",
        "meta",
    )

    def __init__(self, engine, task: Task) -> None:
        self.task = task
        self.cpu = task.cpu_id
        self.socket = task.numa_node
        self.priority = task.priority
        self.enqueue_time = engine.now
        self.next: Cell = engine.cell(None, name=f"shfl.next.{task.tid}")
        self.status: Cell = engine.cell(S_WAITING, name=f"shfl.status.{task.tid}")
        self.parked: Cell = engine.cell(0, name=f"shfl.parked.{task.tid}")
        #: Scratch visible to policies (e.g. critical-section estimates).
        self.meta: Dict[str, int] = {}

    def __repr__(self) -> str:
        return f"ShflNode({self.task.name}, socket={self.socket})"


class ShufflePolicy:
    """A compiled-in (kernel-built) shuffling policy.

    Subclass and override the three decisions.  Concord-injected BPF
    programs replace these at run time without recompilation; this class
    is the "kernel developers decided at build time" path.
    """

    #: Simulated cost of one policy callback.
    cost_ns = _COMPILED_POLICY_NS

    def cmp_node(self, lock: "ShflLock", shuffler: ShflNode, curr: ShflNode) -> bool:
        return False

    def skip_shuffle(self, lock: "ShflLock", shuffler: ShflNode) -> bool:
        return False

    def schedule_waiter(self, lock: "ShflLock", curr: ShflNode) -> bool:
        """Return True if the waiter may park (blocking mode only)."""
        return True


class NumaPolicy(ShufflePolicy):
    """The stock NUMA-awareness policy: group waiters from the shuffler's socket."""

    def cmp_node(self, lock: "ShflLock", shuffler: ShflNode, curr: ShflNode) -> bool:
        return curr.socket == shuffler.socket


class ShflLock(Lock):
    """Queue spinlock with policy-driven shuffling.

    Args:
        policy: compiled-in :class:`ShufflePolicy` (None = plain FIFO,
            which makes ShflLock behave like an MCS/qspinlock hybrid).
        blocking: if True, non-head waiters park after a spin budget
            (mutex/rwsem-style); if False everyone spins (spinlock).
        max_shuffle_window: nodes examined per shuffling pass.
        max_shuffle_rounds: shuffling passes per head tenure — the
            static starvation bound from §4.2.
        spin_budget_ns: blocking mode only — how long a waiter spins
            before parking (the "ad-hoc spin time" C3 lets users tune).
    """

    def __init__(
        self,
        engine,
        name: str = "",
        policy: Optional[ShufflePolicy] = None,
        blocking: bool = False,
        max_shuffle_window: int = 16,
        max_shuffle_rounds: int = 32,
        spin_budget_ns: int = 4000,
        debug_checks: bool = False,
    ) -> None:
        super().__init__(engine, name)
        self.policy = policy
        self.blocking = blocking
        self.max_shuffle_window = max_shuffle_window
        self.max_shuffle_rounds = max_shuffle_rounds
        self.spin_budget_ns = spin_budget_ns
        self.debug_checks = debug_checks
        self.glock = engine.cell(_FREE, name=f"{self.name}.glock")
        self.tail = engine.cell(None, name=f"{self.name}.tail")
        self._nodes: Dict[int, ShflNode] = {}
        self.shuffle_moves = 0
        self.shuffle_passes = 0
        # True while some waiter holds the shuffler role.  Guarding the
        # (cheap) head-side re-seed with a host-level flag is safe: the
        # check and the claim happen in one event step, so two grants
        # can never race.
        self._shuffler_active = False

    # ------------------------------------------------------------------
    # Policy decisions (hook -> compiled policy -> default)
    # ------------------------------------------------------------------
    def _decide_cmp(self, task: Task, shuffler: ShflNode, curr: ShflNode) -> Iterator:
        hooks = self.hooks
        if hooks is not None and HOOK_CMP_NODE in hooks:
            value = yield from self._fire(
                task,
                HOOK_CMP_NODE,
                {"shuffler_node": shuffler, "curr_node": curr},
                default=False,
            )
            return bool(value)
        if self.policy is not None:
            yield Delay(self.policy.cost_ns)
            return self.policy.cmp_node(self, shuffler, curr)
        return False

    def _decide_skip(self, task: Task, shuffler: ShflNode) -> Iterator:
        hooks = self.hooks
        if hooks is not None and HOOK_SKIP_SHUFFLE in hooks:
            value = yield from self._fire(
                task, HOOK_SKIP_SHUFFLE, {"shuffler_node": shuffler}, default=False
            )
            return bool(value)
        if self.policy is not None:
            yield Delay(self.policy.cost_ns)
            return self.policy.skip_shuffle(self, shuffler)
        # No policy at all: nothing to shuffle by, skip entirely.
        return self.policy is None and (self.hooks is None or HOOK_CMP_NODE not in self.hooks)

    def _decide_park(self, task: Task, curr: ShflNode) -> Iterator:
        hooks = self.hooks
        if hooks is not None and HOOK_SCHEDULE_WAITER in hooks:
            value = yield from self._fire(
                task, HOOK_SCHEDULE_WAITER, {"curr_node": curr}, default=True
            )
            return bool(value)
        if self.policy is not None:
            yield Delay(self.policy.cost_ns)
            return self.policy.schedule_waiter(self, curr)
        return True

    # ------------------------------------------------------------------
    # Acquire / release
    # ------------------------------------------------------------------
    def acquire(self, task: Task) -> Iterator:
        # Fast path only when nobody is queued (qspinlock discipline):
        # with waiters present, arrivals must not steal the word — the
        # event-driven head spin would otherwise starve behind releasers
        # whose re-acquire probe hits their own L1.
        queued = yield Load(self.tail)
        if queued is None:
            value = yield Load(self.glock)
            if value == _FREE:
                ok, _old = yield CAS(self.glock, _FREE, _LOCKED)
                if ok:
                    self._nodes[task.tid] = None  # uncontended: no node
                    self._mark_acquired(task, contended=False)
                    return

        node = ShflNode(self.engine, task)
        prev: Optional[ShflNode] = yield Xchg(self.tail, node)
        if prev is not None:
            yield Store(prev.next, node)
            yield from self._wait_for_head(task, node)
        # else: queue was empty, we are head immediately.

        # Head phase.  Shuffling happens among the *waiters* (the
        # shuffler role travels down the queue), so the head only seeds
        # the role once and then spins event-driven on the lock word —
        # handoff latency stays as tight as a plain queue lock.
        yield from self._grant_shuffler_role(task, node)
        while True:
            value = yield Load(self.glock)
            if value == _FREE:
                ok, _old = yield CAS(self.glock, _FREE, _LOCKED)
                if ok:
                    break
                continue
            yield WaitValue(self.glock, lambda v: v == _FREE)

        # Promote the successor to head before entering the CS.
        yield from self._promote_successor(node)
        self._nodes[task.tid] = node
        self._mark_acquired(task, contended=True)

    def _shuffling_enabled(self) -> bool:
        if self.policy is not None:
            return True
        return self.hooks is not None and HOOK_CMP_NODE in self.hooks

    def _grant_shuffler_role(self, task: Task, node: ShflNode) -> Iterator:
        """Re-seed the shuffler role on our successor if it died.

        Runs off the critical path (the head is waiting anyway) and only
        when no shuffler is live, so its cost amortizes to nearly zero.
        """
        if self.blocking or not self._shuffling_enabled() or self._shuffler_active:
            return
        self._shuffler_active = True
        succ = yield Load(node.next)
        if succ is None:
            self._shuffler_active = False
            return
        ok, _old = yield CAS(succ.status, S_WAITING, S_SHUFFLER)
        if not ok:
            self._shuffler_active = False

    def _wait_for_head(self, task: Task, node: ShflNode) -> Iterator:
        """Non-head waiter: spin (and optionally park) until promoted.

        In spinning mode the waiter may receive the *shuffler role*
        (status S_SHUFFLER): it then reorders the queue segment behind
        itself — entirely off the critical path, this is the paper's
        "phase for reordering the waiting queue" — before going back to
        waiting for its own promotion.
        """
        if not self.blocking:
            status = yield WaitValue(node.status, lambda v: v != S_WAITING)
            while status != S_HEAD:
                status = yield from self._run_shuffler(task, node)
            return
        spun = 0
        while True:
            status = yield Load(node.status)
            if status == S_HEAD:
                return
            if spun >= self.spin_budget_ns:
                may_park = yield from self._decide_park(task, node)
                if may_park:
                    # Publish the parked flag, then re-check to dodge the
                    # lost-wakeup window (promoter checks parked after
                    # setting status).
                    yield Store(node.parked, 1)
                    status = yield Load(node.status)
                    if status == S_HEAD:
                        yield Store(node.parked, 0)
                        return
                    yield Park()
                    yield Store(node.parked, 0)
                    spun = 0
                    continue
                spun = 0  # policy said keep spinning: reset the budget
            yield Delay(_BLOCKING_POLL_NS)
            spun += _BLOCKING_POLL_NS

    def _run_shuffler(self, task: Task, node: ShflNode) -> Iterator:
        """Act as the queue's shuffler until done, then wait for S_HEAD.

        On exit the role either travels to a deeper node — the last node
        of the grouped batch when one formed, otherwise the deepest node
        visited (so the role sinks toward queue positions that have time
        to work before being promoted) — or dies, in which case the next
        queue head re-seeds it.  Returns the last observed status.
        """
        rounds = 0
        stable = 0
        anchor = node
        deepest = node
        while True:
            status = yield Load(node.status)
            if status == S_HEAD:
                # Promoted mid-role: hand the role onward before entering
                # the head phase so it survives and keeps sinking to queue
                # positions with enough slack to complete full passes.
                yield from self._pass_role(node, anchor, deepest)
                return status
            skip = yield from self._decide_skip(task, node)
            if skip or rounds >= self.max_shuffle_rounds or stable >= 2:
                break
            moves, anchor, deepest = yield from self._shuffle_pass(task, node)
            rounds += 1
            stable = stable + 1 if moves == 0 else 0
        # Drop our own shuffler mark *before* passing the role: otherwise
        # a promoter that finds S_SHUFFLER on us would conclude it
        # squashed a live role and clear the active flag while the role
        # lives on in our successor — seeding a second concurrent
        # shuffler (queue corruption).
        yield CAS(node.status, S_SHUFFLER, S_WAITING)
        yield from self._pass_role(node, anchor, deepest)
        status = yield WaitValue(node.status, lambda v: v != S_WAITING)
        return status

    def _pass_role(self, node: ShflNode, anchor: ShflNode, deepest: ShflNode) -> Iterator:
        """Hand the shuffler role to the deepest node this pass examined
        (it has the most queue time left to work); kill the role if
        nobody can take it.

        A shuffler that got promoted before doing any work still pushes
        the role one step down (its successor) — without this the role
        oscillates at the front of the queue, forever one promotion away
        from extinction, and no reordering ever accumulates.
        """
        if anchor is not node:
            # A batch formed: its last node continues growing it (the
            # original algorithm's hand-over rule).
            target = anchor
        else:
            # No grouping progress: push the role several links beyond
            # the deepest node examined.  Anything shallower leaves the
            # role chasing the promotion wave one step ahead, perpetually
            # promoted before it can complete a single pass.
            cursor = deepest
            for _ in range(4):
                nxt = yield Load(cursor.next)
                if nxt is None:
                    break
                cursor = nxt
            target = cursor
        if target is not node:
            ok, _old = yield CAS(target.status, S_WAITING, S_SHUFFLER)
            self._shuffler_active = bool(ok)
        else:
            self._shuffler_active = False

    def _promote_successor(self, node: ShflNode) -> Iterator:
        succ = yield Load(node.next)
        if succ is None:
            ok, _old = yield CAS(self.tail, node, None)
            if ok:
                return
            succ = yield WaitValue(node.next, lambda v: v is not None)
        old = yield Xchg(succ.status, S_HEAD)
        if old == S_SHUFFLER:
            # We squashed a granted-but-unconsumed shuffler role; mark it
            # dead so the next head re-seeds it.  The successor always
            # exits its shuffling loop before entering its head phase, so
            # two shufflers never mutate the queue concurrently.
            self._shuffler_active = False
        if self.blocking:
            parked = yield Load(succ.parked)
            if parked:
                yield Unpark(succ.task)

    def release(self, task: Task) -> Iterator:
        self._nodes.pop(task.tid, None)
        self._mark_released(task)
        yield Store(self.glock, _FREE)

    def try_acquire(self, task: Task) -> Iterator:
        ok, _old = yield CAS(self.glock, _FREE, _LOCKED)
        if ok:
            self._nodes[task.tid] = None
            self._mark_acquired(task)
        return ok

    # ------------------------------------------------------------------
    # Shuffling
    # ------------------------------------------------------------------
    def _shuffle_pass(self, task: Task, head: ShflNode) -> Iterator:
        """One bounded shuffling pass: group cmp_node-approved waiters
        directly behind the shuffler.  Returns (moved, anchor, deepest).

        Never touches the queue's last node (its ``next`` may be written
        concurrently by an appender), and re-verifies linkage before
        every splice, which makes the pass safe against concurrent
        appends — the only other queue mutator (the shuffler role is
        exclusive, so no two passes run concurrently).  The pass aborts
        at the next step boundary once we are promoted to head; splices
        are never left half-done.
        """
        self.shuffle_passes += 1
        moves_before = self.shuffle_moves
        anchor = head
        prev = head
        deepest = head
        curr = yield Load(prev.next)
        visited = 0
        while curr is not None and visited < self.max_shuffle_window:
            if head.status.peek() == S_HEAD:
                break  # we got promoted: back to the acquisition path
            visited += 1
            nxt = yield Load(curr.next)
            if nxt is None:
                break  # curr is (or was just) the tail: hands off
            deepest = curr
            decision = yield from self._decide_cmp(task, head, curr)
            if decision:
                if prev is anchor:
                    # Already in the grouped prefix: just extend it.
                    anchor = curr
                    prev = curr
                    curr = nxt
                else:
                    # Splice curr out of its position...
                    check = yield Load(prev.next)
                    if check is not curr:
                        break  # linkage changed under us: abort the pass
                    yield Store(prev.next, nxt)
                    # ...and insert it right after the anchor.
                    after = yield Load(anchor.next)
                    yield Store(curr.next, after)
                    yield Store(anchor.next, curr)
                    anchor = curr
                    curr = nxt
                    self.shuffle_moves += 1
            else:
                prev = curr
                curr = nxt
        if self.debug_checks:
            self._verify_queue(head)
        return self.shuffle_moves - moves_before, anchor, deepest

    def _verify_queue(self, head: ShflNode) -> None:
        """Debug-mode walk: the queue behind ``head`` must be acyclic.

        Note: the tail is deliberately *not* required to be reachable —
        an in-flight append (tail exchanged, predecessor link not yet
        stored) legally leaves the new tail unlinked for a moment.
        """
        seen = set()
        node = head
        while node is not None:
            if id(node) in seen:
                raise LockError(f"{self.name}: shuffle created a cycle at {node}")
            seen.add(id(node))
            node = node.next.peek()

    # ------------------------------------------------------------------
    @staticmethod
    def walk_queue_from(node: ShflNode) -> List[ShflNode]:
        """Zero-cost debug walk of the queue starting at ``node``."""
        out: List[ShflNode] = []
        seen = set()
        cursor: Optional[ShflNode] = node
        while cursor is not None and id(cursor) not in seen:
            seen.add(id(cursor))
            out.append(cursor)
            cursor = cursor.next.peek()
        return out
