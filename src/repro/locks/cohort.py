"""Lock cohorting (Dice, Marathe & Shavit, PPoPP '12).

The original general recipe for NUMA-aware locks: a global lock plus one
local lock per socket.  A thread acquires its socket's local lock, and
the first thread of a *cohort* also acquires the global lock; on
release, the holder passes the global lock to a same-socket waiter
(staying within the cohort) until a batch budget expires, bounding
unfairness.

This is the "hierarchical locks use batching" design from the paper's
§2.2, with its known drawback — memory footprint and poor low-core
behaviour — that CNA and ShflLock were designed to fix.
"""

from __future__ import annotations

from typing import Dict, Iterator

from ..sim.ops import Load, Store
from ..sim.task import Task
from .base import Lock
from .ticket import TicketLock

__all__ = ["CohortLock"]


class CohortLock(Lock):
    """Global ticket lock + per-socket ticket locks with batch handoff.

    Args:
        batch: maximum consecutive acquisitions one socket may take
            before the global lock must be released (fairness bound).
    """

    def __init__(self, engine, name: str = "", batch: int = 64) -> None:
        super().__init__(engine, name)
        self.batch = batch
        self.global_lock = TicketLock(engine, name=f"{self.name}.global")
        self.local_locks = [
            TicketLock(engine, name=f"{self.name}.local[{s}]")
            for s in range(engine.topology.sockets)
        ]
        #: Per-socket flag: does this socket's cohort currently own the
        #: global lock?  Written only by that socket's local-lock holder.
        self.cohort_owns = [
            engine.cell(0, name=f"{self.name}.owns[{s}]")
            for s in range(engine.topology.sockets)
        ]
        self._batch_used: Dict[int, int] = {s: 0 for s in range(engine.topology.sockets)}

    def acquire(self, task: Task) -> Iterator:
        socket = task.numa_node
        yield from self.local_locks[socket].acquire(task)
        owns = yield Load(self.cohort_owns[socket])
        if not owns:
            yield from self.global_lock.acquire(task)
            yield Store(self.cohort_owns[socket], 1)
            self._batch_used[socket] = 0
        self._mark_acquired(task, contended=True)

    def release(self, task: Task) -> Iterator:
        socket = task.numa_node
        self._mark_released(task)
        self._batch_used[socket] += 1
        local = self.local_locks[socket]
        # Pass within the cohort only if someone is waiting locally and
        # the batch budget allows it.
        has_local_waiter = local.next_ticket.peek() > local.owner_ticket.peek() + 1
        if has_local_waiter and self._batch_used[socket] < self.batch:
            yield from local.release(task)
            return
        # Batch over (or nobody local): give up the global lock first.
        yield Store(self.cohort_owns[socket], 0)
        # The global lock is legally released by the cohort even though a
        # different task acquired it; TicketLock tracks owner by task for
        # its invariant, so transfer ownership bookkeeping first.
        yield from self._release_global(task)
        yield from local.release(task)

    def _release_global(self, task: Task) -> Iterator:
        glock = self.global_lock
        holder = glock.owner
        if holder is not task and holder is not None:
            # Cohort handoff: the global lock was acquired by an earlier
            # cohort member.  Adopt the ticket before releasing.
            glock._my_ticket[task.tid] = glock._my_ticket.pop(holder.tid)
            glock._owner = task
            try:
                holder.held_locks.remove(glock)
            except ValueError:
                pass
            task.held_locks.append(glock)
        yield from glock.release(task)
