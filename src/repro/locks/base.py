"""Lock protocol, hook points, and shared bookkeeping.

Every lock algorithm in :mod:`repro.locks` implements the same
generator-based protocol::

    yield from lock.acquire(task)
    ... critical section ...
    yield from lock.release(task)

Readers-writer locks add ``read_acquire``/``read_release`` (and alias
``acquire`` to the write side, like the kernel's ``down``/``down_read``
split).

Two cross-cutting concerns live here:

* **Hook points** (:class:`HookSet`) — the seven Concord APIs from
  Table 1 of the paper.  A lock fires a hook only when Concord has
  attached a program to it; firing charges the simulated cost of the
  trampoline plus the program's own execution cost, which is how the
  framework's overhead (Figure 2c) becomes measurable.
* **Invariant enforcement** — every lock tracks its owner(s) at the
  Python level (zero simulated cost) and raises immediately on a
  mutual-exclusion violation.  The property-based tests lean on this.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterator, Optional, Set, Tuple

from ..sim.engine import Engine
from ..sim.errors import SimError
from ..sim.ops import Delay
from ..sim.task import Task

__all__ = [
    "LockError",
    "HOOK_CMP_NODE",
    "HOOK_SKIP_SHUFFLE",
    "HOOK_SCHEDULE_WAITER",
    "HOOK_LOCK_ACQUIRE",
    "HOOK_LOCK_CONTENDED",
    "HOOK_LOCK_ACQUIRED",
    "HOOK_LOCK_RELEASE",
    "ALL_HOOKS",
    "DECISION_HOOKS",
    "PROFILING_HOOKS",
    "HookSet",
    "Lock",
    "RWLock",
]


class LockError(SimError):
    """A lock invariant was violated (double release, two owners, ...)."""


# Hook point names — Table 1 of the paper, verbatim.
HOOK_CMP_NODE = "cmp_node"
HOOK_SKIP_SHUFFLE = "skip_shuffle"
HOOK_SCHEDULE_WAITER = "schedule_waiter"
HOOK_LOCK_ACQUIRE = "lock_acquire"
HOOK_LOCK_CONTENDED = "lock_contended"
HOOK_LOCK_ACQUIRED = "lock_acquired"
HOOK_LOCK_RELEASE = "lock_release"

#: Hooks that return a decision consumed by the lock algorithm.
DECISION_HOOKS = (HOOK_CMP_NODE, HOOK_SKIP_SHUFFLE, HOOK_SCHEDULE_WAITER)
#: Hooks that only observe (profiling); they never change lock behaviour.
PROFILING_HOOKS = (
    HOOK_LOCK_ACQUIRE,
    HOOK_LOCK_CONTENDED,
    HOOK_LOCK_ACQUIRED,
    HOOK_LOCK_RELEASE,
)
ALL_HOOKS = DECISION_HOOKS + PROFILING_HOOKS

#: A hook implementation: called with an environment dict, returns
#: ``(value, cost_ns)`` where cost_ns is the simulated execution cost of
#: the program (the BPF VM computes it from the instruction count).
HookFn = Callable[[Dict[str, Any]], Tuple[Any, int]]


class HookSet:
    """The programs Concord attached to one lock instance.

    ``dispatch_ns`` models the livepatch/ftrace trampoline plus the
    Concord dispatch check — it is paid on *every* invocation of a
    patched hook point even when the program itself is empty, which is
    exactly the worst-case overhead the paper measures in Figure 2(c).
    """

    __slots__ = ("programs", "dispatch_ns")

    def __init__(self, dispatch_ns: int = 35) -> None:
        self.programs: Dict[str, HookFn] = {}
        self.dispatch_ns = dispatch_ns

    def attach(self, hook: str, fn: HookFn) -> None:
        if hook not in ALL_HOOKS:
            raise LockError(f"unknown hook point {hook!r}")
        self.programs[hook] = fn

    def detach(self, hook: str) -> None:
        self.programs.pop(hook, None)

    def __contains__(self, hook: str) -> bool:
        return hook in self.programs

    def __len__(self) -> int:
        return len(self.programs)


class Lock:
    """Base class for exclusive locks."""

    kind = "spin"
    is_rw = False

    def __init__(self, engine: Engine, name: str = "") -> None:
        self.engine = engine
        self.name = name or f"{type(self).__name__}@{id(self):x}"
        #: Set by the Concord layer (via livepatch); None on stock locks.
        self.hooks: Optional[HookSet] = None
        # Python-level invariant tracking (no simulated cost).
        self._owner: Optional[Task] = None
        self.acquisitions = 0
        self.contended_acquisitions = 0
        #: Whether the most recent acquisition had to wait (consumed by
        #: the patched call site to fire the lock_contended hook).
        self.last_acquire_contended = False

    # -- protocol ------------------------------------------------------
    def acquire(self, task: Task) -> Iterator:
        raise NotImplementedError

    def release(self, task: Task) -> Iterator:
        raise NotImplementedError

    def try_acquire(self, task: Task) -> Iterator:
        """Optional non-blocking acquire; yields True/False."""
        raise NotImplementedError(f"{type(self).__name__} has no trylock")

    # -- invariant helpers (called by implementations) ------------------
    def _mark_acquired(self, task: Task, contended: bool = False) -> None:
        if self._owner is not None:
            raise LockError(
                f"{self.name}: {task.name} acquired while held by {self._owner.name}"
            )
        self._owner = task
        self.acquisitions += 1
        self.last_acquire_contended = contended
        if contended:
            self.contended_acquisitions += 1
        task.held_locks.append(self)

    def _mark_released(self, task: Task) -> None:
        if self._owner is not task:
            holder = self._owner.name if self._owner else "nobody"
            raise LockError(
                f"{self.name}: {task.name} released a lock held by {holder}"
            )
        self._owner = None
        try:
            task.held_locks.remove(self)
        except ValueError:
            pass

    @property
    def owner(self) -> Optional[Task]:
        return self._owner

    @property
    def locked(self) -> bool:
        return self._owner is not None

    # -- hook dispatch ---------------------------------------------------
    def _fire(self, task: Task, hook: str, env: Dict[str, Any], default: Any = None):
        """Invoke a hook point if a program is attached.

        Generator: charges the trampoline + program cost as simulated
        time on the calling task, then yields the program's value (or
        ``default`` when nothing is attached).
        """
        hooks = self.hooks
        if hooks is None:
            return default
        fn = hooks.programs.get(hook)
        if fn is None:
            if hooks.dispatch_ns:
                # A patched call site costs its trampoline even when the
                # specific hook has no program (patched-function preamble).
                yield Delay(hooks.dispatch_ns)
            return default
        env.setdefault("task", task)
        env.setdefault("lock", self)
        value, cost_ns = fn(env)
        yield Delay(hooks.dispatch_ns + cost_ns)
        return value

    def _hot(self, hook: str) -> bool:
        """True when firing this hook would do any work at all."""
        return self.hooks is not None

    def __repr__(self) -> str:
        state = f"held_by={self._owner.name}" if self._owner else "free"
        return f"{type(self).__name__}({self.name}, {state})"


class RWLock(Lock):
    """Base class for readers-writer locks.

    ``acquire``/``release`` map to the write side so an RW lock can be
    dropped anywhere an exclusive lock is expected.
    """

    kind = "rw"
    is_rw = True

    def __init__(self, engine: Engine, name: str = "") -> None:
        super().__init__(engine, name)
        self._readers: Set[Task] = set()

    # -- protocol ------------------------------------------------------
    def read_acquire(self, task: Task) -> Iterator:
        raise NotImplementedError

    def read_release(self, task: Task) -> Iterator:
        raise NotImplementedError

    def write_acquire(self, task: Task) -> Iterator:
        raise NotImplementedError

    def write_release(self, task: Task) -> Iterator:
        raise NotImplementedError

    def acquire(self, task: Task) -> Iterator:
        return self.write_acquire(task)

    def release(self, task: Task) -> Iterator:
        return self.write_release(task)

    # -- invariants ----------------------------------------------------
    def _mark_read_acquired(self, task: Task) -> None:
        if self._owner is not None:
            raise LockError(
                f"{self.name}: reader {task.name} entered while writer "
                f"{self._owner.name} holds the lock"
            )
        self._readers.add(task)
        self.acquisitions += 1
        task.held_locks.append(self)

    def _mark_read_released(self, task: Task) -> None:
        if task not in self._readers:
            raise LockError(f"{self.name}: {task.name} read-released without holding")
        self._readers.discard(task)
        try:
            task.held_locks.remove(self)
        except ValueError:
            pass

    def _mark_acquired(self, task: Task, contended: bool = False) -> None:
        if self._readers:
            names = ", ".join(t.name for t in list(self._readers)[:4])
            raise LockError(
                f"{self.name}: writer {task.name} entered with readers inside ({names})"
            )
        super()._mark_acquired(task, contended)

    @property
    def reader_count(self) -> int:
        return len(self._readers)
