"""The replica group: quorum writes, fenced leadership, failover.

A :class:`ReplicaGroup` replicates one fleet member's policy journal
across N :class:`~repro.replication.site.ReplicaSite`\\ s with
available-copies semantics:

* **writes** go to every live site and *commit* when a quorum — a
  majority of the full membership — acks; fewer acks roll the tentative
  entry back off the sites that took it and raise :class:`NoQuorum`
  (which is a :class:`~repro.controlplane.journal.JournalError`, so the
  daemon and coordinator degrade exactly as they would for a failed
  journal shard).  Majority-of-membership (not of the momentarily live
  set) is what makes a committed ack durable: any single site death
  still leaves a live copy of every committed entry.
* **reads** are read-your-writes: they are served from the leader,
  whose log covers the commit index by the election invariant, so every
  committed append is visible to the next read through the group.
* **recovery** follows the available-copies rule: a recovered site acks
  writes immediately but serves reads only after the first committed
  write lands post-recovery — the commit ships a catch-up of the
  entries it missed, and only that proves its state current.

**Leadership and fencing.**  The group holds a leader lease with a
monotonic epoch.  Failover (leader site dies) elects the most
up-to-date electable site and bumps the epoch; a member restart or
reinstatement *also* fences the epoch forward (:meth:`fence`, wired
from :meth:`~repro.fleet.manager.FleetMember.restart`), so the lease
rides the same per-member epoch counter the fleet coordinator already
fences rollouts with.  A writer holding a stale lease gets
:class:`~repro.replication.site.StaleLeaderFenced` — the replication
twin of the coordinator's ``EpochFenced`` path — instead of silently
forking history; that is the no-split-brain guarantee.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, NamedTuple, Optional

from ..faults import (
    SITE_REPLICATION_CATCHUP,
    SITE_STORAGE_CORRUPT_SNAPSHOT,
    fault_point,
)
from ..netsim import Fabric, NetError
from ..storage.record import entries_digest, maybe_corrupt
from ..storage.snapshot import encode_snapshot, fold_entries
from .site import (
    ReplicaSite,
    ReplicationError,
    SiteCorrupt,
    SiteFault,
    SiteState,
    StaleLeaderFenced,
)

__all__ = ["LeaderLease", "NoQuorum", "ReplicaGroup"]


class NoQuorum(ReplicationError):
    """Fewer live sites acked than a commit requires; the write (or the
    election) is refused and nothing is committed."""


class LeaderLease(NamedTuple):
    """A point-in-time claim on the group's leadership.

    Writers that must prove continuity (a coordinator holding leadership
    across a wave) pass their lease to :meth:`ReplicaGroup.append`; a
    lease whose epoch the group has moved past is fenced, never retried.
    """

    site: str
    epoch: int


class ReplicaGroup:
    """N replica sites + a fenced leader lease for one fleet member.

    Args:
        name: the member (journal shard) this group replicates —
            site names are derived as ``<name>/site<i>``.
        nr_sites: replication factor (3 tolerates any single site death).
        on_failover: optional ``callback(group)`` fired after every
            election that moves leadership — the fleet layer's hook for
            surfacing failovers (journal events, metrics).
        fabric: optional :class:`~repro.netsim.Fabric` replication
            traffic traverses — appends and reads as ``<name>`` →
            ``<site>``, catch-up and repair as leader/donor → casualty.
            A partitioned link marks the site DOWN *partitioned* (log
            intact) rather than failed; ``None`` keeps the legacy
            direct-call behaviour.
    """

    def __init__(
        self,
        name: str,
        nr_sites: int = 3,
        on_failover: Optional[Callable[["ReplicaGroup"], object]] = None,
        fabric: Optional[Fabric] = None,
    ) -> None:
        if nr_sites < 1:
            raise ReplicationError("a replica group needs at least one site")
        self.name = name
        self.sites: List[ReplicaSite] = [
            ReplicaSite(f"{name}/site{index}") for index in range(nr_sites)
        ]
        self.on_failover = on_failover
        self.fabric = fabric
        self.leader: ReplicaSite = self.sites[0]
        #: Monotonic lease epoch: bumped by every election and fenced
        #: forward by member restarts (:meth:`fence`).
        self.lease_epoch = 1
        self.leader.lease_epoch_seen = self.lease_epoch
        #: Highest committed sequence number (quorum-durable by
        #: construction: every committed seq is on >= quorum logs).
        self.commit_index = 0
        self._next_seq = 1
        self.failovers = 0
        #: Copies rebuilt from quorum peers (:meth:`repair_site`).
        self.repairs = 0

    # ------------------------------------------------------------------
    @property
    def quorum(self) -> int:
        """Majority of the *full* membership."""
        return len(self.sites) // 2 + 1

    def live_sites(self) -> List[ReplicaSite]:
        return [s for s in self.sites if s.state is not SiteState.DOWN]

    def site(self, name: str) -> ReplicaSite:
        for site in self.sites:
            if site.name == name or site.name == f"{self.name}/{name}":
                return site
        raise ReplicationError(f"group {self.name}: no site named {name!r}")

    def lease(self) -> LeaderLease:
        """The current lease — capture it to later prove continuity."""
        return LeaderLease(site=self.leader.name, epoch=self.lease_epoch)

    # ------------------------------------------------------------------
    # Writes
    # ------------------------------------------------------------------
    def append(
        self, entry: Dict[str, Any], lease: Optional[LeaderLease] = None
    ) -> int:
        """Quorum-commit one entry; returns its sequence number.

        A site whose ack fails (injected ``replication.site.append`` /
        ``replication.site.catchup`` fault, or already DOWN) is marked
        failed and simply doesn't count toward the quorum; losing the
        leader mid-append fails over after the commit so the group stays
        serviceable.  Fewer than quorum acks raise :class:`NoQuorum`
        with the tentative entry rolled back off every acker — a failed
        append commits nothing anywhere.
        """
        if lease is not None and lease.epoch < self.lease_epoch:
            raise StaleLeaderFenced(
                f"group {self.name}: lease {lease.epoch} (held via "
                f"{lease.site}) was fenced; current epoch is {self.lease_epoch}"
            )
        if self.leader.state is not SiteState.UP:
            self.elect()
        seq = self._next_seq
        acked: List[ReplicaSite] = []
        for site in self.sites:
            if site.state is SiteState.DOWN:
                continue
            try:
                self._traverse(site, "append")
                self._catch_up(site)
                site.append(seq, entry, self.lease_epoch)
            except SiteFault as exc:
                self._fail_quietly(site, f"died under append: {exc}")
            except NetError as exc:
                self._fail_quietly(
                    site, f"partitioned under append: {exc}", partitioned=True
                )
            else:
                acked.append(site)
        if len(acked) < self.quorum:
            for site in acked:
                site.log.pop(seq, None)
            raise NoQuorum(
                f"group {self.name}: write got {len(acked)}/{self.quorum} "
                f"acks ({len(self.live_sites())} of {len(self.sites)} sites live)"
            )
        self._next_seq = seq + 1
        self.commit_index = seq
        for site in acked:
            site.mark_committed(seq)
            if not site.readable:
                # The available-copies gate lifts: a committed write
                # landed post-recovery (with catch-up), so this site's
                # replicated state is provably current.
                site.state = SiteState.UP
                site.readable = True
        if self.leader.state is not SiteState.UP:
            self.elect()  # the leader died taking this ack; fail over
        return seq

    def _traverse(self, site: ReplicaSite, op: str) -> None:
        """Cross the fabric to ``site`` (no-op without one).  Latency is
        ignored — replication time is not modelled here — but a
        partitioned or dropping link raises :class:`NetError` through."""
        if self.fabric is not None:
            self.fabric.deliver(self.name, site.name, op=op)

    def _catch_up(self, site: ReplicaSite) -> None:
        """Ship the committed state ``site`` missed (from the leader,
        whose copy covers the commit index by the election invariant):
        first the leader's snapshot base if ``site`` is behind it, then
        the framed log records — copied byte-for-byte, checksums and
        all, so a catch-up neither launders rot nor introduces it."""
        ship_base = (
            self.leader.base is not None and site.last_seq < self.leader.base_seq
        )
        missing = [
            seq
            for seq in sorted(self.leader.log)
            if seq <= self.commit_index
            and seq not in site.log
            and seq > (self.leader.base_seq if not ship_base else 0)
        ]
        if not ship_base and not missing:
            return
        if self.fabric is not None and site is not self.leader:
            # The shipped state travels leader → casualty, a different
            # edge than the group's own append path.
            self.fabric.deliver(self.leader.name, site.name, op="catch-up")
        fault_point(
            SITE_REPLICATION_CATCHUP,
            default_exc=SiteFault,
            replica=site.name,
            missing=len(missing),
        )
        if ship_base:
            site.install_snapshot(self.leader.base, self.leader.base_seq)
        for seq in missing:
            raw = self.leader.log[seq]
            site.log[seq] = dict(raw) if isinstance(raw, dict) else raw
        if missing:
            site.mark_committed(missing[-1])

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------
    def entries(self) -> List[Dict[str, Any]]:
        """Every committed entry, oldest first (read-your-writes).

        A read that trips over rot (:class:`SiteCorrupt` — a record
        failing its checksum) heals itself: the leader's copy is rebuilt
        from quorum peers in place and the read retried.  Only when no
        clean peer can vouch for the prefix does the corruption surface,
        as :class:`NoQuorum`.
        """
        for _ in range(3):
            if (
                self.leader.state is not SiteState.UP
                or not self.leader.readable
                or self.leader.last_seq < self.commit_index
            ):
                self.elect()
            try:
                self._traverse(self.leader, "read")
                return self.leader.read(self.commit_index)
            except NetError as exc:
                self._fail_quietly(
                    self.leader,
                    f"partitioned under read: {exc}",
                    partitioned=True,
                )
            except SiteCorrupt:
                try:
                    self.repair_site(self.leader.name, cause="read")
                except ReplicationError as exc:
                    raise NoQuorum(
                        f"group {self.name}: leader copy is corrupt and no "
                        f"clean peer can repair it: {exc}"
                    ) from None
            except SiteFault as exc:
                self._fail_quietly(self.leader, f"died under read: {exc}")
        raise NoQuorum(f"group {self.name}: no readable leader after failover")

    # ------------------------------------------------------------------
    # Failure, election, recovery
    # ------------------------------------------------------------------
    def fail_site(self, name: str, cause: str = "") -> ReplicaSite:
        """Kill one site (operator action, health-monitor verdict, or a
        converted injected fault).  Failing the leader fails over."""
        site = self.site(name)
        if site.state is SiteState.DOWN:
            return site
        site.fail(cause)
        if site is self.leader:
            try:
                self.elect()
            except NoQuorum:
                pass  # no electable site; the next append/read raises
        return site

    def _fail_quietly(
        self, site: ReplicaSite, cause: str, partitioned: bool = False
    ) -> None:
        site.fail(cause, partitioned=partitioned)

    def recover_site(self, name: str) -> ReplicaSite:
        """Bring a DOWN site back RECOVERING: it acks writes again but
        serves no reads until a post-recovery write commits."""
        site = self.site(name)
        site.recover()
        return site

    def repair_site(self, name: str, cause: str = "") -> ReplicaSite:
        """Rebuild one site's committed prefix from quorum peers.

        Anti-entropy repair: every live peer whose copy covers the
        commit index *and* fully verifies (checksums + snapshot base)
        digests its committed prefix; the majority content wins (ties
        break toward the leader, then by site name), and the casualty's
        base + framed records are copied byte-for-byte from a site
        holding that content.  Residue past the commit index is
        discarded with the rot — only committed state has quorum
        backing.  With no clean donor, raises :class:`NoQuorum` and the
        casualty is left untouched (evidence, not a guess).
        """
        site = self.site(name)
        tally: Dict[int, List[ReplicaSite]] = {}
        for peer in self.sites:
            if peer is site or peer.state is SiteState.DOWN:
                continue
            if peer.last_seq < self.commit_index:
                continue  # lagging: cannot vouch for the whole prefix
            try:
                # Fold before digesting so a compacted donor and one
                # still holding the raw records it folded agree.
                digest = entries_digest(
                    fold_entries(peer.committed_entries(self.commit_index))
                )
            except ReplicationError:
                continue  # rotten itself; cannot donate
            tally.setdefault(digest, []).append(peer)
        if not tally:
            raise NoQuorum(
                f"group {self.name}: no clean peer to repair {site.name} from"
            )

        def weight(item):
            _, peers = item
            return (
                len(peers),
                any(p is self.leader for p in peers),
                min(p.name for p in peers),
            )

        donors = max(tally.items(), key=weight)[1]
        source = next(
            (p for p in donors if p is self.leader),
            sorted(donors, key=lambda p: p.name)[0],
        )
        if self.fabric is not None and source is not site:
            try:
                self.fabric.deliver(source.name, site.name, op="repair")
            except NetError as exc:
                raise NoQuorum(
                    f"group {self.name}: repair of {site.name} from "
                    f"{source.name} blocked by partition: {exc}"
                ) from exc
        site.base = source.base
        site.base_seq = source.base_seq
        site.log = {
            seq: (dict(raw) if isinstance(raw, dict) else raw)
            for seq, raw in source.log.items()
            if seq <= self.commit_index
        }
        site.commit_index = self.commit_index
        site.lease_epoch_seen = max(site.lease_epoch_seen, self.lease_epoch)
        # A freshly copied quorum prefix is proven current by
        # construction — the copy is the catch-up.
        site.state = SiteState.UP
        site.readable = True
        site.last_scrub = f"repaired from {source.name}" + (
            f" ({cause})" if cause else ""
        )
        self.repairs += 1
        return site

    def compact(self, lease: Optional[LeaderLease] = None) -> Dict[str, int]:
        """Fold the committed prefix into a checksummed snapshot and
        install it on every live site, truncating their folded records.

        Fenced like a write: a caller holding a stale lease must not
        compact (its view of the committed prefix may predate a
        failover).  A DOWN site keeps its raw log; the snapshot reaches
        it through catch-up when it recovers.  The
        ``storage.corrupt.snapshot`` fault site fires per *copy*, so an
        injected flip rots one site's base, not every replica of it.
        """
        if lease is not None and lease.epoch < self.lease_epoch:
            raise StaleLeaderFenced(
                f"group {self.name}: compaction under lease {lease.epoch} "
                f"refused; current epoch is {self.lease_epoch}"
            )
        committed = self.entries()
        folded = fold_entries(committed)
        blob = encode_snapshot(folded, self.commit_index)
        for site in self.sites:
            if site.state is SiteState.DOWN:
                continue
            site.install_snapshot(
                maybe_corrupt(
                    SITE_STORAGE_CORRUPT_SNAPSHOT,
                    blob,
                    salt=self.commit_index,
                    replica=site.name,
                ),
                self.commit_index,
            )
        return {
            "before": len(committed),
            "after": len(folded),
            "last_seq": self.commit_index,
        }

    def elect(self) -> ReplicaSite:
        """Elect the most up-to-date electable site and bump the lease.

        Electable: not DOWN, log covering the commit index — such a site
        missed no committed write, so promoting it loses no acked data
        (and the read gate does not apply to it: there is nothing stale
        to serve).  Uncommitted residue beyond the commit index — acks
        for writes that never reached quorum — is truncated; the callers
        of those writes saw the failure.
        """
        candidates = [
            s
            for s in self.sites
            if s.state is not SiteState.DOWN and s.last_seq >= self.commit_index
        ]
        if not candidates:
            raise NoQuorum(
                f"group {self.name}: no electable site covers commit "
                f"index {self.commit_index}"
            )
        new = sorted(
            candidates, key=lambda s: (not s.readable, -s.last_seq, s.name)
        )[0]
        for seq in [q for q in new.log if q > self.commit_index]:
            del new.log[seq]
        new.state = SiteState.UP
        new.readable = True
        moved = new is not self.leader
        self.leader = new
        self.lease_epoch += 1
        new.lease_epoch_seen = max(new.lease_epoch_seen, self.lease_epoch)
        if moved:
            self.failovers += 1
            if self.on_failover is not None:
                self.on_failover(self)
        return new

    def fence(self, epoch: int) -> int:
        """Fence the lease forward to at least ``epoch`` (and past every
        outstanding lease).  Wired from the member's restart/reinstate
        path so the lease epoch rides the per-member fencing epoch: any
        writer holding a pre-restart lease is rejected exactly like a
        coordinator holding a pre-restart rollout epoch."""
        self.lease_epoch = max(self.lease_epoch + 1, epoch)
        self.leader.lease_epoch_seen = max(
            self.leader.lease_epoch_seen, self.lease_epoch
        )
        return self.lease_epoch

    # ------------------------------------------------------------------
    def journal(self):
        """A :class:`~repro.replication.journal.ReplicatedJournal`
        fronting this group (imported lazily: journal depends on group)."""
        from .journal import ReplicatedJournal

        return ReplicatedJournal(self)

    def health(self) -> Dict[str, object]:
        """The snapshot a ping/status endpoint reports.

        Per site this includes replication ``lag`` — how many sequence
        numbers the copy trails the leader's high-water mark — and the
        last scrub verdict, so an operator sees a rotting or straggling
        copy before it matters.
        """
        head = self.leader.last_seq
        return {
            "leader": self.leader.name,
            "lease_epoch": self.lease_epoch,
            "commit_index": self.commit_index,
            "quorum": self.quorum,
            "failovers": self.failovers,
            "repairs": self.repairs,
            "sites": {
                s.name: {
                    "state": s.state.name,
                    "readable": s.readable,
                    "entries": len(s.log),
                    "last_seq": s.last_seq,
                    "lag": max(0, head - s.last_seq),
                    "scrub": s.last_scrub,
                    # A DOWN site splits two ways: partitioned —
                    # unreachable with its log intact, needing catch-up
                    # after heal — versus failed (process dead or
                    # storage rotten), needing recover + quorum repair.
                    "partitioned": s.down_partitioned,
                    "down_cause": s.down_cause,
                }
                for s in self.sites
            },
        }

    def describe(self) -> str:
        rows = [
            f"replica group {self.name}: leader {self.leader.name}, "
            f"lease epoch {self.lease_epoch}, commit {self.commit_index}, "
            f"quorum {self.quorum}/{len(self.sites)}, "
            f"repairs {self.repairs}"
        ]
        head = self.leader.last_seq
        for site in self.sites:
            marker = "*" if site is self.leader else " "
            lag = max(0, head - site.last_seq)
            tail = f" lag={lag}" if lag else ""
            rows.append(f"  {marker} {site.describe()}{tail}")
        return "\n".join(rows)

    def __repr__(self) -> str:
        return (
            f"ReplicaGroup({self.name!r}, {len(self.sites)} sites, "
            f"leader {self.leader.name}, commit {self.commit_index})"
        )
