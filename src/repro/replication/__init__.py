"""Replicated control plane: multi-site policy store with fenced failover.

Each fleet member's policy journal — the durable record its daemon and
the fleet coordinator recover from — was a single point of failure.
This package replicates it across N :class:`ReplicaSite`\\ s with
available-copies semantics (after RepCRec):

* **quorum writes** — an append commits when a majority of the full
  membership acks; a failed append commits nothing anywhere
  (:class:`NoQuorum`);
* **read-your-writes reads** — served by the leader, whose log covers
  the commit index by the election invariant;
* **gated recovery** — a site recovering after missing writes acks new
  writes immediately but serves reads only after the first committed
  write lands post-recovery (:class:`SiteUnreadable` until then);
* **fenced leadership** — the group's lease epoch is bumped by every
  failover and fenced forward by member restarts, so a deposed leader
  or stale coordinator gets :class:`StaleLeaderFenced` instead of
  forking history.

:class:`ReplicatedJournal` fronts a group with the ``PolicyJournal``
API so daemons and coordinators replicate without knowing it, and
:class:`SerializationLedger` adds the commit-time serialization-graph
check that keeps concurrent fleet rollouts over overlapping locks from
both committing (:class:`SerializationConflict` aborts exactly one).
"""

from .group import LeaderLease, NoQuorum, ReplicaGroup
from .journal import ReplicatedJournal
from .site import (
    ReplicaSite,
    ReplicationError,
    SiteCorrupt,
    SiteDown,
    SiteFault,
    SiteState,
    SiteUnreadable,
    StaleLeaderFenced,
)
from .txn import (
    RolloutTransaction,
    SerializationConflict,
    SerializationLedger,
    TxnStatus,
)

__all__ = [
    "LeaderLease",
    "NoQuorum",
    "ReplicaGroup",
    "ReplicaSite",
    "ReplicatedJournal",
    "ReplicationError",
    "RolloutTransaction",
    "SerializationConflict",
    "SerializationLedger",
    "SiteCorrupt",
    "SiteDown",
    "SiteFault",
    "SiteState",
    "SiteUnreadable",
    "StaleLeaderFenced",
    "TxnStatus",
]
