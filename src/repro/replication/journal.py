"""The replicated policy journal: same API, quorum durability.

:class:`ReplicatedJournal` fronts a :class:`~repro.replication.group.\
ReplicaGroup` with the :class:`~repro.controlplane.journal.PolicyJournal`
interface, so a member daemon (``Concordd(journal=...)``) and the fleet
coordinator journal through replication without knowing it: ``append``
becomes a quorum write, ``entries`` a leader read, and every replication
failure surfaces as the :class:`JournalError` subtree those callers
already tolerate.

The existing journal fault sites still fire — ``controlplane.journal.\
append`` before the write and ``controlplane.journal.fsync`` between the
quorum commit and the caller seeing success — so the fsync-gap crash
model (entry durable, caller told otherwise) holds for the replicated
store too, now meaning "committed on a quorum, caller told otherwise".
Replay must tolerate the same double-report either way.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from ..controlplane.journal import JournalError, PolicyJournal
from ..faults import SITE_JOURNAL_APPEND, SITE_JOURNAL_FSYNC, fault_point
from .group import LeaderLease, ReplicaGroup

__all__ = ["ReplicatedJournal"]


class ReplicatedJournal(PolicyJournal):
    """A :class:`PolicyJournal` whose backing store is a replica group.

    Args:
        group: the replica group holding the entries.
        lease: optional :class:`~repro.replication.group.LeaderLease` to
            present with every write.  A writer that must prove
            leadership continuity (the acceptance scenario's stale-leader
            check) captures a lease and is fenced the moment the group
            moves past it; the common case (daemon journaling through
            its own member's group) passes ``None`` and follows the
            current leader across failovers.
    """

    def __init__(
        self, group: ReplicaGroup, lease: Optional[LeaderLease] = None
    ) -> None:
        super().__init__(path=None)
        self.group = group
        self.lease = lease

    # ------------------------------------------------------------------
    def append(self, entry: Dict[str, Any]) -> None:
        if "kind" not in entry:
            raise JournalError("journal entries need a 'kind'")
        fault_point(
            SITE_JOURNAL_APPEND,
            default_exc=JournalError,
            kind=entry.get("kind"),
            policy=entry.get("policy") or entry.get("rollout"),
        )
        self.group.append(entry, lease=self.lease)
        fault_point(
            SITE_JOURNAL_FSYNC,
            default_exc=JournalError,
            kind=entry.get("kind"),
        )

    def entries(self) -> List[Dict[str, Any]]:
        return self.group.entries()

    def compact(self) -> Dict[str, int]:
        """Fold the committed prefix into a snapshot on every live site.
        Fenced by this journal's lease, like its writes: a holder the
        group has moved past must not rewrite history it can no longer
        see."""
        return self.group.compact(lease=self.lease)

    def close(self) -> None:  # nothing to close; sites are the store
        return None

    def __repr__(self) -> str:
        return (
            f"ReplicatedJournal({self.group.name!r}, "
            f"{self.group.commit_index} committed, "
            f"leader {self.group.leader.name})"
        )
