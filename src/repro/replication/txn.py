"""Commit-time serialization-graph check for concurrent fleet rollouts.

Two coordinators rolling out different policies over overlapping lock
sets are two transactions writing the same variables: letting both
commit would leave the fleet's policy state dependent on interleaving
(which daemon's patch landed last on which lock) — exactly the
conflicting-write anomaly snapshot isolation admits.  Following the
RepCRec-SSI model, the ledger checks serializability **at commit time**
by building the conflict graph over the committing transaction and
every transaction that committed inside its window:

* a concurrent write-write overlap is unserializable outright (first
  committer wins);
* read-write overlaps add anti-dependency edges (the reader must
  serialize before the writer it did not observe), and the physical
  commit order adds the opposing edges;
* a cycle through the committing transaction aborts it — cleanly, with
  a journaled ``txn-abort`` entry naming the conflict — and the other
  transaction's commit stands.

The ledger is deliberately storage-agnostic: give it a journal (ideally
a :class:`~repro.replication.journal.ReplicatedJournal`) and every
begin/commit/abort is persisted; give it none and it still serializes,
it just leaves the journaling to its caller (the coordinator journals a
``serialization-conflict`` fleet event either way).
"""

from __future__ import annotations

import enum
from typing import Dict, FrozenSet, Iterable, List, Optional, Set

from .site import ReplicationError

__all__ = [
    "RolloutTransaction",
    "SerializationConflict",
    "SerializationLedger",
    "TxnStatus",
]


class SerializationConflict(ReplicationError):
    """Committing this transaction would close a cycle in the
    serialization graph; it is aborted, the earlier committer stands."""


class TxnStatus(enum.Enum):
    OPEN = "open"
    COMMITTED = "committed"
    ABORTED = "aborted"

    def __str__(self) -> str:
        return self.name


class RolloutTransaction:
    """One rollout's footprint in the ledger."""

    def __init__(
        self,
        txn_id: str,
        reads: FrozenSet[str],
        writes: FrozenSet[str],
        begin_seq: int,
    ) -> None:
        self.txn_id = txn_id
        self.reads = reads
        self.writes = writes
        self.begin_seq = begin_seq
        self.commit_seq: Optional[int] = None
        self.status = TxnStatus.OPEN
        self.abort_cause: Optional[str] = None

    def __repr__(self) -> str:
        return (
            f"RolloutTransaction({self.txn_id!r}, {self.status}, "
            f"{len(self.writes)} writes)"
        )


class SerializationLedger:
    """The fleet-wide transaction registry rollouts commit through."""

    def __init__(self, journal=None) -> None:
        self.journal = journal
        self._seq = 0
        self.transactions: Dict[str, RolloutTransaction] = {}

    # ------------------------------------------------------------------
    def begin(
        self,
        txn_id: str,
        locks: Optional[Iterable[str]] = None,
        reads: Optional[Iterable[str]] = None,
        writes: Optional[Iterable[str]] = None,
    ) -> RolloutTransaction:
        """Open a transaction over a lock footprint.

        ``locks`` is shorthand for a rollout's read-modify-write set
        (it reads current placements/policies on those locks and writes
        new policy state to them); pass ``reads``/``writes`` separately
        for asymmetric footprints.
        """
        existing = self.transactions.get(txn_id)
        if existing is not None and existing.status is TxnStatus.OPEN:
            raise ReplicationError(f"transaction {txn_id!r} is already open")
        self._seq += 1
        txn = RolloutTransaction(
            txn_id,
            reads=frozenset(reads if reads is not None else locks or ()),
            writes=frozenset(writes if writes is not None else locks or ()),
            begin_seq=self._seq,
        )
        self.transactions[txn_id] = txn
        self._journal("txn-begin", txn)
        return txn

    def commit(self, txn: RolloutTransaction) -> RolloutTransaction:
        """Commit, or abort with :class:`SerializationConflict` if the
        commit would close a cycle in the serialization graph."""
        if txn.status is not TxnStatus.OPEN:
            raise ReplicationError(
                f"transaction {txn.txn_id!r} is {txn.status}, not open"
            )
        cycle = self._serialization_cycle(txn)
        if cycle:
            cause = (
                f"serialization graph cycle {' -> '.join(cycle)} "
                f"(concurrent rollouts over overlapping locks)"
            )
            txn.status = TxnStatus.ABORTED
            txn.abort_cause = cause
            self._journal("txn-abort", txn, cause=cause)
            raise SerializationConflict(f"{txn.txn_id}: {cause}")
        self._seq += 1
        txn.commit_seq = self._seq
        txn.status = TxnStatus.COMMITTED
        self._journal("txn-commit", txn)
        return txn

    def abort(self, txn: RolloutTransaction, cause: str = "") -> None:
        """Abort an open transaction (rollout halted for its own
        reasons); idempotent on already-finished transactions."""
        if txn.status is not TxnStatus.OPEN:
            return
        txn.status = TxnStatus.ABORTED
        txn.abort_cause = cause or "aborted"
        self._journal("txn-abort", txn, cause=txn.abort_cause)

    # ------------------------------------------------------------------
    def _serialization_cycle(self, txn: RolloutTransaction) -> List[str]:
        """Edges among ``txn`` and the transactions that committed
        inside its window; returns a cycle through ``txn`` (as a list of
        txn ids) or an empty list."""
        concurrent = [
            other
            for other in self.transactions.values()
            if other.status is TxnStatus.COMMITTED
            and other.commit_seq is not None
            and other.commit_seq > txn.begin_seq
        ]
        edges: Dict[str, Set[str]] = {txn.txn_id: set()}
        for other in concurrent:
            edges.setdefault(other.txn_id, set())
            if txn.writes & other.writes:
                # Concurrent ww: no serial order satisfies both writers.
                edges[txn.txn_id].add(other.txn_id)
                edges[other.txn_id].add(txn.txn_id)
                continue
            if txn.reads & other.writes:
                # rw anti-dependency: txn read versions other overwrote,
                # so txn must serialize first — against the physical
                # commit order, which already put other first.
                edges[txn.txn_id].add(other.txn_id)
                edges[other.txn_id].add(txn.txn_id)
            elif other.reads & txn.writes:
                edges[other.txn_id].add(txn.txn_id)
        # DFS from txn for a path back to txn.
        stack: List[List[str]] = [[txn.txn_id]]
        seen: Set[str] = set()
        while stack:
            path = stack.pop()
            for target in sorted(edges.get(path[-1], ())):
                if target == txn.txn_id and len(path) > 1:
                    return path + [target]
                if target not in seen:
                    seen.add(target)
                    stack.append(path + [target])
        return []

    # ------------------------------------------------------------------
    def committed(self) -> List[RolloutTransaction]:
        return [
            t for t in self.transactions.values() if t.status is TxnStatus.COMMITTED
        ]

    def _journal(self, event: str, txn: RolloutTransaction, **extra) -> None:
        if self.journal is None:
            return
        entry = {
            "kind": "replication",
            "event": event,
            "txn": txn.txn_id,
            "locks": sorted(txn.writes),
        }
        entry.update(extra)
        try:
            self.journal.append(entry)
        except Exception:
            # Best-effort, like every non-anchor fleet append: the
            # coordinator journals the conflict verdict independently.
            pass
