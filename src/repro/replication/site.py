"""One replica site: the durable shard a :class:`ReplicaGroup` writes to.

A site models the storage node behind one copy of a member's policy
journal.  Its life is a three-state machine —

``UP`` — serving reads and acking writes;
``DOWN`` — killed; it misses every write until recovered;
``RECOVERING`` — back up for *writes* but refusing *reads*.

The read refusal is the available-copies recovery rule (RepCRec's):
replicated state at a recovered site is stale until proven otherwise,
and the proof is the first **committed** write that lands post-recovery
— the catch-up shipped with that write brings the site's log level with
the group, so only then may it serve reads.  A site's log itself is
durable (a killed site loses availability, not disk), which is what
makes "no lost committed acks" possible: every committed entry lives on
a quorum of logs and survives any single site death.

Fault sites (``replication.site.*``) bracket each operation so chaos
plans can kill a site mid-append, mid-read, or mid-catch-up; the group
treats an injected :class:`SiteFault` as that site dying under the
operation.
"""

from __future__ import annotations

import enum
from typing import Any, Dict, List

from ..controlplane.journal import JournalError
from ..faults import (
    SITE_REPLICATION_APPEND,
    SITE_REPLICATION_READ,
    fault_point,
)

__all__ = [
    "ReplicaSite",
    "ReplicationError",
    "SiteDown",
    "SiteFault",
    "SiteState",
    "SiteUnreadable",
    "StaleLeaderFenced",
]


class ReplicationError(JournalError):
    """Base of the replication layer's typed failures.

    Subclassing :class:`~repro.controlplane.journal.JournalError` is the
    integration contract: everything that already tolerates a journal
    shard failing (the daemon's submit path, the coordinator's
    best-effort appends) tolerates a replica group losing quorum the
    same way, with no new except-clauses.
    """


class SiteFault(ReplicationError):
    """Injected at a ``replication.site.*`` fault point: the site died
    under the operation.  The group converts it into a site failure
    (mark DOWN, fail over if it was the leader) rather than letting it
    escape to the journal's caller."""


class SiteDown(ReplicationError):
    """The site is DOWN; it can neither ack writes nor serve reads."""


class SiteUnreadable(ReplicationError):
    """The site recovered after missing writes and no committed write
    has landed since — its replicated state may be stale, so reads are
    refused (the available-copies recovery rule)."""


class StaleLeaderFenced(ReplicationError):
    """A write carried a lease epoch older than one this site has
    already accepted: a deposed leader (or a coordinator fenced out by
    a member restart) is still trying to write.  The replication-layer
    twin of :class:`~repro.fleet.health.EpochFenced` — same monotonic
    epoch counter, same verdict: never retried, the writer must
    re-acquire the lease."""


class SiteState(enum.Enum):
    UP = "up"
    DOWN = "down"
    RECOVERING = "recovering"

    def __str__(self) -> str:
        return self.name


class ReplicaSite:
    """One durable copy of a member's replicated journal."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.state = SiteState.UP
        #: False from recovery until the first post-recovery committed
        #: write lands (True for a site that never failed).
        self.readable = True
        #: seq -> entry.  Durable: survives failure.
        self.log: Dict[int, Dict[str, Any]] = {}
        #: Highest seq this site knows to be committed.
        self.commit_index = 0
        #: Highest lease epoch accepted; older writers are fenced.
        self.lease_epoch_seen = 0

    # ------------------------------------------------------------------
    @property
    def last_seq(self) -> int:
        return max(self.log) if self.log else 0

    def append(self, seq: int, entry: Dict[str, Any], lease_epoch: int) -> None:
        """Tentatively store one entry (the ack half of a quorum write)."""
        if self.state is SiteState.DOWN:
            raise SiteDown(f"replica site {self.name} is down")
        if lease_epoch < self.lease_epoch_seen:
            raise StaleLeaderFenced(
                f"site {self.name}: write carries lease epoch {lease_epoch} "
                f"but epoch {self.lease_epoch_seen} was already accepted"
            )
        fault_point(
            SITE_REPLICATION_APPEND,
            default_exc=SiteFault,
            replica=self.name,
            seq=seq,
        )
        self.lease_epoch_seen = lease_epoch
        self.log[seq] = dict(entry)

    def mark_committed(self, seq: int) -> None:
        self.commit_index = max(self.commit_index, seq)

    def read(self, commit_index: int) -> List[Dict[str, Any]]:
        """Committed entries in sequence order, up to ``commit_index``.

        Refused while DOWN, and refused while RECOVERING-but-unreadable
        — the caller (group or a direct site read in tests/tools) must
        go to a site whose state is proven current.
        """
        if self.state is SiteState.DOWN:
            raise SiteDown(f"replica site {self.name} is down")
        if not self.readable:
            raise SiteUnreadable(
                f"replica site {self.name} recovered after missing writes; "
                f"reads refused until a post-recovery write commits"
            )
        fault_point(
            SITE_REPLICATION_READ,
            default_exc=SiteFault,
            replica=self.name,
        )
        return [dict(self.log[seq]) for seq in sorted(self.log) if seq <= commit_index]

    # ------------------------------------------------------------------
    def fail(self) -> None:
        """Kill the site: availability gone, log (disk) retained."""
        self.state = SiteState.DOWN
        self.readable = False

    def recover(self) -> None:
        """Bring a DOWN site back: writable immediately, readable only
        after the first post-recovery committed write catches it up."""
        if self.state is not SiteState.DOWN:
            return
        self.state = SiteState.RECOVERING
        self.readable = False

    def describe(self) -> str:
        gate = "readable" if self.readable else "read-gated"
        return (
            f"{self.name}: {self.state} ({gate}, {len(self.log)} entries, "
            f"commit {self.commit_index}, lease {self.lease_epoch_seen})"
        )

    def __repr__(self) -> str:
        return f"ReplicaSite({self.describe()})"
