"""One replica site: the durable shard a :class:`ReplicaGroup` writes to.

A site models the storage node behind one copy of a member's policy
journal.  Its life is a three-state machine —

``UP`` — serving reads and acking writes;
``DOWN`` — killed; it misses every write until recovered;
``RECOVERING`` — back up for *writes* but refusing *reads*.

The read refusal is the available-copies recovery rule (RepCRec's):
replicated state at a recovered site is stale until proven otherwise,
and the proof is the first **committed** write that lands post-recovery
— the catch-up shipped with that write brings the site's log level with
the group, so only then may it serve reads.  A site's log itself is
durable (a killed site loses availability, not disk), which is what
makes "no lost committed acks" possible: every committed entry lives on
a quorum of logs and survives any single site death.

Fault sites (``replication.site.*``) bracket each operation so chaos
plans can kill a site mid-append, mid-read, or mid-catch-up; the group
treats an injected :class:`SiteFault` as that site dying under the
operation.

**Integrity.**  A site's log holds *framed* records (the same v2
CRC32 + sequence envelope file journals use), and the
``storage.corrupt.line`` fault site can silently flip a byte of a
stored record at append time.  Reads decode and verify; a record that
fails its checksum raises :class:`SiteCorrupt` — deliberately *not* a
:class:`SiteFault`, because the right response to detected rot is not
"mark the site dead" but "rebuild this copy from quorum peers"
(:meth:`ReplicaGroup.repair_site`).  Raw dict values are tolerated as
legacy (v1) records with nothing to verify.
"""

from __future__ import annotations

import enum
from typing import Any, Dict, List, Optional

from ..controlplane.journal import JournalError
from ..faults import (
    SITE_REPLICATION_APPEND,
    SITE_REPLICATION_READ,
    SITE_STORAGE_CORRUPT_LINE,
    fault_point,
)
from ..storage.record import RecordCorruption, decode_record, encode_record, maybe_corrupt
from ..storage.snapshot import SnapshotCorruption, decode_snapshot

__all__ = [
    "ReplicaSite",
    "ReplicationError",
    "SiteCorrupt",
    "SiteDown",
    "SiteFault",
    "SiteState",
    "SiteUnreadable",
    "StaleLeaderFenced",
]


class ReplicationError(JournalError):
    """Base of the replication layer's typed failures.

    Subclassing :class:`~repro.controlplane.journal.JournalError` is the
    integration contract: everything that already tolerates a journal
    shard failing (the daemon's submit path, the coordinator's
    best-effort appends) tolerates a replica group losing quorum the
    same way, with no new except-clauses.
    """


class SiteFault(ReplicationError):
    """Injected at a ``replication.site.*`` fault point: the site died
    under the operation.  The group converts it into a site failure
    (mark DOWN, fail over if it was the leader) rather than letting it
    escape to the journal's caller."""


class SiteDown(ReplicationError):
    """The site is DOWN; it can neither ack writes nor serve reads."""


class SiteUnreadable(ReplicationError):
    """The site recovered after missing writes and no committed write
    has landed since — its replicated state may be stale, so reads are
    refused (the available-copies recovery rule)."""


class SiteCorrupt(ReplicationError):
    """A stored record (or the site's snapshot base) failed checksum or
    sequence validation: silent rot, detected at read or scrub time.
    Not a :class:`SiteFault` — the site is alive and the remedy is a
    quorum-peer rebuild of this one copy, not a failover away from it."""


class StaleLeaderFenced(ReplicationError):
    """A write carried a lease epoch older than one this site has
    already accepted: a deposed leader (or a coordinator fenced out by
    a member restart) is still trying to write.  The replication-layer
    twin of :class:`~repro.fleet.health.EpochFenced` — same monotonic
    epoch counter, same verdict: never retried, the writer must
    re-acquire the lease."""


class SiteState(enum.Enum):
    UP = "up"
    DOWN = "down"
    RECOVERING = "recovering"

    def __str__(self) -> str:
        return self.name


class ReplicaSite:
    """One durable copy of a member's replicated journal."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.state = SiteState.UP
        #: False from recovery until the first post-recovery committed
        #: write lands (True for a site that never failed).
        self.readable = True
        #: seq -> framed record line (v2 envelope; raw dicts tolerated
        #: as legacy v1 records).  Durable: survives failure.
        self.log: Dict[int, Any] = {}
        #: Compacted prefix: a checksummed snapshot blob folding every
        #: entry up to ``base_seq`` (None until the group compacts).
        self.base: Optional[str] = None
        self.base_seq = 0
        #: Verdict of the most recent scrub pass over this copy
        #: ("ok", "corrupt: ...", "repaired from ...", or None).
        self.last_scrub: Optional[str] = None
        #: Highest seq this site knows to be committed.
        self.commit_index = 0
        #: Highest lease epoch accepted; older writers are fenced.
        self.lease_epoch_seen = 0
        #: Why the site went DOWN ("" while UP): operator/debug text.
        self.down_cause = ""
        #: True when DOWN means *partitioned* — the site is unreachable
        #: but its log is intact and current up to the cut, as opposed
        #: to failed (process dead or storage rotten).  Repair planning
        #: reads this: a partitioned site needs catch-up after heal,
        #: not a quorum rebuild.
        self.down_partitioned = False

    # ------------------------------------------------------------------
    @property
    def last_seq(self) -> int:
        return max(self.base_seq, max(self.log) if self.log else 0)

    def append(self, seq: int, entry: Dict[str, Any], lease_epoch: int) -> None:
        """Tentatively store one entry (the ack half of a quorum write).

        The record is framed (CRC32 + seq) before it hits the log; the
        ``storage.corrupt.line`` fault site may flip one byte of the
        framed bytes on the way down, and the append still acks —
        silent rot, caught by the next read or scrub of this copy.
        """
        if self.state is SiteState.DOWN:
            raise SiteDown(f"replica site {self.name} is down")
        if lease_epoch < self.lease_epoch_seen:
            raise StaleLeaderFenced(
                f"site {self.name}: write carries lease epoch {lease_epoch} "
                f"but epoch {self.lease_epoch_seen} was already accepted"
            )
        fault_point(
            SITE_REPLICATION_APPEND,
            default_exc=SiteFault,
            replica=self.name,
            seq=seq,
        )
        self.lease_epoch_seen = lease_epoch
        self.log[seq] = maybe_corrupt(
            SITE_STORAGE_CORRUPT_LINE,
            encode_record(seq, entry),
            salt=seq,
            replica=self.name,
        )

    def entry(self, seq: int) -> Dict[str, Any]:
        """Decode and verify the record stored at ``seq``."""
        raw = self.log[seq]
        if isinstance(raw, dict):
            return dict(raw)  # legacy v1 record: nothing to verify
        try:
            got, payload = decode_record(raw)
        except RecordCorruption as exc:
            raise SiteCorrupt(
                f"site {self.name}: record at seq {seq} is corrupt: {exc}"
            ) from None
        if got is not None and got != seq:
            raise SiteCorrupt(
                f"site {self.name}: record at seq {seq} claims seq {got}"
            )
        return payload

    def base_entries(self) -> List[Dict[str, Any]]:
        """Decode and verify the compacted prefix (empty if none)."""
        if self.base is None:
            return []
        try:
            entries, _ = decode_snapshot(self.base)
        except SnapshotCorruption as exc:
            raise SiteCorrupt(
                f"site {self.name}: snapshot base is corrupt: {exc}"
            ) from None
        return entries

    def committed_entries(self, commit_index: int) -> List[Dict[str, Any]]:
        """The verified committed prefix: snapshot base + log entries in
        ``(base_seq, commit_index]``.  Ungated — scrub and repair must
        read a copy regardless of its read-gate state; :meth:`read` is
        the gated public path."""
        entries = self.base_entries()
        entries.extend(
            self.entry(seq)
            for seq in sorted(self.log)
            if self.base_seq < seq <= commit_index
        )
        return entries

    def install_snapshot(self, blob: str, last_seq: int) -> None:
        """Replace the prefix up to ``last_seq`` with a compacted base.
        The blob is stored as given — if compaction's write to this copy
        was rot-injected, this copy keeps the rotten bytes and the next
        scrub finds them."""
        self.base = blob
        self.base_seq = last_seq
        for seq in [q for q in self.log if q <= last_seq]:
            del self.log[seq]
        self.mark_committed(last_seq)

    def mark_committed(self, seq: int) -> None:
        self.commit_index = max(self.commit_index, seq)

    def read(self, commit_index: int) -> List[Dict[str, Any]]:
        """Committed entries in sequence order, up to ``commit_index``.

        Refused while DOWN, and refused while RECOVERING-but-unreadable
        — the caller (group or a direct site read in tests/tools) must
        go to a site whose state is proven current.  Every record is
        checksum-verified on the way out; rot raises
        :class:`SiteCorrupt`.
        """
        if self.state is SiteState.DOWN:
            raise SiteDown(f"replica site {self.name} is down")
        if not self.readable:
            raise SiteUnreadable(
                f"replica site {self.name} recovered after missing writes; "
                f"reads refused until a post-recovery write commits"
            )
        fault_point(
            SITE_REPLICATION_READ,
            default_exc=SiteFault,
            replica=self.name,
        )
        return self.committed_entries(commit_index)

    # ------------------------------------------------------------------
    def fail(self, cause: str = "", partitioned: bool = False) -> None:
        """Kill the site: availability gone, log (disk) retained.

        ``partitioned=True`` records that the outage is a network cut,
        not a dead process — the distinction :meth:`ReplicaGroup.health`
        surfaces so an operator (or repair planner) knows whether the
        copy needs catch-up or a rebuild."""
        self.state = SiteState.DOWN
        self.readable = False
        self.down_cause = cause
        self.down_partitioned = partitioned

    def recover(self) -> None:
        """Bring a DOWN site back: writable immediately, readable only
        after the first post-recovery committed write catches it up."""
        if self.state is not SiteState.DOWN:
            return
        self.state = SiteState.RECOVERING
        self.readable = False
        self.down_cause = ""
        self.down_partitioned = False

    def describe(self) -> str:
        gate = "readable" if self.readable else "read-gated"
        stored = len(self.log)
        if self.base is not None:
            stored = f"{stored}+snap@{self.base_seq}"
        row = (
            f"{self.name}: {self.state} ({gate}, {stored} entries, "
            f"commit {self.commit_index}, lease {self.lease_epoch_seen})"
        )
        if self.down_partitioned:
            row += " [partitioned, log intact]"
        if self.last_scrub is not None:
            row += f" [scrub: {self.last_scrub}]"
        return row

    def __repr__(self) -> str:
        return f"ReplicaSite({self.describe()})"
