"""Lightweight statistics primitives used across the simulator.

The simulator is single-threaded, so these containers do no locking.  They
are intentionally tiny: counters, a streaming summary, and a fixed-bucket
histogram, plus a :class:`StatsRegistry` that groups them under dotted
names so subsystems (cache model, scheduler, locks, BPF VM) can publish
metrics without knowing who consumes them.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Tuple

__all__ = ["Counter", "Summary", "Histogram", "StatsRegistry"]


class Counter:
    """A monotonically increasing integer counter."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount

    def reset(self) -> None:
        self.value = 0

    def __int__(self) -> int:
        return self.value

    def __repr__(self) -> str:
        return f"Counter({self.value})"


class Summary:
    """Streaming min/max/mean/variance without storing samples.

    Uses Welford's online algorithm, so it is numerically stable even for
    the nanosecond-scale latency samples the simulator produces.
    """

    __slots__ = ("count", "total", "min", "max", "_mean", "_m2")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf
        self._mean = 0.0
        self._m2 = 0.0

    def observe(self, sample: float) -> None:
        self.count += 1
        self.total += sample
        if sample < self.min:
            self.min = sample
        if sample > self.max:
            self.max = sample
        delta = sample - self._mean
        self._mean += delta / self.count
        self._m2 += delta * (sample - self._mean)

    @property
    def mean(self) -> float:
        return self._mean if self.count else 0.0

    @property
    def variance(self) -> float:
        return self._m2 / self.count if self.count else 0.0

    @property
    def stddev(self) -> float:
        return math.sqrt(self.variance)

    def merge(self, other: "Summary") -> None:
        """Fold another summary into this one (parallel Welford merge)."""
        if other.count == 0:
            return
        if self.count == 0:
            self.count = other.count
            self.total = other.total
            self.min = other.min
            self.max = other.max
            self._mean = other._mean
            self._m2 = other._m2
            return
        combined = self.count + other.count
        delta = other._mean - self._mean
        self._m2 += other._m2 + delta * delta * self.count * other.count / combined
        self._mean += delta * other.count / combined
        self.count = combined
        self.total += other.total
        self.min = min(self.min, other.min)
        self.max = max(self.max, other.max)

    def __repr__(self) -> str:
        if not self.count:
            return "Summary(empty)"
        return (
            f"Summary(n={self.count}, mean={self.mean:.1f}, "
            f"min={self.min:.1f}, max={self.max:.1f})"
        )


class Histogram:
    """Histogram with logarithmic buckets, suited to latency distributions.

    Buckets are powers of ``base`` starting at ``lowest``; everything above
    the final boundary lands in the overflow bucket.  Percentile lookup is
    approximate (bucket upper bound), which is standard for latency
    reporting (cf. HdrHistogram).
    """

    __slots__ = ("bounds", "counts", "overflow", "summary")

    def __init__(self, lowest: float = 1.0, base: float = 2.0, buckets: int = 40) -> None:
        if lowest <= 0 or base <= 1 or buckets <= 0:
            raise ValueError("invalid histogram configuration")
        self.bounds: List[float] = [lowest * base**i for i in range(buckets)]
        self.counts: List[int] = [0] * buckets
        self.overflow = 0
        self.summary = Summary()

    def observe(self, sample: float) -> None:
        self.summary.observe(sample)
        lo, hi = 0, len(self.bounds)
        # Binary search for the first bound >= sample.
        while lo < hi:
            mid = (lo + hi) // 2
            if self.bounds[mid] < sample:
                lo = mid + 1
            else:
                hi = mid
        if lo == len(self.bounds):
            self.overflow += 1
        else:
            self.counts[lo] += 1

    @property
    def count(self) -> int:
        return self.summary.count

    def percentile(self, p: float) -> float:
        """Return an upper bound for the ``p``-th percentile (0 < p <= 100)."""
        if not 0 < p <= 100:
            raise ValueError("percentile must be in (0, 100]")
        if self.count == 0:
            return 0.0
        target = math.ceil(self.count * p / 100.0)
        seen = 0
        for bound, count in zip(self.bounds, self.counts):
            seen += count
            if seen >= target:
                return bound
        return self.summary.max

    def nonzero_buckets(self) -> Iterable[Tuple[float, int]]:
        for bound, count in zip(self.bounds, self.counts):
            if count:
                yield bound, count
        if self.overflow:
            yield math.inf, self.overflow

    def __repr__(self) -> str:
        return f"Histogram(n={self.count}, p50~{self.percentile(50):.0f}, p99~{self.percentile(99):.0f})"


class StatsRegistry:
    """Registry of named statistics shared by all simulator subsystems.

    Names are dotted paths such as ``"cache.remote_transfers"`` or
    ``"sched.context_switches"``.  Accessors create the metric on first
    use, so instrumented code never needs set-up calls.
    """

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._summaries: Dict[str, Summary] = {}
        self._histograms: Dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        counter = self._counters.get(name)
        if counter is None:
            counter = self._counters[name] = Counter()
        return counter

    def summary(self, name: str) -> Summary:
        summary = self._summaries.get(name)
        if summary is None:
            summary = self._summaries[name] = Summary()
        return summary

    def histogram(self, name: str, **kwargs) -> Histogram:
        histogram = self._histograms.get(name)
        if histogram is None:
            histogram = self._histograms[name] = Histogram(**kwargs)
        return histogram

    def snapshot(self) -> Dict[str, float]:
        """Flat dict of every metric's headline value (for reports/tests)."""
        out: Dict[str, float] = {}
        for name, counter in self._counters.items():
            out[name] = counter.value
        for name, summary in self._summaries.items():
            out[name + ".count"] = summary.count
            out[name + ".mean"] = summary.mean
        for name, histogram in self._histograms.items():
            out[name + ".count"] = histogram.count
            out[name + ".p99"] = histogram.percentile(99) if histogram.count else 0.0
        return out

    def reset(self) -> None:
        for counter in self._counters.values():
            counter.reset()
        self._summaries.clear()
        self._histograms.clear()
