"""Cache-coherence cost model.

Lock scalability on real hardware is dominated by cache-line movement:
an atomic RMW on a contended line serializes all requesters and pays a
cache-to-cache transfer whose latency depends on NUMA distance.  This
module models exactly that, and nothing more:

* every :class:`Cell` is one exclusive cache line (kernel locks are
  padded, so this is accurate for our purposes);
* a write/RMW must wait for the line's previous exclusive access to
  complete (``busy_until``), serializing contended atomics;
* the requester pays ``l1_hit`` if it already owns the line, otherwise a
  transfer latency looked up from the topology;
* plain loads are shared: concurrent readers do not serialize, and a
  reader who already holds a shared copy pays only ``l1_hit``;
* local spinners (:class:`repro.sim.ops.WaitValue`) are registered as
  waiters and are re-checked — one transfer later — whenever a writer
  dirties the line.

This is a deliberately small slice of MESI; it reproduces the contention
behaviours that the lock literature (and the paper's Figure 2) depends
on: TAS collapse, MCS's flat handoff, NUMA batching wins, and per-CPU
reader scaling.
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional, Set, Tuple

from .stats import StatsRegistry
from .topology import Topology

__all__ = ["Cell", "CellWaiter", "CacheModel"]


class CellWaiter:
    """A task locally spinning on a cell, waiting for a predicate."""

    __slots__ = ("task", "pred", "armed", "cancelled")

    def __init__(self, task, pred: Callable[[Any], bool]) -> None:
        self.task = task
        self.pred = pred
        #: True while the waiter is waiting for the *next* write.  Cleared
        #: when a recheck is scheduled so multiple writes in flight do not
        #: schedule duplicate rechecks.
        self.armed = True
        self.cancelled = False


class Cell:
    """One 64-byte-line-sized word of simulated shared memory.

    The ``value`` may be any Python object (int, reference to a queue
    node, ...) — the cache model only cares about *who touched the line*,
    not what is stored in it.
    """

    __slots__ = ("value", "owner", "sharers", "busy_until", "waiters", "name")

    def __init__(self, value: Any = 0, name: str = "") -> None:
        self.value = value
        #: CPU id of the last writer, or None if never written.
        self.owner: Optional[int] = None
        #: CPU ids holding a shared (read) copy.
        self.sharers: Set[int] = set()
        #: Simulated time until which the line is pinned by an exclusive access.
        self.busy_until = 0
        self.waiters: List[CellWaiter] = []
        self.name = name

    def peek(self) -> Any:
        """Read the value without simulating any cost (debug/assertions only)."""
        return self.value

    def __repr__(self) -> str:
        label = self.name or hex(id(self))
        return f"Cell({label}={self.value!r})"


class CacheModel:
    """Computes access costs and tracks line state.

    The engine is the only caller.  Methods return ``(finish_time,
    result, rechecks)`` where *rechecks* lists ``(waiter, at_time)``
    pairs the engine must schedule.
    """

    def __init__(self, topology: Topology, stats: StatsRegistry) -> None:
        self.topology = topology
        self.stats = stats
        self._c_local = stats.counter("cache.local_hits")
        self._c_transfer = stats.counter("cache.transfers")
        self._c_remote = stats.counter("cache.remote_transfers")
        self._c_atomics = stats.counter("cache.atomics")

    # ------------------------------------------------------------------
    # Cost helpers
    # ------------------------------------------------------------------
    def _read_cost(self, cpu: int, cell: Cell) -> int:
        lat = self.topology.latency
        if cell.owner == cpu or cpu in cell.sharers:
            self._c_local.inc()
            return lat.l1_hit
        if cell.owner is None:
            self._c_local.inc()
            return lat.l1_hit
        cost = self.topology.transfer_ns(cell.owner, cpu)
        self._c_transfer.inc()
        if self.topology.hops(cell.owner, cpu) > 0:
            self._c_remote.inc()
        return cost

    def _own_cost(self, cpu: int, cell: Cell) -> int:
        """Cost to gain exclusive ownership of the line.

        Pays the dirty-line transfer from the current owner and, when
        other CPUs hold shared copies, the invalidation round-trip to
        the farthest sharer — writing a widely-shared line is expensive
        even for its owner (the ticket-lock release broadcast).
        """
        lat = self.topology.latency
        other_sharers = cell.sharers - {cpu}
        if not other_sharers and (cell.owner == cpu or cell.owner is None):
            self._c_local.inc()
            return lat.l1_hit
        cost = 0
        remote = False
        if cell.owner is not None and cell.owner != cpu:
            cost = self.topology.transfer_ns(cell.owner, cpu)
            remote = self.topology.hops(cell.owner, cpu) > 0
        if other_sharers:
            inval = max(self.topology.transfer_ns(s, cpu) for s in other_sharers)
            cost = max(cost, inval)
            remote = remote or any(self.topology.hops(s, cpu) > 0 for s in other_sharers)
        self._c_transfer.inc()
        if remote:
            self._c_remote.inc()
        return cost

    # ------------------------------------------------------------------
    # Accesses
    # ------------------------------------------------------------------
    def load(self, now: int, cpu: int, cell: Cell) -> Tuple[int, Any]:
        """A plain load.  Does not serialize with other loads."""
        cost = self._read_cost(cpu, cell)
        start = max(now, cell.busy_until)
        finish = start + cost
        if cell.owner != cpu:
            cell.sharers.add(cpu)
        return finish, cell.value

    def _exclusive(self, now: int, cpu: int, cell: Cell, extra: int) -> int:
        """Common path for stores and RMWs: serialize and take ownership."""
        cost = self._own_cost(cpu, cell) + extra
        start = max(now, cell.busy_until)
        finish = start + cost
        cell.busy_until = finish
        cell.owner = cpu
        cell.sharers.clear()
        return finish

    def _collect_rechecks(self, cell: Cell, writer_cpu: int, finish: int):
        """Schedule re-reads for local spinners after a write.

        The k-th spinner's refill is staggered: on real hardware the
        line's home/owner services each sharer's miss mostly serially,
        which is precisely why broadcast-wakeup locks (ticket) stop
        scaling while single-successor locks (MCS) stay flat.
        """
        rechecks = []
        k = 0
        for waiter in cell.waiters:
            if waiter.armed and not waiter.cancelled:
                waiter.armed = False
                delay = self.topology.transfer_ns(writer_cpu, waiter.task.cpu_id)
                delay += (k * delay) // 2
                k += 1
                rechecks.append((waiter, finish + delay))
        return rechecks

    def store(self, now: int, cpu: int, cell: Cell, value: Any):
        finish = self._exclusive(now, cpu, cell, 0)
        cell.value = value
        return finish, None, self._collect_rechecks(cell, cpu, finish)

    def cas(self, now: int, cpu: int, cell: Cell, expected: Any, new: Any):
        self._c_atomics.inc()
        finish = self._exclusive(now, cpu, cell, self.topology.latency.atomic_extra)
        old = cell.value
        if old == expected:
            cell.value = new
            return finish, (True, old), self._collect_rechecks(cell, cpu, finish)
        return finish, (False, old), []

    def xchg(self, now: int, cpu: int, cell: Cell, value: Any):
        self._c_atomics.inc()
        finish = self._exclusive(now, cpu, cell, self.topology.latency.atomic_extra)
        old = cell.value
        cell.value = value
        return finish, old, self._collect_rechecks(cell, cpu, finish)

    def fetch_add(self, now: int, cpu: int, cell: Cell, delta: int):
        self._c_atomics.inc()
        finish = self._exclusive(now, cpu, cell, self.topology.latency.atomic_extra)
        old = cell.value
        cell.value = old + delta
        return finish, old, self._collect_rechecks(cell, cpu, finish)

    # ------------------------------------------------------------------
    # Local-spin waiters
    # ------------------------------------------------------------------
    def add_waiter(self, cell: Cell, waiter: CellWaiter) -> None:
        cell.waiters.append(waiter)

    def remove_waiter(self, cell: Cell, waiter: CellWaiter) -> None:
        waiter.cancelled = True
        try:
            cell.waiters.remove(waiter)
        except ValueError:
            pass
