"""Simulated kernel tasks (threads).

A :class:`Task` wraps a generator body plus the scheduling metadata the
rest of the system needs: the CPU it is pinned to, its priority, futex
park/unpark state, and a small open ``tags`` dictionary that stands in
for the "context annotations" the paper's userspace API attaches to
tasks (e.g. *this thread is on the prioritized syscall path*).

Task bodies are callables that accept the task and return a generator::

    def worker(task):
        while task.engine.now < deadline:
            yield Delay(100)

    engine.spawn(worker, cpu=3, name="worker-3")
"""

from __future__ import annotations

import enum
from typing import Any, Callable, Dict, Generator, List, Optional, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .engine import Engine

__all__ = ["Task", "TaskState", "TaskBody"]

TaskBody = Callable[["Task"], Generator]


class TaskState(enum.Enum):
    """Lifecycle of a simulated task."""

    NEW = "new"
    RUNNING = "running"      # on its CPU (possibly inside a memory op)
    READY = "ready"          # runnable, waiting for the CPU
    SPINNING = "spinning"    # blocked in WaitValue but occupying the CPU
    PARKED = "parked"        # descheduled, waiting for an unpark
    DONE = "done"


class Task:
    """One simulated thread of execution."""

    _slots_doc = "kept as normal attributes; tasks are few and long-lived"

    def __init__(
        self,
        engine: "Engine",
        tid: int,
        body: TaskBody,
        cpu_id: int,
        name: str = "",
        priority: int = 0,
        numa_node: Optional[int] = None,
    ) -> None:
        self.engine = engine
        self.tid = tid
        self.name = name or f"task-{tid}"
        self.cpu_id = cpu_id
        #: Larger number = more important.  0 is the default (CFS-normal).
        self.priority = priority
        self.numa_node = (
            numa_node if numa_node is not None else engine.topology.socket_of(cpu_id)
        )
        self.state = TaskState.NEW
        self.gen: Optional[Generator] = None
        self._body = body

        # Futex-style park/unpark state.
        self.park_token = False
        self.wake_epoch = 0

        # Scheduler state.
        self.preempt_pending = False
        self.pending_value: Any = None
        self.has_pending_value = False
        #: (cell, CellWaiter) while blocked in a WaitValue spin, else None.
        self._spin_waiter = None

        # Bookkeeping.
        self.spawn_time = 0
        self.finish_time: Optional[int] = None
        self.result: Any = None
        self.error: Optional[BaseException] = None

        #: Open annotation map — the C3 "context" userspace attaches to a
        #: task.  Policies read these through BPF helpers.
        self.tags: Dict[str, int] = {}
        #: Lock instances this task currently holds (maintained by the
        #: lock layer; consumed by lock-inheritance/priority policies).
        self.held_locks: List[object] = []
        #: Scratch area for workloads to record per-task results.
        self.stats: Dict[str, Any] = {}

    # ------------------------------------------------------------------
    def start(self) -> Generator:
        """Instantiate the generator body (engine-internal)."""
        self.gen = self._body(self)
        if not hasattr(self.gen, "send"):
            raise TypeError(
                f"task body for {self.name} must return a generator, "
                f"got {type(self.gen).__name__}"
            )
        return self.gen

    @property
    def done(self) -> bool:
        return self.state is TaskState.DONE

    @property
    def blocked(self) -> bool:
        return self.state in (TaskState.PARKED, TaskState.SPINNING)

    def __repr__(self) -> str:
        return f"Task({self.name}, cpu={self.cpu_id}, {self.state.value})"
