"""Machine topology: sockets, cores, NUMA distances, asymmetric cores.

The paper evaluates on an eight-socket, 80-core machine.  We model the
pieces of that machine that determine lock behaviour:

* which socket (NUMA node) each CPU belongs to — cache-line transfer
  latency depends on whether two CPUs share a socket;
* per-CPU speed factors, so asymmetric multicore (AMP) platforms like
  big.LITTLE can be modelled for the §3.1.2 AMP use case;
* the latency table itself (:class:`LatencyModel`), which the cache model
  consults on every load/store/atomic.

All latencies are integer nanoseconds.  The defaults are calibrated to
publicly reported figures for large Xeon boxes (L1 hit a few ns, on-socket
cache-to-cache transfer tens of ns, cross-socket transfer >100 ns) — the
absolute values only set the scale; the *ratios* drive every result shape.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from .errors import TopologyError

__all__ = ["LatencyModel", "Topology", "paper_machine", "amp_machine"]


@dataclass(frozen=True)
class LatencyModel:
    """Latency parameters (ns) consumed by the cache model.

    Attributes:
        l1_hit: access to a line this CPU already owns.
        local_transfer: cache-to-cache transfer within a socket.
        remote_transfer: cache-to-cache transfer across sockets.
        remote_hop_extra: additional cost per NUMA hop beyond the first
            (relevant for 8-socket glueless/QPI topologies).
        atomic_extra: extra cost of a locked RMW over a plain access.
        park_cost: CPU-side cost to deschedule (context switch out).
        wake_latency: delay from wake-up call until the target runs.
        wake_cost: cost charged to the waker.
        context_switch: cost to switch between two runnable tasks.
    """

    l1_hit: int = 4
    local_transfer: int = 40
    remote_transfer: int = 130
    remote_hop_extra: int = 25
    atomic_extra: int = 8
    park_cost: int = 1500
    wake_latency: int = 3500
    wake_cost: int = 400
    context_switch: int = 1200

    def transfer(self, hops: int) -> int:
        """Line-transfer latency for a given NUMA hop count."""
        if hops == 0:
            return self.local_transfer
        return self.remote_transfer + (hops - 1) * self.remote_hop_extra


class Topology:
    """An immutable description of the simulated machine.

    Args:
        sockets: number of NUMA nodes.
        cores_per_socket: CPUs per node; CPU ids are dense, socket-major
            (cpu 0..c-1 on socket 0, etc.), matching Linux's usual layout.
        latency: the :class:`LatencyModel` for this machine.
        speed: optional per-CPU speed factors; ``1.0`` is a "big" core,
            values above 1.0 scale *up* the time cost of computation on
            that CPU (a 2.0 core takes twice as long).  Defaults to all
            symmetric.
        numa_distance: optional socket-by-socket hop matrix.  Defaults to
            1 hop between any two distinct sockets (fully connected).
    """

    def __init__(
        self,
        sockets: int,
        cores_per_socket: int,
        latency: Optional[LatencyModel] = None,
        speed: Optional[Sequence[float]] = None,
        numa_distance: Optional[Sequence[Sequence[int]]] = None,
    ) -> None:
        if sockets <= 0 or cores_per_socket <= 0:
            raise TopologyError("sockets and cores_per_socket must be positive")
        self.sockets = sockets
        self.cores_per_socket = cores_per_socket
        self.nr_cpus = sockets * cores_per_socket
        self.latency = latency or LatencyModel()
        if speed is None:
            self._speed: Tuple[float, ...] = (1.0,) * self.nr_cpus
        else:
            if len(speed) != self.nr_cpus:
                raise TopologyError(
                    f"speed table has {len(speed)} entries for {self.nr_cpus} cpus"
                )
            if any(s <= 0 for s in speed):
                raise TopologyError("speed factors must be positive")
            self._speed = tuple(float(s) for s in speed)
        if numa_distance is None:
            self._distance = None
        else:
            if len(numa_distance) != sockets or any(len(row) != sockets for row in numa_distance):
                raise TopologyError("numa_distance must be a sockets x sockets matrix")
            self._distance = tuple(tuple(int(h) for h in row) for row in numa_distance)
        # Precompute cpu -> socket for the hot path.
        self._socket_of: Tuple[int, ...] = tuple(
            cpu // cores_per_socket for cpu in range(self.nr_cpus)
        )

    # ------------------------------------------------------------------
    # Lookups
    # ------------------------------------------------------------------
    def socket_of(self, cpu: int) -> int:
        """NUMA node id of ``cpu``."""
        try:
            return self._socket_of[cpu]
        except IndexError:
            raise TopologyError(f"cpu {cpu} out of range (nr_cpus={self.nr_cpus})") from None

    def cpus_of_socket(self, socket: int) -> range:
        """The dense CPU id range belonging to ``socket``."""
        if not 0 <= socket < self.sockets:
            raise TopologyError(f"socket {socket} out of range")
        start = socket * self.cores_per_socket
        return range(start, start + self.cores_per_socket)

    def speed_of(self, cpu: int) -> float:
        return self._speed[cpu]

    def hops(self, cpu_a: int, cpu_b: int) -> int:
        """NUMA hop count between two CPUs (0 when they share a socket)."""
        sa, sb = self.socket_of(cpu_a), self.socket_of(cpu_b)
        if sa == sb:
            return 0
        if self._distance is not None:
            return self._distance[sa][sb]
        return 1

    def transfer_ns(self, from_cpu: int, to_cpu: int) -> int:
        """Cache-line transfer latency between two CPUs."""
        if from_cpu == to_cpu:
            return self.latency.l1_hit
        return self.latency.transfer(self.hops(from_cpu, to_cpu))

    # ------------------------------------------------------------------
    # Enumeration helpers used by workloads
    # ------------------------------------------------------------------
    def spread_order(self) -> List[int]:
        """CPU ids in socket-round-robin order.

        will-it-scale style benchmarks pin thread *i* to the *i*-th CPU in
        a breadth-first walk of the sockets so that small thread counts
        already span sockets.  The paper's figures use the opposite
        (fill-socket) order — see :meth:`fill_order` — but both are
        useful for experiments.
        """
        order: List[int] = []
        for idx in range(self.cores_per_socket):
            for socket in range(self.sockets):
                order.append(socket * self.cores_per_socket + idx)
        return order

    def fill_order(self) -> List[int]:
        """CPU ids filling each socket completely before the next.

        This is the order the ShflLock/Concord evaluation uses: thread
        counts up to ``cores_per_socket`` stay on one socket, so NUMA
        effects appear only past that point.
        """
        return list(range(self.nr_cpus))

    def describe(self) -> Dict[str, object]:
        return {
            "sockets": self.sockets,
            "cores_per_socket": self.cores_per_socket,
            "nr_cpus": self.nr_cpus,
            "asymmetric": len(set(self._speed)) > 1,
        }

    def __repr__(self) -> str:
        return f"Topology({self.sockets}x{self.cores_per_socket})"


def paper_machine(latency: Optional[LatencyModel] = None) -> Topology:
    """The evaluation machine from the paper: 8 sockets x 10 cores.

    Eight-socket boxes pay far more for cross-socket transfers than
    dual-socket parts (multi-hop interconnects, directory lookups), so
    the default latency model uses a steeper remote penalty than
    :class:`LatencyModel`'s generic defaults.
    """
    if latency is None:
        latency = LatencyModel(remote_transfer=240, remote_hop_extra=40)
    return Topology(sockets=8, cores_per_socket=10, latency=latency)


def amp_machine(
    big_cores: int = 4,
    little_cores: int = 4,
    little_slowdown: float = 3.0,
    latency: Optional[LatencyModel] = None,
) -> Topology:
    """A single-socket asymmetric multicore machine (big.LITTLE style).

    The first ``big_cores`` CPUs run at full speed; the remaining
    ``little_cores`` take ``little_slowdown`` times longer for the same
    computation.  Used by the §3.1.2 AMP use-case experiments.
    """
    total = big_cores + little_cores
    speed = [1.0] * big_cores + [little_slowdown] * little_cores
    return Topology(sockets=1, cores_per_socket=total, latency=latency, speed=speed)
