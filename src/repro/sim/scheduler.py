"""Per-CPU scheduling state.

The engine owns the event loop; this module owns what a CPU knows:
which task currently occupies it, which tasks are runnable on it, and
whether the CPU is "frozen" (the mechanism we use to model hypervisor
vCPU preemption and forced descheduling — while frozen, nothing on the
CPU makes progress).

The run queue is strict-priority with FIFO order within a priority
level, which is all the use-case experiments need (priority inversion,
boosted syscall paths, background vs. foreground tasks).
"""

from __future__ import annotations

from typing import List, Optional, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .task import Task

__all__ = ["CPU"]


class CPU:
    """One logical CPU: a current task, a run queue, and freeze state."""

    __slots__ = (
        "cpu_id",
        "current",
        "runqueue",
        "frozen_until",
        "dispatch_seq",
        "quantum_armed_seq",
        "idle_since",
    )

    def __init__(self, cpu_id: int) -> None:
        self.cpu_id = cpu_id
        self.current: Optional["Task"] = None
        self.runqueue: List["Task"] = []
        self.frozen_until = 0
        #: Incremented on every dispatch; stale preemption timers compare
        #: against it so a timer armed for a previous occupant is ignored.
        self.dispatch_seq = 0
        #: dispatch_seq value for which a quantum timer is already armed.
        self.quantum_armed_seq = -1
        self.idle_since = 0

    # ------------------------------------------------------------------
    def enqueue(self, task: "Task") -> None:
        """Insert ``task`` keeping priority order (stable within a level)."""
        queue = self.runqueue
        priority = task.priority
        index = len(queue)
        # Walk from the back: new arrivals go after equal-priority tasks.
        while index > 0 and queue[index - 1].priority < priority:
            index -= 1
        queue.insert(index, task)

    def pick_next(self) -> Optional["Task"]:
        """Pop the highest-priority runnable task, or None."""
        if self.runqueue:
            return self.runqueue.pop(0)
        return None

    def remove(self, task: "Task") -> bool:
        """Remove a task from the run queue (used on task teardown)."""
        try:
            self.runqueue.remove(task)
            return True
        except ValueError:
            return False

    @property
    def busy(self) -> bool:
        return self.current is not None

    def best_waiting_priority(self) -> Optional[int]:
        if not self.runqueue:
            return None
        return max(task.priority for task in self.runqueue)

    def __repr__(self) -> str:
        cur = self.current.name if self.current else "idle"
        return f"CPU({self.cpu_id}, current={cur}, rq={len(self.runqueue)})"
