"""The discrete-event simulation engine.

The engine advances a single global clock (integer nanoseconds) through a
priority queue of events.  Simulated tasks are generators that yield
effect requests (:mod:`repro.sim.ops`); the engine prices each request
using the cache model and topology, schedules its completion, and resumes
the generator with the result.

Determinism: the event heap breaks time ties by an insertion sequence
number, the only randomness lives in the engine's seeded ``rng``, and the
whole simulation runs on one OS thread — identical (seed, config) inputs
therefore produce identical traces, which the test suite relies on.

Scheduling model (see DESIGN.md §3):

* a task is pinned to one CPU; at most one task occupies a CPU;
* computation, memory traffic, and local spinning all occupy the CPU;
* parking releases the CPU to the next runnable task;
* CPUs can be *frozen* for a period (vCPU preemption by a hypervisor);
* an optional preemption quantum forces the running task off the CPU
  when equal-or-higher-priority work is waiting, and wake-ups of
  higher-priority tasks preempt lower-priority occupants.
"""

from __future__ import annotations

import heapq
import random as _random
from typing import Any, Callable, Dict, List, Optional

from . import ops
from .cache import CacheModel, Cell, CellWaiter
from .errors import DeadlockError, SimLimitError, TaskError
from .scheduler import CPU
from .stats import StatsRegistry
from .task import Task, TaskBody, TaskState
from .topology import Topology

__all__ = ["Engine"]

# Cost (ns) of a park fast path that consumes a pending token (no syscall).
_PARK_FASTPATH_NS = 30
# Cost (ns) of a voluntary yield when the run queue is empty.
_YIELD_NOOP_NS = 80


class Engine:
    """Event loop, scheduler, and effect interpreter for one machine."""

    def __init__(
        self,
        topology: Topology,
        seed: int = 0,
        max_events: int = 200_000_000,
        preemption_quantum: Optional[int] = None,
        preemptive_priorities: bool = False,
    ) -> None:
        self.topology = topology
        self.stats = StatsRegistry()
        self.cache = CacheModel(topology, self.stats)
        self.rng = _random.Random(seed)
        self.now = 0
        self.max_events = max_events
        self.preemption_quantum = preemption_quantum
        self.preemptive_priorities = preemptive_priorities

        self.cpus: List[CPU] = [CPU(i) for i in range(topology.nr_cpus)]
        self.tasks: List[Task] = []
        self._heap: List = []
        self._seq = 0
        self._events_processed = 0
        self._next_tid = 1
        self._stopped = False

        self._handlers: Dict[type, Callable] = {
            ops.Delay: self._h_delay,
            ops.Load: self._h_load,
            ops.Store: self._h_store,
            ops.CAS: self._h_cas,
            ops.Xchg: self._h_xchg,
            ops.FetchAdd: self._h_fetch_add,
            ops.WaitValue: self._h_wait_value,
            ops.Park: self._h_park,
            ops.ParkTimeout: self._h_park_timeout,
            ops.Unpark: self._h_unpark,
            ops.YieldCPU: self._h_yield,
        }

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def cell(self, value: Any = 0, name: str = "") -> Cell:
        """Allocate one line of simulated shared memory."""
        return Cell(value, name)

    def spawn(
        self,
        body: TaskBody,
        cpu: int,
        name: str = "",
        priority: int = 0,
        at: Optional[int] = None,
    ) -> Task:
        """Create a task pinned to ``cpu`` and schedule its first run.

        ``body`` is called with the new :class:`Task` and must return a
        generator.  The task starts at time ``at`` (default: now).
        """
        if not 0 <= cpu < self.topology.nr_cpus:
            raise TaskError(f"cpu {cpu} out of range for {self.topology}")
        task = Task(self, self._next_tid, body, cpu, name=name, priority=priority)
        self._next_tid += 1
        task.spawn_time = self.now if at is None else at
        self.tasks.append(task)
        self._at(task.spawn_time, self._start_task, task)
        return task

    def external_store(self, cell, value: Any, cpu: int = 0) -> None:
        """Store to a cell from outside any task (patcher, hypervisor).

        Performs full store semantics at the current time — ownership
        transfer, waiter rechecks — attributed to ``cpu``.  Used by
        control-plane actors that are not simulated tasks.
        """
        _finish, _none, rechecks = self.cache.store(self.now, cpu, cell, value)
        self._schedule_rechecks(rechecks)

    def call_at(self, time_ns: int, fn: Callable[[], None]) -> None:
        """Run ``fn()`` at an absolute simulated time (injection hook)."""
        self._at(max(time_ns, self.now), self._call, fn)

    def call_after(self, delay_ns: int, fn: Callable[[], None]) -> None:
        self.call_at(self.now + delay_ns, fn)

    def freeze_cpu(self, cpu_id: int, duration_ns: int) -> None:
        """Model a hypervisor descheduling this CPU for ``duration_ns``.

        Nothing on the CPU makes progress until the thaw: in-flight
        completions and wake-ups are deferred.  Used by the vCPU
        double-scheduling experiments.
        """
        cpu = self.cpus[cpu_id]
        thaw = self.now + duration_ns
        if thaw > cpu.frozen_until:
            cpu.frozen_until = thaw
        self.stats.counter("sched.cpu_freezes").inc()
        # If the occupant is mid-spin, its rechecks will defer themselves;
        # nothing else to do: completions re-check frozen_until.

    def run(self, until: Optional[int] = None) -> int:
        """Process events until the queue drains or ``until`` is reached.

        Returns the final simulated time.  Raises :class:`DeadlockError`
        if the queue drains while tasks are still blocked and no
        ``until`` bound was given (a bounded run is allowed to stop with
        tasks mid-flight — that is how throughput runs end).
        """
        heap = self._heap
        self._stopped = False
        while heap:
            if self._events_processed >= self.max_events:
                raise SimLimitError(
                    f"exceeded max_events={self.max_events} at t={self.now}ns"
                )
            time_ns, _seq, fn, arg = heap[0]
            if until is not None and time_ns > until:
                self.now = until
                return self.now
            heapq.heappop(heap)
            self._events_processed += 1
            self.now = time_ns
            fn(arg)
            if self._stopped:
                return self.now
        if until is None:
            blocked = [t for t in self.tasks if not t.done and t.state is not TaskState.NEW]
            if blocked:
                names = ", ".join(f"{t.name}[{t.state.value}]" for t in blocked[:12])
                raise DeadlockError(
                    f"event queue drained with {len(blocked)} blocked task(s): {names}",
                    blocked,
                )
        elif self.now < until:
            self.now = until
        return self.now

    def stop(self) -> None:
        """Stop the run loop after the current event (used by injectors)."""
        self._stopped = True

    @property
    def events_processed(self) -> int:
        return self._events_processed

    # ------------------------------------------------------------------
    # Event plumbing
    # ------------------------------------------------------------------
    def _at(self, time_ns: int, fn: Callable, arg: Any) -> None:
        if time_ns < self.now:
            time_ns = self.now  # never schedule into the past
        self._seq += 1
        heapq.heappush(self._heap, (time_ns, self._seq, fn, arg))

    @staticmethod
    def _call(fn: Callable[[], None]) -> None:
        fn()

    # ------------------------------------------------------------------
    # Task lifecycle
    # ------------------------------------------------------------------
    def _start_task(self, task: Task) -> None:
        task.start()
        cpu = self.cpus[task.cpu_id]
        if cpu.current is None and self.now >= cpu.frozen_until:
            cpu.current = task
            cpu.dispatch_seq += 1
            task.state = TaskState.RUNNING
            self._arm_quantum(cpu)
            self._step(task, None)
        else:
            task.state = TaskState.READY
            task.has_pending_value = False
            cpu.enqueue(task)
            self._maybe_preempt_for(cpu, task)
            self._arm_quantum(cpu)
            self._dispatch(cpu)

    def _step(self, task: Task, value: Any) -> None:
        """Advance the task generator by one request."""
        try:
            if task.state is TaskState.NEW:
                task.state = TaskState.RUNNING
            request = task.gen.send(value)
        except StopIteration as stop:
            self._finish_task(task, stop.value)
            return
        except Exception as exc:  # body raised: record and re-raise
            task.error = exc
            task.state = TaskState.DONE
            task.finish_time = self.now
            self._release_cpu(task)
            raise
        handler = self._handlers.get(type(request))
        if handler is None:
            raise TaskError(
                f"{task.name} yielded {request!r}, which is not a sim request"
            )
        handler(task, request)

    def _finish_task(self, task: Task, result: Any) -> None:
        task.state = TaskState.DONE
        task.result = result
        task.finish_time = self.now
        self.stats.counter("sched.tasks_finished").inc()
        self._release_cpu(task)

    def _release_cpu(self, task: Task) -> None:
        cpu = self.cpus[task.cpu_id]
        if cpu.current is task:
            cpu.current = None
            cpu.idle_since = self.now
            self._dispatch(cpu)

    # ------------------------------------------------------------------
    # Completion & scheduling
    # ------------------------------------------------------------------
    def _complete(self, task: Task, result: Any, at: int) -> None:
        self._at(at, self._on_complete, (task, result))

    def _on_complete(self, payload) -> None:
        task, result = payload
        if task.done:
            return
        cpu = self.cpus[task.cpu_id]
        if cpu.frozen_until > self.now:
            # vCPU descheduled: progress resumes at thaw.
            self._at(cpu.frozen_until, self._on_complete, payload)
            return
        if cpu.current is not task:
            # We were descheduled while the request was in flight; park the
            # result and wait for a dispatch.
            task.pending_value = result
            task.has_pending_value = True
            if task.state is not TaskState.READY:
                task.state = TaskState.READY
                cpu.enqueue(task)
                self._maybe_preempt_for(cpu, task)
                self._arm_quantum(cpu)
            self._dispatch(cpu)
            return
        if task.preempt_pending and cpu.runqueue:
            task.preempt_pending = False
            task.pending_value = result
            task.has_pending_value = True
            task.state = TaskState.READY
            cpu.current = None
            cpu.enqueue(task)
            self.stats.counter("sched.preemptions").inc()
            self._dispatch(cpu)
            return
        task.state = TaskState.RUNNING
        self._step(task, result)

    def _dispatch(self, cpu: CPU) -> None:
        if cpu.current is not None:
            return
        if cpu.frozen_until > self.now:
            self._at(cpu.frozen_until, self._dispatch_cb, cpu)
            return
        nxt = cpu.pick_next()
        if nxt is None or nxt.done:
            return
        cpu.current = nxt
        cpu.dispatch_seq += 1
        nxt.preempt_pending = False
        self.stats.counter("sched.context_switches").inc()
        self._arm_quantum(cpu)
        cost = self.topology.latency.context_switch
        if nxt.has_pending_value:
            nxt.state = TaskState.RUNNING
            value = nxt.pending_value
            nxt.pending_value = None
            nxt.has_pending_value = False
            self._complete(nxt, value, self.now + cost)
        elif nxt._spin_waiter is not None:
            # A spinner that was descheduled mid-WaitValue and whose cell
            # has not fired yet: it resumes spinning, no generator step.
            nxt.state = TaskState.SPINNING
        else:
            # Fresh task: first generator step receives None.
            nxt.state = TaskState.RUNNING
            self._complete(nxt, None, self.now + cost)

    def _dispatch_cb(self, cpu: CPU) -> None:
        self._dispatch(cpu)

    def _arm_quantum(self, cpu: CPU) -> None:
        if self.preemption_quantum is None or not cpu.runqueue:
            return
        if cpu.current is None or cpu.quantum_armed_seq == cpu.dispatch_seq:
            return
        cpu.quantum_armed_seq = cpu.dispatch_seq
        self._at(
            self.now + self.preemption_quantum,
            self._quantum_fire,
            (cpu, cpu.current, cpu.dispatch_seq),
        )

    def _quantum_fire(self, payload) -> None:
        cpu, task, seq = payload
        if cpu.current is not task or cpu.dispatch_seq != seq or not cpu.runqueue:
            return
        if task.state is TaskState.SPINNING:
            # A spinning waiter can be descheduled immediately: it has no
            # in-flight completion, only (possibly) armed cell waiters.
            self._deschedule_spinner(cpu, task)
        else:
            task.preempt_pending = True

    def _maybe_preempt_for(self, cpu: CPU, newcomer: Task) -> None:
        """Wake-up preemption: higher-priority arrivals evict the occupant."""
        if not self.preemptive_priorities:
            return
        current = cpu.current
        if current is None or newcomer.priority <= current.priority:
            return
        if current.state is TaskState.SPINNING:
            self._deschedule_spinner(cpu, current)
        else:
            current.preempt_pending = True

    def _deschedule_spinner(self, cpu: CPU, task: Task) -> None:
        """Take the CPU from a task blocked in WaitValue."""
        cpu.current = None
        task.state = TaskState.READY
        task.has_pending_value = False
        # The cell waiter stays armed; if it fires while we are off-CPU the
        # recheck path sees state READY and stores a pending value instead.
        task.tags["_descheduled_spin"] = 1
        cpu.enqueue(task)
        self.stats.counter("sched.spinner_preemptions").inc()
        self._dispatch(cpu)

    # ------------------------------------------------------------------
    # Request handlers
    # ------------------------------------------------------------------
    def _h_delay(self, task: Task, req: ops.Delay) -> None:
        cost = int(req.ns * self.topology.speed_of(task.cpu_id))
        self._complete(task, None, self.now + max(cost, 0))

    def _h_load(self, task: Task, req: ops.Load) -> None:
        finish, value = self.cache.load(self.now, task.cpu_id, req.cell)
        self._complete(task, value, finish)

    def _h_store(self, task: Task, req: ops.Store) -> None:
        finish, _none, rechecks = self.cache.store(
            self.now, task.cpu_id, req.cell, req.value
        )
        self._schedule_rechecks(rechecks)
        self._complete(task, None, finish)

    def _h_cas(self, task: Task, req: ops.CAS) -> None:
        finish, result, rechecks = self.cache.cas(
            self.now, task.cpu_id, req.cell, req.expected, req.new
        )
        self._schedule_rechecks(rechecks)
        self._complete(task, result, finish)

    def _h_xchg(self, task: Task, req: ops.Xchg) -> None:
        finish, old, rechecks = self.cache.xchg(self.now, task.cpu_id, req.cell, req.value)
        self._schedule_rechecks(rechecks)
        self._complete(task, old, finish)

    def _h_fetch_add(self, task: Task, req: ops.FetchAdd) -> None:
        finish, old, rechecks = self.cache.fetch_add(
            self.now, task.cpu_id, req.cell, req.delta
        )
        self._schedule_rechecks(rechecks)
        self._complete(task, old, finish)

    def _schedule_rechecks(self, rechecks) -> None:
        for waiter, at in rechecks:
            self._at(at, self._waiter_recheck, waiter)

    def _h_wait_value(self, task: Task, req: ops.WaitValue) -> None:
        finish, value = self.cache.load(self.now, task.cpu_id, req.cell)
        self._at(finish, self._wait_first_check, (task, req))

    def _wait_first_check(self, payload) -> None:
        task, req = payload
        if task.done:
            return
        value = req.cell.value
        if req.pred(value):
            self._complete(task, value, self.now)
            return
        waiter = CellWaiter(task, req.pred)
        waiter_cell = req.cell
        task.state = TaskState.SPINNING
        task.tags.pop("_descheduled_spin", None)
        self.cache.add_waiter(waiter_cell, waiter)
        task._spin_waiter = (waiter_cell, waiter)
        self.stats.counter("cache.local_spins").inc()

    def _waiter_recheck(self, waiter: CellWaiter) -> None:
        if waiter.cancelled:
            return
        task = waiter.task
        if task.done or task._spin_waiter is None:
            return
        cell, _w = task._spin_waiter
        # The recheck is a read: the spinner holds a shared copy again,
        # so the next write pays to invalidate it.
        if cell.owner != task.cpu_id:
            cell.sharers.add(task.cpu_id)
        value = cell.value
        if not waiter.pred(value):
            waiter.armed = True
            return
        self.cache.remove_waiter(cell, waiter)
        task._spin_waiter = None
        cpu = self.cpus[task.cpu_id]
        if task.state is TaskState.SPINNING and cpu.current is task:
            task.state = TaskState.RUNNING
            self._complete(task, value, self.now)
        else:
            # We were descheduled mid-spin (quantum or priority preemption):
            # deliver the value when we next get the CPU.
            task.pending_value = value
            task.has_pending_value = True
            if task.state is not TaskState.READY:
                task.state = TaskState.READY
                cpu.enqueue(task)
            task.tags.pop("_descheduled_spin", None)
            self._dispatch(cpu)

    # ------------------------------------------------------------------
    # Park / unpark (futex semantics)
    # ------------------------------------------------------------------
    def _h_park(self, task: Task, req: ops.Park) -> None:
        self._park_common(task, timeout_ns=None)

    def _h_park_timeout(self, task: Task, req: ops.ParkTimeout) -> None:
        self._park_common(task, timeout_ns=req.ns)

    def _park_common(self, task: Task, timeout_ns: Optional[int]) -> None:
        if task.park_token:
            task.park_token = False
            self._complete(task, True, self.now + _PARK_FASTPATH_NS)
            return
        lat = self.topology.latency
        task.state = TaskState.PARKED
        task.wake_epoch += 1
        epoch = task.wake_epoch
        cpu = self.cpus[task.cpu_id]
        if cpu.current is task:
            cpu.current = None
            # Park cost is paid by the CPU before the next dispatch.
            self._at(self.now + lat.park_cost, self._dispatch_cb, cpu)
        self.stats.counter("sched.parks").inc()
        if timeout_ns is not None:
            self._at(self.now + timeout_ns, self._park_timeout_fire, (task, epoch))

    def _park_timeout_fire(self, payload) -> None:
        task, epoch = payload
        if task.state is TaskState.PARKED and task.wake_epoch == epoch:
            self._wake(task, woken=False)

    def _h_unpark(self, task: Task, req: ops.Unpark) -> None:
        target = req.task
        lat = self.topology.latency
        self._complete(task, None, self.now + lat.wake_cost)
        self._at(self.now, self._do_unpark, target)

    def unpark_external(self, target: Task) -> None:
        """Unpark from outside any task (injectors, hypervisor models)."""
        self._do_unpark(target)

    def _do_unpark(self, target: Task) -> None:
        if target.done:
            return
        if target.state is TaskState.PARKED:
            lat = self.topology.latency
            target.wake_epoch += 1
            self._at(self.now + lat.wake_latency, self._wake_cb, target)
        else:
            target.park_token = True

    def _wake_cb(self, target: Task) -> None:
        if target.state is TaskState.PARKED:
            self._wake(target, woken=True)

    def _wake(self, task: Task, woken: bool) -> None:
        self.stats.counter("sched.wakeups").inc()
        cpu = self.cpus[task.cpu_id]
        task.pending_value = woken
        task.has_pending_value = True
        task.state = TaskState.READY
        cpu.enqueue(task)
        self._maybe_preempt_for(cpu, task)
        self._arm_quantum(cpu)
        self._dispatch(cpu)

    # ------------------------------------------------------------------
    def _h_yield(self, task: Task, req: ops.YieldCPU) -> None:
        cpu = self.cpus[task.cpu_id]
        if not cpu.runqueue:
            self._complete(task, None, self.now + _YIELD_NOOP_NS)
            return
        task.state = TaskState.READY
        task.pending_value = None
        task.has_pending_value = True
        cpu.current = None
        cpu.enqueue(task)
        self.stats.counter("sched.yields").inc()
        self._dispatch(cpu)
