"""Effect requests that simulated tasks yield to the engine.

A simulated task is a Python generator.  Every interaction with shared
state — time passing, memory traffic, parking — is expressed by yielding
one of the request objects below and receiving the result back from the
engine::

    def body(task):
        ok, old = yield CAS(lock_word, 0, task.tid)   # one atomic RMW
        yield Delay(250)                              # 250 ns of work
        yield Store(lock_word, 0)                     # release

Requests are deliberately tiny immutable records; the engine dispatches
on their concrete type.  Anything a real kernel thread does between
yields is invisible to other tasks, which mirrors how instructions
between memory accesses are invisible to other CPUs.
"""

from __future__ import annotations

from typing import Any, Callable, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .cache import Cell
    from .task import Task

__all__ = [
    "Request",
    "Delay",
    "Load",
    "Store",
    "CAS",
    "Xchg",
    "FetchAdd",
    "WaitValue",
    "Park",
    "ParkTimeout",
    "Unpark",
    "YieldCPU",
]


class Request:
    """Base class for all effect requests."""

    __slots__ = ()


class Delay(Request):
    """Consume ``ns`` nanoseconds of CPU time (computation).

    On asymmetric machines the engine scales the duration by the CPU's
    speed factor; memory operations are *not* scaled, matching real AMP
    parts where the memory system is shared.
    """

    __slots__ = ("ns",)

    def __init__(self, ns: int) -> None:
        self.ns = ns


class Load(Request):
    """Read a cell.  Resumes with the value."""

    __slots__ = ("cell",)

    def __init__(self, cell: "Cell") -> None:
        self.cell = cell


class Store(Request):
    """Write a cell.  Resumes with ``None`` once the store is globally visible."""

    __slots__ = ("cell", "value")

    def __init__(self, cell: "Cell", value: Any) -> None:
        self.cell = cell
        self.value = value


class CAS(Request):
    """Atomic compare-and-swap.  Resumes with ``(success, old_value)``.

    A failed CAS still pays the full line-transfer cost — this is what
    makes naive test-and-set locks collapse under contention.
    """

    __slots__ = ("cell", "expected", "new")

    def __init__(self, cell: "Cell", expected: Any, new: Any) -> None:
        self.cell = cell
        self.expected = expected
        self.new = new


class Xchg(Request):
    """Atomic exchange.  Resumes with the previous value."""

    __slots__ = ("cell", "value")

    def __init__(self, cell: "Cell", value: Any) -> None:
        self.cell = cell
        self.value = value


class FetchAdd(Request):
    """Atomic fetch-and-add.  Resumes with the previous value."""

    __slots__ = ("cell", "delta")

    def __init__(self, cell: "Cell", delta: int) -> None:
        self.cell = cell
        self.delta = delta


class WaitValue(Request):
    """Spin locally until ``pred(value)`` holds for the cell.

    Models local spinning on a cached line (MCS-style): the spinner
    occupies its CPU but generates no coherence traffic until a writer
    modifies the line, at which point the spinner pays one line transfer
    to observe the new value.  Resumes with the observed value.
    """

    __slots__ = ("cell", "pred")

    def __init__(self, cell: "Cell", pred: Callable[[Any], bool]) -> None:
        self.cell = cell
        self.pred = pred


class Park(Request):
    """Deschedule until another task issues :class:`Unpark` for us.

    Futex semantics: if an unpark token is already pending, the park
    consumes it and returns immediately (no lost wake-ups).  Resumes
    with ``True``.
    """

    __slots__ = ()


class ParkTimeout(Request):
    """Park with a timeout.  Resumes with ``True`` if woken, ``False`` on timeout."""

    __slots__ = ("ns",)

    def __init__(self, ns: int) -> None:
        self.ns = ns


class Unpark(Request):
    """Wake ``task`` (or leave it a token if it is not parked yet)."""

    __slots__ = ("task",)

    def __init__(self, task: "Task") -> None:
        self.task = task


class YieldCPU(Request):
    """Voluntarily yield the CPU to another runnable task, if any."""

    __slots__ = ()
