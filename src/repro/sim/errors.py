"""Exception hierarchy for the simulation substrate.

Every error raised by :mod:`repro.sim` derives from :class:`SimError` so
callers can catch simulator failures without masking programming errors in
their own workload code.
"""

from __future__ import annotations

__all__ = [
    "SimError",
    "DeadlockError",
    "SimLimitError",
    "TaskError",
    "TopologyError",
]


class SimError(Exception):
    """Base class for all simulator errors."""


class DeadlockError(SimError):
    """The event queue drained while tasks were still blocked.

    In a discrete-event simulation there is no such thing as a livelock:
    if no event can ever resume a blocked task, the run is dead.  The
    engine detects this and reports which tasks were stuck and on what.
    """

    def __init__(self, message: str, blocked_tasks=()) -> None:
        super().__init__(message)
        #: Tasks that were still blocked when the event queue drained.
        self.blocked_tasks = tuple(blocked_tasks)


class SimLimitError(SimError):
    """A configured safety limit (max events, max sim time) was exceeded."""


class TaskError(SimError):
    """A simulated task misused the effect protocol.

    Raised, for example, when a task yields an object that is not a
    request, or parks twice without an intervening wake-up token.
    """


class TopologyError(SimError):
    """An invalid machine topology was requested (e.g. cpu id out of range)."""
