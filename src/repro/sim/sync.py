"""Kernel-style synchronization building blocks on top of park/unpark.

These are the substrate equivalents of Linux's wait queues and
completion variables.  Blocking lock algorithms (:mod:`repro.locks.rwsem`,
:mod:`repro.locks.mutex`) build their sleeping paths on
:class:`WaitQueue`; workloads use :class:`Barrier` to line tasks up at a
starting gate so throughput windows are clean.

Everything here is generator-based: methods that can block are
generators and must be driven with ``yield from``.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Iterator, List, Optional

from .ops import Delay, Park, ParkTimeout, Unpark
from .task import Task

__all__ = ["WaitQueue", "Barrier", "Completion"]


class WaitQueue:
    """A FIFO queue of sleeping tasks (cf. ``wait_queue_head_t``).

    The caller is responsible for its own "condition re-check after
    wake-up" loop, exactly like a kernel wait queue.  The queue itself is
    simulator-internal state (a Python deque): real kernels protect the
    queue with an internal spinlock whose cost is tiny compared to
    parking, so we fold it into the park/wake costs already charged by
    the engine.
    """

    def __init__(self, name: str = "") -> None:
        self.name = name
        self._sleepers: Deque[Task] = deque()

    def __len__(self) -> int:
        return len(self._sleepers)

    def sleep(self, task: Task, timeout_ns: Optional[int] = None) -> Iterator:
        """Block the task until :meth:`wake_one`/`wake_all` picks it.

        Yields ``True`` if woken, ``False`` on timeout.
        """
        self._sleepers.append(task)
        if timeout_ns is None:
            woken = yield Park()
        else:
            woken = yield ParkTimeout(timeout_ns)
        if not woken:
            # Timed out: remove ourselves if still queued.
            try:
                self._sleepers.remove(task)
            except ValueError:
                pass
        return woken

    def wake_one(self, waker: Task) -> Iterator:
        """Wake the oldest sleeper (no-op when empty)."""
        if self._sleepers:
            target = self._sleepers.popleft()
            yield Unpark(target)

    def wake_all(self, waker: Task) -> Iterator:
        """Wake every sleeper."""
        while self._sleepers:
            target = self._sleepers.popleft()
            yield Unpark(target)

    def peek_all(self) -> List[Task]:
        return list(self._sleepers)


class Barrier:
    """A single-use start barrier for ``n`` tasks.

    The n-th arriver wakes everyone; used by the workload runner so every
    worker starts its measurement loop at (nearly) the same simulated
    instant.
    """

    def __init__(self, parties: int, name: str = "barrier") -> None:
        if parties <= 0:
            raise ValueError("parties must be positive")
        self.parties = parties
        self.name = name
        self._arrived = 0
        self._queue = WaitQueue(name)

    def wait(self, task: Task) -> Iterator:
        self._arrived += 1
        if self._arrived >= self.parties:
            yield from self._queue.wake_all(task)
            return
        while self._arrived < self.parties:
            yield from self._queue.sleep(task)


class Completion:
    """One-shot event (cf. ``struct completion``)."""

    def __init__(self, name: str = "completion") -> None:
        self.name = name
        self.done = False
        self._queue = WaitQueue(name)

    def wait(self, task: Task) -> Iterator:
        while not self.done:
            yield from self._queue.sleep(task)

    def complete_all(self, task: Task) -> Iterator:
        self.done = True
        yield from self._queue.wake_all(task)

    def poll_wait(self, task: Task, interval_ns: int = 1000) -> Iterator:
        """Spin-wait variant for tasks that must not park."""
        while not self.done:
            yield Delay(interval_ns)
