"""Deterministic discrete-event multicore simulator.

This package is the hardware-and-kernel substrate for the reproduction:
a NUMA machine model (:mod:`.topology`), a cache-line coherence cost
model (:mod:`.cache`), generator-based tasks (:mod:`.task`), an event
engine with per-CPU scheduling (:mod:`.engine`), and kernel-style wait
primitives (:mod:`.sync`).

Quick example::

    from repro.sim import Engine, Topology, ops

    topo = Topology(sockets=2, cores_per_socket=4)
    eng = Engine(topo, seed=42)
    word = eng.cell(0, name="lock-word")

    def worker(task):
        ok, old = yield ops.CAS(word, 0, task.tid)
        yield ops.Delay(100)
        yield ops.Store(word, 0)

    eng.spawn(worker, cpu=0)
    eng.run()
"""

from . import ops
from .cache import CacheModel, Cell
from .engine import Engine
from .errors import DeadlockError, SimError, SimLimitError, TaskError, TopologyError
from .stats import Counter, Histogram, StatsRegistry, Summary
from .sync import Barrier, Completion, WaitQueue
from .task import Task, TaskState
from .topology import LatencyModel, Topology, amp_machine, paper_machine

__all__ = [
    "ops",
    "CacheModel",
    "Cell",
    "Engine",
    "DeadlockError",
    "SimError",
    "SimLimitError",
    "TaskError",
    "TopologyError",
    "Counter",
    "Histogram",
    "StatsRegistry",
    "Summary",
    "Barrier",
    "Completion",
    "WaitQueue",
    "Task",
    "TaskState",
    "LatencyModel",
    "Topology",
    "amp_machine",
    "paper_machine",
]
