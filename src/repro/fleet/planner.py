"""Rollout planning: placement map + submission → per-kernel waves.

The planner answers three questions the single-kernel canary engine
never had to:

* **order** — which kernels see the policy first?  Ascending blast
  radius: the canary wave is the kernels where a bad policy hurts the
  least, and the hottest kernels patch last, after the fleet verdict
  has had the most chances to stop a regression.
* **width** — how many kernels patch at once?  Bounded by
  ``max_concurrent_kernels`` so a surprise regression is contained to
  one wave's worth of kernels.
* **canary locks** — which lock instances inside each kernel carry the
  canary?  A placement-aware subset: one lock per ``(socket,
  contention-class)`` group, round-robin until the quota is met, so a
  NUMA-pathological policy cannot hide by canarying only same-socket
  locks.

A :class:`FleetPlan` is pure data — (de)serializable so the coordinator
can journal it and a recovering coordinator can rebuild the exact wave
structure it crashed under.
"""

from __future__ import annotations

import math
import warnings
from typing import Dict, List, NamedTuple, Optional

from ..controlplane.lifecycle import ControlPlaneError
from .placement import PlacementMap

__all__ = [
    "FleetPlan",
    "FleetPlanError",
    "RolloutPlanner",
    "StalePlacementWarning",
    "WaveSpec",
]

VERDICT_MODES = ("any-breach", "quorum")


class FleetPlanError(ControlPlaneError):
    """The planner cannot produce a sane plan from these inputs."""


class StalePlacementWarning(UserWarning):
    """Planning proceeded from a placement map past its freshness bound.

    The plan is still produced — wave ordering from a stale map is
    suboptimal, not unsafe — but the operator should re-learn.  (The
    ROADMAP's full freshness story — periodic re-learn with hysteresis —
    builds on this hook.)
    """


class WaveSpec(NamedTuple):
    """One wave: the kernels patched together, then baked together."""

    index: int
    kernels: List[str]
    #: True for the canary wave(s) that gate the rest of the fleet.
    canary: bool
    bake_ns: int

    def describe(self) -> str:
        tag = "canary" if self.canary else "cohort"
        return f"wave {self.index} ({tag}): {', '.join(self.kernels)}"


class FleetPlan:
    """A fully materialized rollout: waves plus per-kernel canary locks."""

    def __init__(
        self,
        policy: str,
        waves: List[WaveSpec],
        canary_locks: Dict[str, List[str]],
        verdict_mode: str = "any-breach",
        quorum: float = 1.0,
    ) -> None:
        self.policy = policy
        self.waves = waves
        self.canary_locks = canary_locks
        self.verdict_mode = verdict_mode
        self.quorum = quorum

    def kernels(self) -> List[str]:
        return [name for wave in self.waves for name in wave.kernels]

    def wave_of(self, kernel: str) -> Optional[int]:
        for wave in self.waves:
            if kernel in wave.kernels:
                return wave.index
        return None

    # ------------------------------------------------------------------
    def serialize(self) -> Dict[str, object]:
        return {
            "policy": self.policy,
            "verdict_mode": self.verdict_mode,
            "quorum": self.quorum,
            "waves": [
                {
                    "index": w.index,
                    "kernels": list(w.kernels),
                    "canary": w.canary,
                    "bake_ns": w.bake_ns,
                }
                for w in self.waves
            ],
            "canary_locks": {k: list(v) for k, v in self.canary_locks.items()},
        }

    @classmethod
    def deserialize(cls, data: Dict[str, object]) -> "FleetPlan":
        waves = [
            WaveSpec(
                index=int(w["index"]),
                kernels=list(w["kernels"]),
                canary=bool(w["canary"]),
                bake_ns=int(w["bake_ns"]),
            )
            for w in data["waves"]
        ]
        return cls(
            policy=str(data["policy"]),
            waves=waves,
            canary_locks={k: list(v) for k, v in dict(data["canary_locks"]).items()},
            verdict_mode=str(data.get("verdict_mode", "any-breach")),
            quorum=float(data.get("quorum", 1.0)),
        )

    def describe(self) -> str:
        lines = [
            f"fleet plan for {self.policy!r} "
            f"({self.verdict_mode}, quorum={self.quorum:.2f})"
        ]
        for wave in self.waves:
            lines.append("  " + wave.describe())
            for kernel in wave.kernels:
                locks = self.canary_locks.get(kernel, [])
                lines.append(f"    {kernel}: canary on {', '.join(locks) or '<plan>'}")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (
            f"FleetPlan({self.policy!r}, {len(self.waves)} waves, "
            f"{len(self.kernels())} kernels)"
        )


class RolloutPlanner:
    """Turns a placement map into a :class:`FleetPlan`.

    Args:
        max_concurrent_kernels: wave width for non-canary cohorts.
        canary_kernels: how many kernels form the gating first wave.
        bake_ns: simulated time each wave bakes before the next starts.
        verdict_mode: "any-breach" (one kernel breach halts the fleet)
            or "quorum" (halt only when the passing fraction drops
            below ``quorum``).
        quorum: required passing fraction for "quorum" mode.
        canary_fraction: fraction of a kernel's matched locks carrying
            the canary (subject to ``min_canary_locks``).
        min_canary_locks: lower bound on canary subset size per kernel.
        max_placement_age_ns: freshness bound on the placement map.
            ``None`` (the default) disables the check; otherwise
            :meth:`plan` emits a :class:`StalePlacementWarning` when the
            map's learn window closed more than this long before the
            caller's ``now_ns``.
    """

    def __init__(
        self,
        max_concurrent_kernels: int = 2,
        canary_kernels: int = 1,
        bake_ns: int = 200_000,
        verdict_mode: str = "any-breach",
        quorum: float = 1.0,
        canary_fraction: float = 0.25,
        min_canary_locks: int = 1,
        max_placement_age_ns: Optional[int] = None,
    ) -> None:
        if max_concurrent_kernels < 1:
            raise FleetPlanError("max_concurrent_kernels must be >= 1")
        if canary_kernels < 1:
            raise FleetPlanError("canary_kernels must be >= 1")
        if verdict_mode not in VERDICT_MODES:
            raise FleetPlanError(
                f"verdict_mode must be one of {VERDICT_MODES}, got {verdict_mode!r}"
            )
        if not 0.0 < quorum <= 1.0:
            raise FleetPlanError("quorum must be in (0, 1]")
        self.max_concurrent_kernels = max_concurrent_kernels
        self.canary_kernels = canary_kernels
        self.bake_ns = bake_ns
        self.verdict_mode = verdict_mode
        self.quorum = quorum
        self.canary_fraction = canary_fraction
        self.min_canary_locks = min_canary_locks
        self.max_placement_age_ns = max_placement_age_ns

    # ------------------------------------------------------------------
    def plan(
        self,
        policy: str,
        placement: PlacementMap,
        now_ns: Optional[int] = None,
    ) -> FleetPlan:
        if self.max_placement_age_ns is not None and now_ns is not None:
            if placement.is_stale(now_ns, self.max_placement_age_ns):
                learned = placement.learned_at_ns
                age = "unknown" if learned is None else f"{now_ns - learned}ns"
                warnings.warn(
                    f"placement map is stale (age {age} > "
                    f"{self.max_placement_age_ns}ns); planning {policy!r} "
                    f"from it anyway — consider re-learning",
                    StalePlacementWarning,
                    stacklevel=2,
                )
        kernels = placement.kernels()
        if not kernels:
            raise FleetPlanError(
                f"placement map matches no kernels; nothing to roll {policy!r} to"
            )
        ranked = sorted(kernels, key=lambda k: (placement.blast_radius(k), k))

        waves: List[WaveSpec] = []
        n_canary = min(self.canary_kernels, len(ranked))
        waves.append(
            WaveSpec(index=0, kernels=ranked[:n_canary], canary=True, bake_ns=self.bake_ns)
        )
        rest = ranked[n_canary:]
        for start in range(0, len(rest), self.max_concurrent_kernels):
            waves.append(
                WaveSpec(
                    index=len(waves),
                    kernels=rest[start : start + self.max_concurrent_kernels],
                    canary=False,
                    bake_ns=self.bake_ns,
                )
            )

        canary_locks = {
            kernel: self.canary_subset(placement.for_kernel(kernel))
            for kernel in ranked
        }
        return FleetPlan(
            policy=policy,
            waves=waves,
            canary_locks=canary_locks,
            verdict_mode=self.verdict_mode,
            quorum=self.quorum,
        )

    def replan_remaining(
        self,
        plan: FleetPlan,
        placement: PlacementMap,
        next_wave_index: int,
    ) -> FleetPlan:
        """Re-wave the unexecuted tail of ``plan`` against a fresh map.

        Waves with ``index < next_wave_index`` are already executed (or
        in flight) and kept verbatim — a replan must never reorder the
        past.  The remaining kernels are re-ranked by the refreshed
        map's blast radius (kernels the new map no longer sees rank
        first, at radius 0: nothing known to be at stake on them) and
        re-waved at ``max_concurrent_kernels`` width; no new canary wave
        is minted — the original canary already gated this rollout.
        Canary-lock subsets for remaining kernels are refreshed from the
        new placements where the map has any, and kept otherwise.
        """
        done = [w for w in plan.waves if w.index < next_wave_index]
        done_kernels = {k for w in done for k in w.kernels}
        remaining = [k for k in plan.kernels() if k not in done_kernels]
        ranked = sorted(remaining, key=lambda k: (placement.blast_radius(k), k))

        waves = list(done)
        for start in range(0, len(ranked), self.max_concurrent_kernels):
            waves.append(
                WaveSpec(
                    index=len(waves),
                    kernels=ranked[start : start + self.max_concurrent_kernels],
                    canary=False,
                    bake_ns=self.bake_ns,
                )
            )

        canary_locks = dict(plan.canary_locks)
        for kernel in ranked:
            placements = placement.for_kernel(kernel)
            if placements:
                canary_locks[kernel] = self.canary_subset(placements)
        return FleetPlan(
            policy=plan.policy,
            waves=waves,
            canary_locks=canary_locks,
            verdict_mode=plan.verdict_mode,
            quorum=plan.quorum,
        )

    def canary_subset(self, placements) -> List[str]:
        """Pick a placement-diverse canary subset for one kernel.

        Locks are grouped by ``(socket, contention class)`` and drawn
        round-robin across groups, hottest groups first — the subset
        spans sockets and contention classes instead of clustering
        wherever the name sort happens to land.
        """
        if not placements:
            raise FleetPlanError("cannot pick a canary subset from zero locks")
        total = len(placements)
        want = max(self.min_canary_locks, math.ceil(total * self.canary_fraction))
        want = min(want, total)

        groups: Dict[object, List] = {}
        for p in placements:
            groups.setdefault((p.socket, p.contention), []).append(p)
        # Hottest groups first so a size-1 subset still canaries the
        # riskiest placement; inside a group, stable by name.
        ordered = sorted(
            groups.values(),
            key=lambda g: (-max(p.weight for p in g), g[0].socket, g[0].contention),
        )
        for group in ordered:
            group.sort(key=lambda p: p.lock_name)

        subset: List[str] = []
        cursor = 0
        while len(subset) < want:
            group = ordered[cursor % len(ordered)]
            if group:
                subset.append(group.pop(0).lock_name)
            cursor += 1
            if all(not g for g in ordered):
                break
        return subset
