"""Fleet sharding: one control plane driving many kernels.

A single :class:`~repro.controlplane.Concordd` tunes the locks of one
kernel; production control planes drive *fleets*.  This package shards
the control plane without changing its per-kernel safety story — every
kernel keeps its own daemon, journal shard, SLO guard, and admission
budgets — and adds the fleet-level decision layer on top:

* :mod:`.manager` — :class:`FleetManager`: the membership directory
  (named :class:`FleetMember`\\ s registered/deregistered at runtime,
  each owning a kernel + Concord + daemon + journal shard);
* :mod:`.placement` — :class:`PlacementMap`: where each target lock
  instance lives (kernel, dominant socket, contention class), learned
  from per-kernel profiler sessions plus a socket-counting probe;
* :mod:`.planner` — :class:`RolloutPlanner`: placement map + policy →
  :class:`FleetPlan`: canary kernels first, then cohorts ordered by
  blast radius, bounded by max-concurrent-kernels, with per-kernel
  placement-aware canary lock subsets;
* :mod:`.coordinator` — :class:`FleetCoordinator`: executes a plan
  wave-by-wave, aggregates per-kernel canary verdicts into a fleet
  verdict (any-breach or quorum), halts + reverts every patched kernel
  on breach, and journals fleet transitions so a restarted coordinator
  resumes or unwinds a mid-wave rollout — never a split fleet;
* :mod:`.health` — :class:`HealthMonitor`: per-member liveness probes
  (daemon responds, kernel clock advances, journal shard appendable)
  escalating HEALTHY → SUSPECT → DEAD, plus the degraded-mode
  vocabulary (:class:`MemberUnreachable`, :class:`EpochFenced`) the
  coordinator speaks when members die mid-rollout: quarantine, epoch
  fencing, and journaled revert debt drained on reinstatement.
"""

from .coordinator import (
    FleetCoordinator,
    FleetRollout,
    FleetRolloutState,
    FleetVerdict,
)
from .health import (
    EpochFenced,
    HealthMonitor,
    HealthState,
    MemberUnreachable,
    ProbeRecord,
)
from .manager import FleetError, FleetManager, FleetMember
from .placement import LockPlacement, PlacementMap, PlacementRefresher
from .planner import (
    FleetPlan,
    FleetPlanError,
    RolloutPlanner,
    StalePlacementWarning,
    WaveSpec,
)

__all__ = [
    "FleetError",
    "FleetManager",
    "FleetMember",
    "LockPlacement",
    "PlacementMap",
    "PlacementRefresher",
    "FleetPlan",
    "FleetPlanError",
    "RolloutPlanner",
    "StalePlacementWarning",
    "WaveSpec",
    "FleetCoordinator",
    "FleetRollout",
    "FleetRolloutState",
    "FleetVerdict",
    "EpochFenced",
    "HealthMonitor",
    "HealthState",
    "MemberUnreachable",
    "ProbeRecord",
]
