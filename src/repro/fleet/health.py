"""Fleet health: liveness probes, failure thresholds, and state tracking.

PR 3 gave the fleet a coordinator that survives *its own* crash; this
module is the other half of the failure model — members that stop
answering.  A :class:`HealthMonitor` probes each member the way an
external watchdog would, along three independent axes:

* **daemon responds** — :meth:`Concordd.ping` raises if the member's
  control-plane process is detached/dead;
* **kernel clock advances** — the member's simulated kernel is run
  forward a tiny bounded window; a wedged kernel whose clock cannot
  move fails the probe (the ``fleet.health.probe`` site models the
  probe itself timing out, i.e. a frozen or partitioned member);
* **journal shard appendable** — a heartbeat entry is appended to the
  member's journal (the ``fleet.health.heartbeat`` site models the
  shard's storage going dark while the daemon still answers).

A fourth axis is integrity: when a :class:`~repro.storage.scrub.\
Scrubber` is wired in, :meth:`probe_all` also scrubs each member's
store on a cadence (``scrub_every`` rounds).  A scrub that finds rot
the scrubber could not heal (no quorum peer to repair from — always
the case for an unreplicated shard) counts as a failed probe and walks
the same SUSPECT → DEAD escalation, so persistent corruption reaches
the coordinator's quarantine path through the very ``on_dead`` hook
crash detection already uses.

Consecutive probe failures escalate ``HEALTHY → SUSPECT → DEAD`` at
configurable thresholds; one success resets to HEALTHY.  The monitor
itself only *observes* — acting on a DEAD member (quarantine, revert
debt) is the coordinator's job, wired through the ``on_dead`` callback
so policy stays above mechanism.

:class:`MemberUnreachable` / :class:`EpochFenced` live here too: they
are the vocabulary the coordinator's degraded path speaks, and the
fence is conceptually a health property (a member whose epoch moved is
not the member you planned against, however alive it looks).
"""

from __future__ import annotations

import enum
from collections import deque
from typing import Callable, Deque, Dict, List, NamedTuple, Optional

from ..controlplane.journal import JournalError
from ..controlplane.lifecycle import ControlPlaneError
from ..faults import SITE_FLEET_PROBE, SITE_REPLICATION_READ, fault_point
from ..netsim import Fabric, NetError
from ..replication.site import ReplicationError, SiteFault, SiteState
from .manager import FleetError, FleetManager, FleetMember

__all__ = [
    "EpochFenced",
    "HealthMonitor",
    "HealthState",
    "MemberUnreachable",
    "ProbeRecord",
]


class MemberUnreachable(FleetError):
    """A fleet member did not respond to a coordinator operation."""


class EpochFenced(MemberUnreachable):
    """The member's epoch moved since the coordinator observed it.

    It restarted or was reinstated under the operation, so any wave
    state the coordinator holds about it is stale.  Never retried —
    a rejoined member must be re-planned, not blindly patched.
    """


class HealthState(enum.Enum):
    HEALTHY = "healthy"
    SUSPECT = "suspect"
    DEAD = "dead"

    def __str__(self) -> str:
        return self.name


class ProbeRecord(NamedTuple):
    """One probe of one member."""

    time_ns: int
    ok: bool
    epoch: int
    detail: str


class HealthMonitor:
    """Per-member liveness probing with escalation thresholds.

    Args:
        fleet: the membership directory to watch.
        probe_window_ns: how far the clock-advance check runs the
            member's kernel (the probe's simulated time budget).
        suspect_after: consecutive failures before HEALTHY → SUSPECT.
        dead_after: consecutive failures before → DEAD.
        history_limit: probes retained per member (a heartbeat history
            ring, newest last).
        on_dead: ``callback(name, cause)`` fired once per HEALTHY/
            SUSPECT → DEAD transition — typically
            :meth:`FleetCoordinator.quarantine`.
        on_site_dead: ``callback(site_name, cause)`` fired when a
            *replica site* probed via :meth:`probe_sites` escalates to
            DEAD.  Defaults to failing the site in its group (which
            fails over if it was the leader) — the replication twin of
            quarantining a dead member.
        scrubber: optional :class:`~repro.storage.scrub.Scrubber`; when
            set, :meth:`probe_all` scrubs each member's store every
            ``scrub_every`` rounds and unhealed findings count as
            failed probes.
        scrub_every: scrub cadence, in :meth:`probe_all` rounds.
        fabric: optional :class:`~repro.netsim.Fabric` probes traverse
            (``endpoint`` → member / site name).  A partitioned link is
            a failed probe — which is the point: a monitor on the wrong
            side of a partition walks the member to DEAD exactly as an
            external watchdog would, however alive the member is.
        endpoint: the monitor's own name on the fabric.
    """

    def __init__(
        self,
        fleet: FleetManager,
        probe_window_ns: int = 1_000,
        suspect_after: int = 1,
        dead_after: int = 3,
        history_limit: int = 64,
        on_dead: Optional[Callable[[str, str], object]] = None,
        on_site_dead: Optional[Callable[[str, str], object]] = None,
        scrubber=None,
        scrub_every: int = 1,
        fabric: Optional[Fabric] = None,
        endpoint: str = "health-monitor",
    ) -> None:
        if not 1 <= suspect_after <= dead_after:
            raise FleetError(
                "thresholds must satisfy 1 <= suspect_after <= dead_after, "
                f"got {suspect_after}/{dead_after}"
            )
        self.fleet = fleet
        self.probe_window_ns = probe_window_ns
        self.suspect_after = suspect_after
        self.dead_after = dead_after
        self.history_limit = history_limit
        self.on_dead = on_dead
        self.on_site_dead = on_site_dead
        if scrub_every < 1:
            raise FleetError(f"scrub_every must be >= 1, got {scrub_every}")
        self.scrubber = scrubber
        self.scrub_every = scrub_every
        self.fabric = fabric
        self.endpoint = endpoint
        self._rounds = 0
        self._history: Dict[str, Deque[ProbeRecord]] = {}
        self._failures: Dict[str, int] = {}
        self._states: Dict[str, HealthState] = {}

    # ------------------------------------------------------------------
    # Probing
    # ------------------------------------------------------------------
    def probe(self, name: str) -> ProbeRecord:
        """Probe one member and update its health state."""
        ok, detail, when, epoch = self._probe_once(name)
        record = ProbeRecord(time_ns=when, ok=ok, epoch=epoch, detail=detail)
        return self._note(name, record, self.on_dead)

    def _note(
        self,
        key: str,
        record: ProbeRecord,
        on_dead: Optional[Callable[[str, str], object]],
    ) -> ProbeRecord:
        """Shared escalation: record one probe of ``key`` (a member or a
        replica site) and walk its HEALTHY → SUSPECT → DEAD machine."""
        self._history.setdefault(key, deque(maxlen=self.history_limit)).append(record)
        if record.ok:
            self._failures[key] = 0
            self._states[key] = HealthState.HEALTHY
            return record
        failures = self._failures.get(key, 0) + 1
        self._failures[key] = failures
        previous = self.state(key)
        if failures >= self.dead_after:
            self._states[key] = HealthState.DEAD
        elif failures >= self.suspect_after:
            self._states[key] = HealthState.SUSPECT
        if (
            self._states[key] is HealthState.DEAD
            and previous is not HealthState.DEAD
            and on_dead is not None
        ):
            on_dead(key, record.detail)
        return record

    def probe_all(
        self,
        include_sites: bool = False,
        include_scrub: Optional[bool] = None,
    ) -> Dict[str, ProbeRecord]:
        """Probe every in-service member (quarantined members are
        already out of rotation; probing them proves nothing).  With
        ``include_sites`` the replica sites of every replicated member
        are probed too (keyed by site name, e.g. ``k0/site1``).

        With a scrubber wired in, every ``scrub_every``-th round also
        runs an integrity scrub per member (``include_scrub`` forces it
        on or off for this round); a scrub the scrubber could not heal
        is a failed probe.
        """
        records = {name: self.probe(name) for name in self.fleet.active_names()}
        if include_sites:
            for name in self.fleet.active_names():
                records.update(self.probe_sites(name))
        self._rounds += 1
        scrub = (
            self.scrubber is not None and self._rounds % self.scrub_every == 0
            if include_scrub is None
            else include_scrub and self.scrubber is not None
        )
        if scrub:
            for name, record in self.scrub_all().items():
                records[f"{name}:scrub"] = record
        return records

    def scrub_all(self) -> Dict[str, ProbeRecord]:
        """Scrub every active member's store; unhealed findings escalate.

        Each member's scrub verdict rides the member's own probe ring:
        a clean (or self-healed) scrub is a successful probe, rot the
        scrubber could not repair is a failed one — walked through the
        same SUSPECT → DEAD machine, so the coordinator's quarantine
        hook fires for persistent corruption exactly as it does for a
        dead daemon.
        """
        if self.scrubber is None:
            return {}
        records: Dict[str, ProbeRecord] = {}
        for name in self.fleet.active_names():
            member: FleetMember = self.fleet.member(name)
            report = self.scrubber.scrub_member(member)
            ok = report.ok or report.healed
            if ok:
                detail = "scrub: ok" if report.ok else (
                    f"scrub: repaired {', '.join(report.repaired)}"
                )
            else:
                detail = f"scrub: {report.findings[0]}"
            record = ProbeRecord(
                time_ns=member.kernel.now, ok=ok, epoch=member.epoch, detail=detail
            )

            # Scrub verdicts get their own escalation ring (keyed
            # ``<member>:scrub``): a member whose liveness probes pass
            # but whose store keeps failing scrubs must still walk to
            # DEAD, which an ok liveness probe would otherwise reset.
            def scrub_dead(key: str, cause: str, name: str = name) -> None:
                if self.on_dead is not None:
                    self.on_dead(name, cause)

            records[name] = self._note(f"{name}:scrub", record, scrub_dead)
        return records

    # ------------------------------------------------------------------
    # Replica-site probing
    # ------------------------------------------------------------------
    def probe_sites(self, name: str) -> Dict[str, ProbeRecord]:
        """Probe each replica site behind member ``name``.

        Site probes ride the same escalation machinery as member probes
        (same thresholds, same history rings, keyed by site name); a
        site that escalates to DEAD is failed in its group by default —
        which elects a new leader if the casualty held the lease — or
        handed to ``on_site_dead`` when configured.  Members without a
        replica group probe as an empty dict.
        """
        member: FleetMember = self.fleet.member(name)
        group = getattr(member, "replica_group", None)
        if group is None:
            return {}

        def site_dead(key: str, cause: str) -> None:
            if self.on_site_dead is not None:
                self.on_site_dead(key, cause)
            else:
                group.fail_site(key, cause=cause)

        records: Dict[str, ProbeRecord] = {}
        for site in list(group.sites):
            ok, detail = self._probe_site_once(site)
            record = ProbeRecord(
                time_ns=member.kernel.now, ok=ok, epoch=member.epoch, detail=detail
            )
            records[site.name] = self._note(site.name, record, site_dead)
        return records

    def _probe_site_once(self, site) -> "tuple[bool, str]":
        if site.state is SiteState.DOWN:
            if getattr(site, "down_partitioned", False):
                return False, "site down (partitioned, log intact)"
            return False, "site down"
        if self.fabric is not None:
            try:
                self.fabric.deliver(self.endpoint, site.name, op="site-probe")
            except NetError as exc:
                return False, f"site partitioned: {exc}"
        try:
            fault_point(
                SITE_REPLICATION_READ,
                default_exc=SiteFault,
                replica=site.name,
                probe=True,
            )
        except ReplicationError as exc:
            return False, f"site probe: {exc}"
        if not site.readable:
            return True, "recovering (read-gated)"
        return True, "ok"

    def _probe_once(self, name: str):
        if name not in self.fleet:
            return False, "not registered", 0, -1
        member: FleetMember = self.fleet.member(name)
        epoch = member.epoch
        when = member.kernel.now
        try:
            stall = fault_point(
                SITE_FLEET_PROBE,
                default_exc=MemberUnreachable,
                member=name,
            )
        except MemberUnreachable as exc:
            return False, f"probe: {exc}", when, epoch
        if stall:
            # The probe window elapsed but the member's clock never
            # moved: a wedged kernel, reported as such.
            return False, f"probe: clock frozen for {stall}ns", when, epoch
        if self.fabric is not None:
            try:
                latency = self.fabric.deliver(
                    self.endpoint, name, op="probe", now_ns=member.kernel.now
                )
            except NetError as exc:
                return False, f"probe: partitioned: {exc}", when, epoch
            if latency:
                member.kernel.run(until=member.kernel.now + latency)
        try:
            member.daemon.ping()
        except ControlPlaneError as exc:
            return False, f"daemon: {exc}", when, epoch
        before = member.kernel.now
        member.kernel.run(until=before + self.probe_window_ns)
        if member.kernel.now <= before:
            return False, "kernel clock did not advance", member.kernel.now, epoch
        if member.journal is not None:
            try:
                member.journal.heartbeat(member.kernel.now, member=name, epoch=epoch)
            except JournalError as exc:
                return False, f"heartbeat: {exc}", member.kernel.now, epoch
        return True, "ok", member.kernel.now, epoch

    # ------------------------------------------------------------------
    # State
    # ------------------------------------------------------------------
    def state(self, name: str) -> HealthState:
        """Current health state (unprobed members are presumed HEALTHY)."""
        return self._states.get(name, HealthState.HEALTHY)

    def failures(self, name: str) -> int:
        """Consecutive probe failures since the last success."""
        return self._failures.get(name, 0)

    def history(self, name: str) -> List[ProbeRecord]:
        return list(self._history.get(name, ()))

    def forget(self, name: str) -> None:
        """Drop all state for a departed member."""
        self._history.pop(name, None)
        self._failures.pop(name, None)
        self._states.pop(name, None)

    def describe(self) -> str:
        header = f"{'member':<10} {'state':<8} {'fails':>5} {'probes':>6}  last"
        rows = [header, "-" * len(header)]
        for name in self.fleet.names():
            history = self._history.get(name, ())
            last = history[-1].detail if history else "<never probed>"
            rows.append(
                f"{name:<10} {self.state(name).name:<8} "
                f"{self.failures(name):>5} {len(history):>6}  {last}"
            )
        return "\n".join(rows)
