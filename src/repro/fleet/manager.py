"""Fleet membership: named kernels and their per-kernel control planes.

A :class:`FleetMember` bundles everything one shard needs — the kernel,
its :class:`~repro.concord.Concord`, and a :class:`Concordd` with its
own journal shard, SLO guard, impl registry, and admission budget.  The
:class:`FleetManager` is the directory: members register and deregister
at runtime, and the coordinator/planner address them by name.

Members are deliberately *independent*: separate simulated clocks,
separate bpffs, separate journals.  Everything cross-kernel (wave
ordering, verdict aggregation, fleet-level recovery) lives above, in
:mod:`repro.fleet.coordinator` — so a member can be run, crashed, and
recovered exactly like a standalone single-kernel daemon.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional

from ..concord.framework import Concord
from ..controlplane.daemon import Concordd
from ..controlplane.lifecycle import ControlPlaneError
from ..kernel.core import Kernel

__all__ = ["FleetError", "FleetManager", "FleetMember"]


class FleetError(ControlPlaneError):
    """Fleet membership misuse (duplicate name, unknown member, ...)."""


class FleetMember:
    """One shard of the fleet: a kernel plus its control plane.

    Args:
        name: fleet-unique member name (``k0``, ``cell-eu-1``, ...).
        kernel: the member's simulated kernel.
        concord: optional existing framework instance (defaults to a
            fresh one over ``kernel``).
        replica_group: optional replica group (duck-typed: anything with
            ``journal()`` and ``fence(epoch)``) backing this member's
            policy store.  When set and no explicit ``journal`` kwarg is
            given, the daemon journals through the group's replicated
            journal, and every restart fences the group's leader lease
            forward alongside the member epoch.
        **daemon_kwargs: forwarded to :class:`Concordd` — guard,
            journal, impl_registry, budget, canary knobs.  Remembered so
            :meth:`restart` can rebuild the daemon after a crash with
            identical configuration.
    """

    def __init__(
        self,
        name: str,
        kernel: Kernel,
        concord: Optional[Concord] = None,
        replica_group=None,
        **daemon_kwargs,
    ) -> None:
        self.name = name
        self.kernel = kernel
        self.concord = concord or Concord(kernel)
        self.replica_group = replica_group
        if replica_group is not None and "journal" not in daemon_kwargs:
            daemon_kwargs["journal"] = replica_group.journal()
        journal = daemon_kwargs.get("journal")
        if journal is not None and getattr(journal, "member", None) is None:
            # Stamp the owning member into the shard so corruption errors
            # name whose journal rotted, not just which file.
            journal.member = name
        self._daemon_kwargs = dict(daemon_kwargs)
        self.daemon = Concordd(self.concord, **self._daemon_kwargs)
        #: Fencing token: bumped on every restart/reinstate, never
        #: reset.  A coordinator that observed epoch N refuses to apply
        #: wave state to the member at epoch N+1 — the member must be
        #: re-planned, not blindly patched.
        self.epoch = 0

    # ------------------------------------------------------------------
    def restart(self) -> Concordd:
        """Model the member's daemon process restarting.

        The old daemon is detached (a dead process journals nothing and
        reacts to nothing); a fresh one is built with the same
        configuration — including the *same* journal object, which for a
        file-backed journal means appending to the same file a restarted
        ``concordd`` would reopen.  The caller decides whether to run
        :meth:`Concordd.recover` on the result.
        """
        if self.daemon is not None and not self.daemon._detached:
            self.daemon.detach()
        self.daemon = Concordd(self.concord, **self._daemon_kwargs)
        self.epoch += 1
        if self.replica_group is not None:
            # The lease epoch rides the member's fencing epoch: any
            # writer holding a pre-restart lease on this member's
            # replica group is rejected (StaleLeaderFenced) exactly as
            # a coordinator holding the pre-restart rollout epoch is
            # rejected (EpochFenced).
            self.replica_group.fence(self.epoch)
        return self.daemon

    @property
    def journal(self):
        return self._daemon_kwargs.get("journal")

    def register_impl(self, impl_name: str, factory) -> None:
        """Register a lock-implementation factory on the live daemon AND
        in the remembered config, so a daemon rebuilt by :meth:`restart`
        can still re-attach a recovered policy by ``impl_name`` (the
        adaptation loop registers its ``culling-cap{N}`` factories this
        way before proposing a cull)."""
        self.daemon.impl_registry[impl_name] = factory
        registry = dict(self._daemon_kwargs.get("impl_registry") or {})
        registry[impl_name] = factory
        self._daemon_kwargs["impl_registry"] = registry

    def select_locks(self, selector: str) -> List[str]:
        return self.kernel.locks.select_names(selector)

    def __repr__(self) -> str:
        return (
            f"FleetMember({self.name!r}, {len(self.kernel.locks)} locks, "
            f"{len(self.daemon.records)} records)"
        )


class FleetManager:
    """The membership directory: register, deregister, look up, select."""

    def __init__(self) -> None:
        self._members: Dict[str, FleetMember] = {}
        #: name -> cause for members pulled out of service.
        self._quarantined: Dict[str, str] = {}

    # ------------------------------------------------------------------
    def register(
        self,
        name: str,
        kernel: Kernel,
        concord: Optional[Concord] = None,
        replica_group=None,
        **daemon_kwargs,
    ) -> FleetMember:
        """Add a kernel to the fleet under ``name``.

        Raises :class:`FleetError` on a duplicate name — member names
        are the unit of addressing in plans and journals, so reusing one
        would corrupt any in-flight rollout.
        """
        if name in self._members:
            raise FleetError(f"fleet member {name!r} is already registered")
        member = FleetMember(
            name, kernel, concord, replica_group=replica_group, **daemon_kwargs
        )
        self._members[name] = member
        return member

    def adopt(self, member: FleetMember) -> FleetMember:
        """Register an externally built :class:`FleetMember`."""
        if member.name in self._members:
            raise FleetError(f"fleet member {member.name!r} is already registered")
        self._members[member.name] = member
        return member

    def deregister(self, name: str, force: bool = False) -> FleetMember:
        """Remove a member from the fleet.

        A member whose daemon still holds live policies is refused
        unless ``force`` — dropping it would orphan installed state that
        no fleet-level rollback could ever reach again.  The departing
        member's daemon is detached either way.
        """
        member = self.member(name)
        live = [r.name for r in member.daemon.records.values() if r.live]
        if live and not force:
            raise FleetError(
                f"fleet member {name!r} still has live policies "
                f"({', '.join(sorted(live))}); withdraw them or pass force=True"
            )
        del self._members[name]
        self._quarantined.pop(name, None)
        if not member.daemon._detached:
            member.daemon.detach()
        return member

    # ------------------------------------------------------------------
    # Quarantine
    # ------------------------------------------------------------------
    def quarantine(self, name: str, cause: str = "") -> FleetMember:
        """Pull ``name`` out of service without deregistering it.

        A quarantined member keeps its kernel, daemon, and installed
        state, but is excluded from placement learning, planning, and
        waves — the coordinator treats it as unreachable and tracks its
        installed policies as revert debt.  Idempotent: re-quarantining
        keeps the original cause.
        """
        member = self.member(name)
        self._quarantined.setdefault(name, cause)
        return member

    def reinstate(self, name: str) -> FleetMember:
        """Return a quarantined member to service.

        The member's epoch is fenced forward (via :meth:`FleetMember.\
restart`): whatever happened while it was out — reboots, manual
        surgery, missed waves — any coordinator still holding its old
        epoch must re-plan rather than resume patching it.  The restart
        also models the operator bouncing the daemon before readmission;
        run :meth:`Concordd.recover` on the result to reattach journaled
        state.
        """
        member = self.member(name)
        if name not in self._quarantined:
            raise FleetError(f"fleet member {name!r} is not quarantined")
        del self._quarantined[name]
        member.restart()
        return member

    def is_quarantined(self, name: str) -> bool:
        return name in self._quarantined

    def quarantined(self) -> Dict[str, str]:
        """``name -> cause`` for every quarantined member."""
        return dict(self._quarantined)

    def active_members(self) -> List[FleetMember]:
        """Members in service: registered and not quarantined."""
        return [m for m in self.members() if m.name not in self._quarantined]

    def active_names(self) -> List[str]:
        return [m.name for m in self.active_members()]

    # ------------------------------------------------------------------
    def member(self, name: str) -> FleetMember:
        try:
            return self._members[name]
        except KeyError:
            raise FleetError(f"no fleet member named {name!r}") from None

    def names(self) -> List[str]:
        return sorted(self._members)

    def members(self) -> List[FleetMember]:
        return [self._members[name] for name in self.names()]

    def select(self, selector: str) -> Dict[str, List[str]]:
        """``member name -> matching lock names`` across the fleet
        (members with no match are omitted)."""
        matches = {}
        for member in self.members():
            names = member.select_locks(selector)
            if names:
                matches[member.name] = names
        return matches

    def restart_all(self) -> None:
        """Restart every member daemon (the whole control plane process
        died; the kernels live on)."""
        for member in self.members():
            member.restart()

    def __contains__(self, name: str) -> bool:
        return name in self._members

    def __len__(self) -> int:
        return len(self._members)

    def __iter__(self) -> Iterator[FleetMember]:
        return iter(self.members())

    def describe(self) -> Dict[str, object]:
        return {
            name: {
                "locks": len(member.kernel.locks),
                "policies": len(member.daemon.records),
                "clients": member.daemon.admission.clients(),
                "epoch": member.epoch,
                "quarantined": name in self._quarantined,
            }
            for name, member in sorted(self._members.items())
        }
