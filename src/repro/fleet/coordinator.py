"""Wave-by-wave plan execution with a fleet-level verdict and journal.

Per-kernel safety is already handled below this layer: each member's
daemon runs its own canary, SLO guard, circuit breaker, and auto
rollback.  The coordinator adds the *cross-kernel* decisions:

* execute a :class:`~repro.fleet.planner.FleetPlan` wave by wave,
  baking each wave before the next starts;
* aggregate per-kernel outcomes into a :class:`FleetVerdict`
  ("any-breach": one breach halts the fleet; "quorum": halt only when
  the passing fraction drops below the plan's quorum);
* on a failed verdict, **halt**: journal the halt first, then revert
  every kernel patched so far to stock — a halted fleet converges to
  all-stock, never to a mix;
* journal fleet transitions (plan, wave-start, kernel-done, wave-done,
  halt, revert, complete) so :meth:`FleetCoordinator.recover` can pick
  up a crashed rollout and either resume the remaining waves or unwind
  the patched ones — but never leave a split fleet.

Journal writes are deliberately best-effort: the fleet journal shrinks
the recovery search space, but correctness never depends on an append
surviving.  A lost entry degrades "resume from wave K+1" into "unwind
everything", which is safe; it can never produce a split fleet.
"""

from __future__ import annotations

import enum
import math
from typing import Callable, Dict, List, NamedTuple, Optional

from ..bpf.errors import BPFError
from ..controlplane.journal import JournalError, PolicyJournal
from ..controlplane.lifecycle import ControlPlaneError, PolicyState, PolicySubmission
from ..faults import SITE_FLEET_REVERT, SITE_FLEET_WAVE, fault_point
from .manager import FleetError, FleetManager, FleetMember
from .planner import FleetPlan

__all__ = ["FleetCoordinator", "FleetRollout", "FleetRolloutState", "FleetVerdict"]

#: ``submission_factory(member) -> PolicySubmission`` — called once per
#: kernel so every member gets fresh specs and maps (BPF maps are
#: per-kernel state and must never be shared across members).
SubmissionFactory = Callable[[FleetMember], PolicySubmission]


class FleetRolloutState(enum.Enum):
    PLANNED = "planned"
    RUNNING = "running"
    COMPLETE = "complete"      # every kernel in the plan is ACTIVE
    HALTED = "halted"          # fleet verdict failed; patched kernels reverted
    UNWOUND = "unwound"        # recovery rolled the partial rollout back

    def __str__(self) -> str:
        return self.name


class FleetVerdict(NamedTuple):
    """Aggregate of per-kernel outcomes under the plan's verdict mode."""

    mode: str
    quorum: float
    passed: List[str]
    breached: List[str]

    @property
    def ok(self) -> bool:
        if self.mode == "any-breach":
            return not self.breached
        total = len(self.passed) + len(self.breached)
        if not total:
            return True
        return len(self.passed) >= math.ceil(self.quorum * total)

    def describe(self) -> str:
        status = "pass" if self.ok else "FAIL"
        return (
            f"fleet verdict [{self.mode}]: {status} "
            f"({len(self.passed)} active, {len(self.breached)} breached"
            + (f", quorum {self.quorum:.2f}" if self.mode == "quorum" else "")
            + ")"
        )


class FleetRollout:
    """Mutable record of one plan execution (or recovery)."""

    def __init__(self, plan: FleetPlan) -> None:
        self.plan = plan
        self.state = FleetRolloutState.PLANNED
        #: kernel name -> final PolicyState name, or "ERROR: ..." text.
        self.outcomes: Dict[str, str] = {}
        self.completed_waves: List[int] = []
        self.halt_cause: Optional[str] = None
        self.reverted: List[str] = []
        self.revert_failures: Dict[str, str] = {}
        self.resumed_from_wave: Optional[int] = None

    def active_kernels(self) -> List[str]:
        return sorted(k for k, s in self.outcomes.items() if s == "ACTIVE")

    def describe(self) -> str:
        lines = [f"fleet rollout {self.plan.policy!r}: {self.state}"]
        for wave in self.plan.waves:
            marks = [
                f"{k}={self.outcomes.get(k, '-')}" for k in wave.kernels
            ]
            done = "done" if wave.index in self.completed_waves else "    "
            lines.append(f"  wave {wave.index} [{done}] {'  '.join(marks)}")
        if self.halt_cause:
            lines.append(f"  halt: {self.halt_cause}")
        if self.reverted:
            lines.append(f"  reverted: {', '.join(self.reverted)}")
        return "\n".join(lines)


class FleetCoordinator:
    """Executes and recovers fleet plans over a :class:`FleetManager`.

    Args:
        fleet: the membership directory.
        journal: the *fleet* journal shard (separate from the members'
            per-kernel policy journals).  ``None`` disables fleet
            journaling — execution still works, but a crashed rollout
            cannot be resumed, only unwound by inspection.
        client_id: control-plane client identity the coordinator uses
            on every member daemon.
    """

    def __init__(
        self,
        fleet: FleetManager,
        journal: Optional[PolicyJournal] = None,
        client_id: str = "fleet-coordinator",
    ) -> None:
        self.fleet = fleet
        self.journal = journal
        self.client_id = client_id
        self._seq = 0

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def execute(
        self,
        plan: FleetPlan,
        submission_factory: SubmissionFactory,
        start_wave: int = 0,
        **rollout_kwargs,
    ) -> FleetRollout:
        """Run ``plan`` wave by wave; returns the rollout record.

        ``rollout_kwargs`` are forwarded to each member daemon's
        :meth:`~repro.controlplane.daemon.Concordd.rollout` (baseline_ns,
        canary_ns, check_every_ns, ...).  Per-kernel workloads must
        already be spawned — the coordinator drives control flow, not
        load generation.
        """
        rollout = FleetRollout(plan)
        rollout.state = FleetRolloutState.RUNNING
        if start_wave == 0:
            # The plan entry is the recovery anchor and the one write
            # that is NOT best-effort: without it a later crash would
            # leave patched kernels no recovery can even see.  Nothing
            # is patched yet, so refusing to start is always safe.
            if self.journal is not None:
                self._seq += 1
                self.journal.append(
                    {
                        "kind": "fleet",
                        "seq": self._seq,
                        "event": "plan",
                        "rollout": plan.policy,
                        "plan": plan.serialize(),
                    }
                )
        else:
            rollout.resumed_from_wave = start_wave
        for wave in plan.waves:
            if wave.index < start_wave:
                # Trust the journal's word for already-completed waves;
                # recover() verified their kernels are ACTIVE.
                rollout.completed_waves.append(wave.index)
                for kernel in wave.kernels:
                    rollout.outcomes.setdefault(kernel, "ACTIVE")
                continue
            stall = fault_point(
                SITE_FLEET_WAVE,
                default_exc=FleetError,
                rollout=plan.policy,
                wave=wave.index,
            )
            self._journal(
                {
                    "event": "wave-start",
                    "rollout": plan.policy,
                    "wave": wave.index,
                    "kernels": list(wave.kernels),
                }
            )
            for kernel in wave.kernels:
                member = self.fleet.member(kernel)
                if stall:
                    member.kernel.run(until=member.kernel.now + stall)
                outcome = self._rollout_on(member, plan, submission_factory, rollout_kwargs)
                rollout.outcomes[kernel] = outcome
                self._journal(
                    {
                        "event": "kernel-done",
                        "rollout": plan.policy,
                        "wave": wave.index,
                        "kernel": kernel,
                        "state": outcome,
                    }
                )
            self._bake(wave, plan, rollout)
            verdict = self.verdict(plan, rollout.outcomes)
            if not verdict.ok:
                self._halt(rollout, verdict.describe())
                return rollout
            rollout.completed_waves.append(wave.index)
            self._journal(
                {
                    "event": "wave-done",
                    "rollout": plan.policy,
                    "wave": wave.index,
                    "verdict": verdict.describe(),
                }
            )
        rollout.state = FleetRolloutState.COMPLETE
        self._journal({"event": "complete", "rollout": plan.policy})
        return rollout

    def _rollout_on(
        self,
        member: FleetMember,
        plan: FleetPlan,
        submission_factory: SubmissionFactory,
        rollout_kwargs: Dict,
    ) -> str:
        """Submit + canary one kernel; the outcome is a PolicyState name
        or an ``ERROR:`` string (per-kernel failures feed the fleet
        verdict instead of aborting the wave)."""
        daemon = member.daemon
        if self.client_id not in daemon.admission.clients():
            daemon.register_client(self.client_id, allowed_selectors=("*",))
        try:
            existing = daemon.records.get(plan.policy)
            if existing is not None and existing.state is PolicyState.ACTIVE:
                return "ACTIVE"  # resume: this kernel survived the crash
            if existing is None or existing.terminal:
                submission = submission_factory(member)
                if submission.name != plan.policy:
                    raise FleetError(
                        f"submission factory produced {submission.name!r} "
                        f"for plan {plan.policy!r}"
                    )
                daemon.submit(self.client_id, submission)
            elif existing.state is not PolicyState.VERIFIED:
                # Live but neither ACTIVE nor VERIFIED: a canary or
                # retirement someone else is mid-flight on — breach it.
                return f"ERROR: record already in flight ({existing.state})"
            record = daemon.rollout(
                plan.policy,
                canary_locks=plan.canary_locks.get(member.name),
                **rollout_kwargs,
            )
            return record.state.name
        except (ControlPlaneError, BPFError) as exc:
            return f"ERROR: {exc}"

    def _bake(self, wave, plan: FleetPlan, rollout: FleetRollout) -> None:
        """Run every kernel patched so far forward ``wave.bake_ns``.

        Bake time is when slow regressions surface: a member's breaker
        or guard may auto-rollback during it, flipping that kernel's
        outcome to ROLLED_BACK before the verdict is taken."""
        if not wave.bake_ns:
            return
        for kernel in rollout.outcomes:
            member = self.fleet.member(kernel)
            member.kernel.run(until=member.kernel.now + wave.bake_ns)
        for kernel in list(rollout.outcomes):
            record = self.fleet.member(kernel).daemon.records.get(plan.policy)
            if record is not None:
                rollout.outcomes[kernel] = record.state.name

    # ------------------------------------------------------------------
    # Verdict + halt
    # ------------------------------------------------------------------
    def verdict(self, plan: FleetPlan, outcomes: Dict[str, str]) -> FleetVerdict:
        passed = sorted(k for k, s in outcomes.items() if s == "ACTIVE")
        breached = sorted(k for k, s in outcomes.items() if s != "ACTIVE")
        return FleetVerdict(
            mode=plan.verdict_mode,
            quorum=plan.quorum,
            passed=passed,
            breached=breached,
        )

    def _halt(self, rollout: FleetRollout, cause: str) -> None:
        """Fleet verdict failed: journal the halt, then converge to
        stock.  The halt entry lands *before* any revert so a crash
        mid-revert recovers into "unwind", never "resume"."""
        rollout.halt_cause = cause
        self._journal(
            {"event": "halt", "rollout": rollout.plan.policy, "cause": cause}
        )
        self._revert_patched(rollout, cause)
        rollout.state = FleetRolloutState.HALTED

    def _revert_patched(self, rollout: FleetRollout, cause: str) -> None:
        plan = rollout.plan
        for kernel in sorted(rollout.outcomes):
            member = self.fleet.member(kernel)
            record = member.daemon.records.get(plan.policy)
            if record is None or record.terminal:
                continue
            try:
                stall = fault_point(
                    SITE_FLEET_REVERT,
                    default_exc=FleetError,
                    rollout=plan.policy,
                    kernel=kernel,
                )
                if stall:
                    member.kernel.run(until=member.kernel.now + stall)
                if record.state in (PolicyState.CANARY, PolicyState.ACTIVE):
                    member.daemon.force_rollback(plan.policy, f"fleet halt: {cause}")
                else:
                    # Live but nothing installed (e.g. VERIFIED after a
                    # failed canary install): the kernel is already
                    # stock — retire the record so the name and quota
                    # free up instead of squatting mid-lifecycle.
                    member.daemon.withdraw(record.client_id, plan.policy)
                rollout.reverted.append(kernel)
                rollout.outcomes[kernel] = record.state.name
                self._journal(
                    {"event": "revert", "rollout": plan.policy, "kernel": kernel}
                )
            except (ControlPlaneError, BPFError) as exc:
                # Keep unwinding the rest of the fleet; the journaled
                # halt means a later recover() retries this kernel.
                rollout.revert_failures[kernel] = str(exc)

    # ------------------------------------------------------------------
    # Recovery
    # ------------------------------------------------------------------
    def recover(
        self,
        submission_factory: SubmissionFactory,
        restart_members: bool = True,
        **rollout_kwargs,
    ) -> Optional[FleetRollout]:
        """Pick up after a coordinator crash: resume or unwind.

        Every member daemon is restarted and recovered from its own
        journal shard first (per-kernel invariants: unwatched canaries
        rolled back, ACTIVE policies re-attached).  Then the fleet
        journal decides, for the most recent rollout:

        * ``complete`` / no rollout in flight → nothing to do (``None``);
        * a journaled ``halt`` → finish the unwind;
        * otherwise, if every kernel of every *completed* wave came back
          ACTIVE → resume from the first incomplete wave;
        * if any completed-wave kernel did **not** come back ACTIVE →
          the fleet's journaled word and the kernels disagree — unwind
          everything rather than run split.
        """
        if self.journal is None:
            raise FleetError("fleet recovery needs a fleet journal")
        if restart_members:
            for member in self.fleet.members():
                member.restart()
                if member.journal is not None and len(member.journal):
                    member.daemon.recover()
        entries = [e for e in self.journal.entries() if e.get("kind") == "fleet"]
        plan_entry = None
        for entry in entries:
            if entry.get("event") == "plan":
                plan_entry = entry
        if plan_entry is None:
            return None
        plan = FleetPlan.deserialize(plan_entry["plan"])
        tail = entries[entries.index(plan_entry) :]
        events = {e.get("event") for e in tail}
        if "complete" in events or "unwound" in events:
            return None

        rollout = FleetRollout(plan)
        if "halt" in events:
            halt = next(e for e in tail if e.get("event") == "halt")
            return self._recover_unwind(rollout, f"resumed halt: {halt.get('cause')}")

        done_waves = sorted(
            int(e["wave"]) for e in tail if e.get("event") == "wave-done"
        )
        for wave in plan.waves:
            if wave.index in done_waves:
                for kernel in wave.kernels:
                    state = self._state_of(kernel, plan.policy)
                    rollout.outcomes[kernel] = state
                    if state != "ACTIVE":
                        return self._recover_unwind(
                            rollout,
                            f"kernel {kernel} of completed wave {wave.index} "
                            f"came back {state}, not ACTIVE",
                        )
        next_wave = (max(done_waves) + 1) if done_waves else 0
        if next_wave >= len(plan.waves):
            # Every wave finished but the complete entry was lost —
            # reconcile the journal and report success.
            rollout.completed_waves = done_waves
            rollout.state = FleetRolloutState.COMPLETE
            self._journal({"event": "complete", "rollout": plan.policy})
            return rollout
        return self.execute(
            plan, submission_factory, start_wave=next_wave, **rollout_kwargs
        )

    def _recover_unwind(self, rollout: FleetRollout, cause: str) -> FleetRollout:
        plan = rollout.plan
        for kernel in plan.kernels():
            if kernel in self.fleet:
                rollout.outcomes.setdefault(kernel, self._state_of(kernel, plan.policy))
        self._revert_patched(rollout, cause)
        # force_rollback needs CANARY/ACTIVE; anything else is already
        # stock (never-patched, rejected, or rolled back by the member's
        # own recovery) — the fleet is uniformly stock either way.
        rollout.halt_cause = cause
        rollout.state = FleetRolloutState.UNWOUND
        self._journal({"event": "unwound", "rollout": plan.policy, "cause": cause})
        return rollout

    def _state_of(self, kernel: str, policy: str) -> str:
        record = self.fleet.member(kernel).daemon.records.get(policy)
        return record.state.name if record is not None else "ABSENT"

    # ------------------------------------------------------------------
    def _journal(self, entry: Dict[str, object]) -> None:
        if self.journal is None:
            return
        self._seq += 1
        payload = {"kind": "fleet", "seq": self._seq}
        payload.update(entry)
        try:
            self.journal.append(payload)
        except JournalError:
            # Best-effort by design (see module docstring): losing an
            # entry can only downgrade resume into unwind.
            pass
