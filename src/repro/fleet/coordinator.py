"""Wave-by-wave plan execution with a fleet-level verdict and journal.

Per-kernel safety is already handled below this layer: each member's
daemon runs its own canary, SLO guard, circuit breaker, and auto
rollback.  The coordinator adds the *cross-kernel* decisions:

* execute a :class:`~repro.fleet.planner.FleetPlan` wave by wave,
  baking each wave before the next starts;
* aggregate per-kernel outcomes into a :class:`FleetVerdict`
  ("any-breach": one breach halts the fleet; "quorum": halt only when
  the passing fraction drops below the plan's quorum);
* on a failed verdict, **halt**: journal the halt first, then revert
  every kernel patched so far to stock — a halted fleet converges to
  all-stock, never to a mix;
* journal fleet transitions (plan, wave-start, kernel-done, wave-done,
  halt, revert, complete) so :meth:`FleetCoordinator.recover` can pick
  up a crashed rollout and either resume the remaining waves or unwind
  the patched ones — but never leave a split fleet.

Journal writes are deliberately best-effort: the fleet journal shrinks
the recovery search space, but correctness never depends on an append
surviving.  A lost entry degrades "resume from wave K+1" into "unwind
everything", which is safe; it can never produce a split fleet.

**Degraded mode.**  Every member operation (submit, rollout, bake,
revert, status) goes through a retry envelope (:meth:`FleetCoordinator.\
_reach`); a member that stays unreachable becomes an ``UNREACHABLE``
outcome feeding the verdict exactly like a breach (any-breach halts;
quorum can complete degraded).  The lost member is quarantined, and
anything the rollout had installed on it becomes **revert debt** —
journaled (``member-dead`` / ``quarantine`` / ``revert-debt`` events),
retried with bounded backoff by :meth:`FleetCoordinator.drain_debt`,
and drained by :meth:`FleetCoordinator.recover` once the member is
reinstated.  The fleet invariant becomes: every *reachable* kernel
converges to plan or stock, and every unreachable kernel is journaled
debt, drained on reinstatement.
"""

from __future__ import annotations

import enum
import math
from typing import Callable, Dict, List, NamedTuple, Optional, Tuple

from ..bpf.errors import BPFError
from ..controlplane.guards import Breach, Guard, pool_reports
from ..controlplane.journal import JournalCorruption, JournalError, PolicyJournal
from ..controlplane.lifecycle import ControlPlaneError, PolicyState, PolicySubmission
from ..faults import (
    SITE_FLEET_DEBT_DRAIN,
    SITE_FLEET_MEMBER_CALL,
    SITE_FLEET_REVERT,
    SITE_FLEET_WAVE,
    fault_point,
)
from ..netsim import Fabric, NetError, RpcEnvelope, RpcExhausted
from ..replication.txn import SerializationConflict
from .health import EpochFenced, HealthState, MemberUnreachable
from .manager import FleetError, FleetManager, FleetMember
from .planner import FleetPlan

__all__ = ["FleetCoordinator", "FleetRollout", "FleetRolloutState", "FleetVerdict"]

#: ``submission_factory(member) -> PolicySubmission`` — called once per
#: kernel so every member gets fresh specs and maps (BPF maps are
#: per-kernel state and must never be shared across members).
SubmissionFactory = Callable[[FleetMember], PolicySubmission]


class FleetRolloutState(enum.Enum):
    PLANNED = "planned"
    RUNNING = "running"
    COMPLETE = "complete"      # every kernel in the plan is ACTIVE
    HALTED = "halted"          # fleet verdict failed; patched kernels reverted
    UNWOUND = "unwound"        # recovery rolled the partial rollout back

    def __str__(self) -> str:
        return self.name


class FleetVerdict(NamedTuple):
    """Aggregate of per-kernel outcomes under the plan's verdict mode.

    ``pooled`` carries breaches of the coordinator's pooled guard —
    evidence summed across the wave's members, each breach naming the
    kernels it was pooled over.  Pooled breaches are fleet-level facts,
    not per-kernel outcomes, so they fail the verdict in *both* modes:
    a quorum of individually-passing kernels cannot outvote a
    regression the whole wave exhibits.
    """

    mode: str
    quorum: float
    passed: List[str]
    breached: List[str]
    pooled: Tuple[Breach, ...] = ()

    @property
    def ok(self) -> bool:
        if self.pooled:
            return False
        if self.mode == "any-breach":
            return not self.breached
        total = len(self.passed) + len(self.breached)
        if not total:
            return True
        return len(self.passed) >= math.ceil(self.quorum * total)

    def describe(self) -> str:
        status = "pass" if self.ok else "FAIL"
        text = (
            f"fleet verdict [{self.mode}]: {status} "
            f"({len(self.passed)} active, {len(self.breached)} breached"
            + (f", quorum {self.quorum:.2f}" if self.mode == "quorum" else "")
            + ")"
        )
        if self.pooled:
            text += "; pooled breach: " + "; ".join(b.describe() for b in self.pooled)
        return text


class FleetRollout:
    """Mutable record of one plan execution (or recovery)."""

    def __init__(self, plan: FleetPlan) -> None:
        self.plan = plan
        self.state = FleetRolloutState.PLANNED
        #: kernel name -> final PolicyState name, or "ERROR: ..." /
        #: "UNREACHABLE: ..." text.
        self.outcomes: Dict[str, str] = {}
        #: kernel name -> member epoch observed on first contact; the
        #: fence :meth:`FleetCoordinator._reach` checks on every later
        #: touch.
        self.epochs: Dict[str, int] = {}
        self.completed_waves: List[int] = []
        self.halt_cause: Optional[str] = None
        self.reverted: List[str] = []
        self.revert_failures: Dict[str, str] = {}
        self.resumed_from_wave: Optional[int] = None
        #: The rollout's transaction in the coordinator's serialization
        #: ledger (None when no ledger is configured).
        self.txn = None
        #: The first wave's pooled canary evidence — the anchor later
        #: waves' pooled canaries are drift-checked against.
        self.wave_anchor_report = None

    def active_kernels(self) -> List[str]:
        return sorted(k for k, s in self.outcomes.items() if s == "ACTIVE")

    def unreachable_kernels(self) -> List[str]:
        return sorted(
            k for k, s in self.outcomes.items() if s.startswith("UNREACHABLE")
        )

    def describe(self) -> str:
        lines = [f"fleet rollout {self.plan.policy!r}: {self.state}"]
        for wave in self.plan.waves:
            marks = [
                f"{k}={self.outcomes.get(k, '-')}" for k in wave.kernels
            ]
            done = "done" if wave.index in self.completed_waves else "    "
            lines.append(f"  wave {wave.index} [{done}] {'  '.join(marks)}")
        if self.halt_cause:
            lines.append(f"  halt: {self.halt_cause}")
        if self.reverted:
            lines.append(f"  reverted: {', '.join(self.reverted)}")
        if self.revert_failures:
            marks = [f"{k} ({v})" for k, v in sorted(self.revert_failures.items())]
            lines.append(f"  revert failures: {'; '.join(marks)}")
        return "\n".join(lines)


class FleetCoordinator:
    """Executes and recovers fleet plans over a :class:`FleetManager`.

    Args:
        fleet: the membership directory.
        journal: the *fleet* journal shard (separate from the members'
            per-kernel policy journals).  ``None`` disables fleet
            journaling — execution still works, but a crashed rollout
            cannot be resumed, only unwound by inspection.
        client_id: control-plane client identity the coordinator uses
            on every member daemon.
        health: optional :class:`~repro.fleet.health.HealthMonitor`; a
            member the monitor has declared DEAD is treated as
            unreachable without attempting the call.
        member_retries: how many times an unreachable member call is
            retried (on top of the first attempt) before the member is
            declared lost.  Epoch fences are never retried.
        retry_backoff_ns: base of the exponential backoff between
            retries (the member's own kernel is run forward — waiting
            out a transient partition costs simulated time, not host
            time).
        fabric: optional :class:`~repro.netsim.Fabric` every member
            call traverses (``client_id`` → kernel name).  A partitioned
            link raises into the retry envelope as unreachable; delivery
            latency runs the member's kernel forward.  ``None`` — the
            default — keeps the legacy direct-call behaviour.
        envelope: optional pre-built :class:`~repro.netsim.RpcEnvelope`;
            by default one is assembled from ``member_retries`` /
            ``retry_backoff_ns`` / ``rpc_timeout_ns`` / ``rpc_deadline_ns``
            / ``rpc_jitter_seed``.
        rpc_timeout_ns: per-attempt delay budget — an attempt whose
            observed delay (fabric latency + injected stalls) exceeds it
            counts as unreachable for that attempt.
        rpc_deadline_ns: total simulated-time budget for one member
            operation including backoffs; exhaustion by deadline is
            journaled ``deadline-exceeded``, distinct from
            ``unreachable``.
        rpc_jitter_seed: seeds the envelope's backoff jitter (pass the
            plan seed so chaos runs stay replayable).
        plan_append_retries: attempts for the plan-anchor journal write,
            the one append that is not best-effort.
        debt_drain_retries: attempts per entry in :meth:`drain_debt`.
        pooled_guard: optional guard evaluated per wave over the
            members' profiler evidence *summed* with
            :func:`~repro.controlplane.guards.pool_reports`.  A per-lock
            regression marginal on any one kernel — or a wave whose
            members individually saw too few acquisitions to judge —
            becomes judgeable on the pooled counters; its breaches
            (kernel-attributed) fail the fleet verdict in both modes.
        wave_drift_guard: optional guard (typically a
            :class:`~repro.controlplane.guards.WaveDriftGuard`) judging
            each wave's pooled canary evidence against the *first*
            wave's — so a regression that creeps in wave over wave,
            never tripping any single wave's canary-vs-baseline check,
            still halts the fleet before the last cohort.
        ledger: optional :class:`~repro.replication.txn.\
SerializationLedger` shared by concurrent coordinators.  Each rollout
            runs as one transaction over its canary-lock footprint,
            committed when the rollout completes; two concurrent
            rollouts over overlapping locks cannot both commit — the
            second aborts with a journaled ``serialization-conflict``
            and halts cleanly (reverting its patched kernels).
        refresher: optional :class:`~repro.fleet.placement.\
PlacementRefresher`; consulted after each completed wave.  When it
            adopts a fresh placement map (drift beyond its hysteresis
            band), the remaining waves are re-planned against it.
        planner: the :class:`~repro.fleet.planner.RolloutPlanner` used
            for mid-rollout replanning (required for ``refresher`` to
            have any effect).
    """

    def __init__(
        self,
        fleet: FleetManager,
        journal: Optional[PolicyJournal] = None,
        client_id: str = "fleet-coordinator",
        health=None,
        member_retries: int = 1,
        retry_backoff_ns: int = 20_000,
        plan_append_retries: int = 3,
        debt_drain_retries: int = 3,
        pooled_guard: Optional[Guard] = None,
        wave_drift_guard: Optional[Guard] = None,
        ledger=None,
        refresher=None,
        planner=None,
        fabric: Optional[Fabric] = None,
        envelope: Optional[RpcEnvelope] = None,
        rpc_timeout_ns: Optional[int] = None,
        rpc_deadline_ns: Optional[int] = None,
        rpc_jitter_seed: int = 0,
    ) -> None:
        self.fleet = fleet
        self.journal = journal
        self.client_id = client_id
        self.health = health
        self.member_retries = member_retries
        self.retry_backoff_ns = retry_backoff_ns
        self.plan_append_retries = plan_append_retries
        self.debt_drain_retries = debt_drain_retries
        self.fabric = fabric
        self.envelope = envelope or RpcEnvelope(
            retries=member_retries,
            backoff_ns=retry_backoff_ns,
            timeout_ns=rpc_timeout_ns,
            deadline_ns=rpc_deadline_ns,
            seed=rpc_jitter_seed,
        )
        self.pooled_guard = pooled_guard
        self.wave_drift_guard = wave_drift_guard
        self.ledger = ledger
        self.refresher = refresher
        self.planner = planner
        #: Transactions pre-opened via :meth:`open_transaction`, keyed
        #: by policy, consumed by the next :meth:`execute` of that plan.
        self._pending_txns: Dict[str, object] = {}
        #: Outstanding revert debt: policies installed on members that
        #: went unreachable before they could be reverted.  Each entry
        #: is ``{"kernel", "policy", "epoch", "cause"}``; journaled as
        #: ``revert-debt`` and cleared by a ``debt-drained`` entry.
        self.debt: List[Dict[str, object]] = []
        self._seq = 0

    # ------------------------------------------------------------------
    # Reaching members: the retry/timeout envelope + epoch fence
    # ------------------------------------------------------------------
    def _reach(
        self,
        kernel: str,
        op: str,
        rollout: Optional[FleetRollout] = None,
    ) -> FleetMember:
        """Resolve ``kernel`` to a live member inside the coordinator's
        :class:`~repro.netsim.RpcEnvelope`.

        Raises :class:`MemberUnreachable` once the envelope gives up —
        whether by attempts or by total deadline — after journaling an
        ``rpc-exhausted`` entry carrying the envelope's classification
        (``unreachable`` / ``deadline-exceeded``), so the journal
        records *why* the member was lost.  :class:`EpochFenced` — the
        member restarted or was reinstated under the rollout — is
        raised immediately: retrying cannot un-move an epoch, the
        member must be re-planned; it is journaled classified
        ``fenced``.
        """

        def clock() -> int:
            if kernel in self.fleet:
                return self.fleet.member(kernel).kernel.now
            return 0

        def wait(pause_ns: int) -> None:
            if kernel in self.fleet:
                member = self.fleet.member(kernel)
                member.kernel.run(until=member.kernel.now + pause_ns)

        def give_up(exc: BaseException) -> bool:
            # Permanently gone; retrying cannot help.
            return kernel not in self.fleet or self.fleet.is_quarantined(kernel)

        try:
            return self.envelope.call(
                lambda attempt: self._reach_once(kernel, op, rollout),
                clock=clock,
                wait=wait,
                op=op,
                retry_on=(MemberUnreachable,),
                fail_fast=(EpochFenced,),
                corrupt_on=(JournalCorruption,),
                give_up=give_up,
            )
        except EpochFenced as exc:
            self._journal_rpc_exhausted(kernel, op, "fenced", 1, 0, exc)
            raise
        except RpcExhausted as exc:
            self._journal_rpc_exhausted(
                kernel, op, exc.classification, exc.attempts, exc.elapsed_ns, exc.cause
            )
            raise MemberUnreachable(str(exc)) from exc.cause

    def _journal_rpc_exhausted(
        self,
        kernel: str,
        op: str,
        classification: str,
        attempts: int,
        elapsed_ns: int,
        cause: Optional[BaseException],
    ) -> None:
        self._journal(
            {
                "event": "rpc-exhausted",
                "kernel": kernel,
                "op": op,
                "classification": classification,
                "attempts": attempts,
                "elapsed_ns": elapsed_ns,
                "cause": str(cause) if cause is not None else "",
            }
        )

    def _reach_once(
        self, kernel: str, op: str, rollout: Optional[FleetRollout]
    ) -> FleetMember:
        if kernel not in self.fleet:
            raise MemberUnreachable(
                f"member {kernel!r} is not registered (deregistered mid-rollout?)"
            )
        if self.fleet.is_quarantined(kernel):
            raise MemberUnreachable(f"member {kernel!r} is quarantined")
        if self.health is not None and self.health.state(kernel) is HealthState.DEAD:
            raise MemberUnreachable(
                f"member {kernel!r} is DEAD per the health monitor"
            )
        stall = fault_point(
            SITE_FLEET_MEMBER_CALL,
            default_exc=MemberUnreachable,
            kernel=kernel,
            op=op,
        )
        member = self.fleet.member(kernel)
        delay = stall
        if self.fabric is not None:
            try:
                delay += self.fabric.deliver(
                    self.client_id, kernel, op=op, now_ns=member.kernel.now
                )
            except NetError as exc:
                raise MemberUnreachable(f"network: {exc}") from exc
        if delay and self.envelope.timed_out(delay):
            # The caller stops waiting at the timeout — it never
            # observes the rest of the delay.
            member.kernel.run(until=member.kernel.now + self.envelope.timeout_ns)
            raise MemberUnreachable(
                f"member {kernel!r} call {op!r} timed out: delay {delay}ns "
                f"> timeout {self.envelope.timeout_ns}ns"
            )
        if delay:
            member.kernel.run(until=member.kernel.now + delay)
        if rollout is not None:
            observed = rollout.epochs.get(kernel)
            if observed is None:
                rollout.epochs[kernel] = member.epoch
            elif observed != member.epoch:
                raise EpochFenced(
                    f"member {kernel!r} epoch moved {observed} -> "
                    f"{member.epoch} mid-rollout; re-plan it, don't patch it"
                )
        return member

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def execute(
        self,
        plan: FleetPlan,
        submission_factory: SubmissionFactory,
        start_wave: int = 0,
        **rollout_kwargs,
    ) -> FleetRollout:
        """Run ``plan`` wave by wave; returns the rollout record.

        ``rollout_kwargs`` are forwarded to each member daemon's
        :meth:`~repro.controlplane.daemon.Concordd.rollout` (baseline_ns,
        canary_ns, check_every_ns, ...).  Per-kernel workloads must
        already be spawned — the coordinator drives control flow, not
        load generation.
        """
        rollout = FleetRollout(plan)
        rollout.state = FleetRolloutState.RUNNING
        if self.ledger is not None and start_wave == 0:
            rollout.txn = self._pending_txns.pop(plan.policy, None)
            if rollout.txn is None:
                rollout.txn = self.ledger.begin(
                    self._txn_id(plan), locks=self._plan_footprint(plan)
                )
        if start_wave == 0:
            # The plan entry is the recovery anchor and the one write
            # that is NOT best-effort: without it a later crash would
            # leave patched kernels no recovery can even see.  Nothing
            # is patched yet, so refusing to start is always safe — but
            # only after bounded retries, so a transient fsync flake
            # doesn't kill an otherwise healthy rollout.
            if self.journal is not None:
                self._seq += 1
                self._append_plan_anchor(
                    {
                        "kind": "fleet",
                        "seq": self._seq,
                        "event": "plan",
                        "rollout": plan.policy,
                        "plan": plan.serialize(),
                    }
                )
        else:
            rollout.resumed_from_wave = start_wave
        # Position-indexed rather than ``for wave in plan.waves``: a
        # placement refresh may replace the *tail* of the wave list
        # mid-rollout (see the replan block below), and an iterator over
        # the original list would keep executing the stale waves.
        pos = 0
        while pos < len(plan.waves):
            wave = plan.waves[pos]
            pos += 1
            if wave.index < start_wave:
                # Trust the journal's word for already-completed waves;
                # recover() verified their kernels are ACTIVE.
                rollout.completed_waves.append(wave.index)
                for kernel in wave.kernels:
                    rollout.outcomes.setdefault(kernel, "ACTIVE")
                continue
            stall = fault_point(
                SITE_FLEET_WAVE,
                default_exc=FleetError,
                rollout=plan.policy,
                wave=wave.index,
            )
            self._journal(
                {
                    "event": "wave-start",
                    "rollout": plan.policy,
                    "wave": wave.index,
                    "kernels": list(wave.kernels),
                }
            )
            for kernel in wave.kernels:
                try:
                    member = self._reach(kernel, "rollout", rollout)
                except MemberUnreachable as exc:
                    outcome = f"UNREACHABLE: {exc}"
                    self._member_lost(rollout, kernel, str(exc))
                    rollout.outcomes[kernel] = outcome
                else:
                    if stall:
                        member.kernel.run(until=member.kernel.now + stall)
                    outcome = self._rollout_on(
                        member, plan, submission_factory, rollout_kwargs
                    )
                    rollout.outcomes[kernel] = outcome
                self._journal(
                    {
                        "event": "kernel-done",
                        "rollout": plan.policy,
                        "wave": wave.index,
                        "kernel": kernel,
                        "state": outcome,
                    }
                )
            self._bake(wave, plan, rollout)
            pooled = self._pooled_breaches(wave, plan, rollout)
            verdict = self.verdict(plan, rollout.outcomes, pooled)
            if not verdict.ok:
                self._halt(rollout, verdict.describe())
                return rollout
            rollout.completed_waves.append(wave.index)
            self._journal(
                {
                    "event": "wave-done",
                    "rollout": plan.policy,
                    "wave": wave.index,
                    "verdict": verdict.describe(),
                }
            )
            if (
                self.refresher is not None
                and self.planner is not None
                and pos < len(plan.waves)
            ):
                refreshed, adopted = self.refresher.maybe_refresh()
                if adopted:
                    plan = self.planner.replan_remaining(
                        plan, refreshed, wave.index + 1
                    )
                    rollout.plan = plan
                    pos = len([w for w in plan.waves if w.index <= wave.index])
                    # Journaled as a fresh recovery anchor: a crash after
                    # the replan must resume against the *new* wave tail,
                    # not the plan entry's stale one.
                    self._journal(
                        {
                            "event": "replan",
                            "rollout": plan.policy,
                            "after_wave": wave.index,
                            "drift": getattr(self.refresher, "last_drift", None),
                            "plan": plan.serialize(),
                        }
                    )
        if rollout.txn is not None and self.ledger is not None:
            try:
                self.ledger.commit(rollout.txn)
            except SerializationConflict as exc:
                # Exactly one of two overlapping concurrent rollouts
                # commits; this one lost.  Journal the conflict, then
                # halt — which reverts every kernel it patched, so the
                # winner's policy is the only one the fleet converges to.
                self._journal(
                    {
                        "event": "serialization-conflict",
                        "rollout": plan.policy,
                        "txn": rollout.txn.txn_id,
                        "cause": str(exc),
                    }
                )
                self._halt(rollout, f"serialization conflict: {exc}")
                return rollout
        rollout.state = FleetRolloutState.COMPLETE
        self._journal({"event": "complete", "rollout": plan.policy})
        return rollout

    # ------------------------------------------------------------------
    # Serialization transactions
    # ------------------------------------------------------------------
    def open_transaction(self, plan: FleetPlan):
        """Pre-open the rollout's ledger transaction (before
        :meth:`execute` runs it).

        Two coordinators that each ``open_transaction`` before either
        executes are genuinely concurrent in the ledger's eyes: whoever
        commits second, over an overlapping lock footprint, aborts with
        :class:`~repro.replication.txn.SerializationConflict` even
        though the executions themselves were serial in simulated time.
        """
        if self.ledger is None:
            raise FleetError("open_transaction needs a serialization ledger")
        txn = self.ledger.begin(
            self._txn_id(plan), locks=self._plan_footprint(plan)
        )
        self._pending_txns[plan.policy] = txn
        return txn

    def _txn_id(self, plan: FleetPlan) -> str:
        return f"{plan.policy}@{self.client_id}"

    def _plan_footprint(self, plan: FleetPlan) -> List[str]:
        """The lock set the rollout reads and writes: the union of its
        per-member canary locks (the locks whose policy it changes)."""
        locks = set()
        for names in plan.canary_locks.values():
            locks.update(names)
        return sorted(locks) if locks else [f"policy:{plan.policy}"]

    def _append_plan_anchor(self, entry: Dict[str, object]) -> None:
        """Write the recovery anchor with bounded retry + backoff.

        Backoff runs the in-service kernels forward — waiting out a
        transient journal fault costs simulated time.  If the final
        attempt still fails the :class:`JournalError` propagates and the
        rollout is refused (nothing is patched yet)."""
        last: Optional[JournalError] = None
        for attempt in range(1, self.plan_append_retries + 1):
            try:
                self.journal.append(entry)
                return
            except JournalError as exc:
                last = exc
                if attempt < self.plan_append_retries:
                    pause = self.envelope.backoff(attempt)
                    for member in self.fleet.active_members():
                        member.kernel.run(until=member.kernel.now + pause)
        assert last is not None
        raise last

    def _rollout_on(
        self,
        member: FleetMember,
        plan: FleetPlan,
        submission_factory: SubmissionFactory,
        rollout_kwargs: Dict,
    ) -> str:
        """Submit + canary one kernel; the outcome is a PolicyState name
        or an ``ERROR:`` string (per-kernel failures feed the fleet
        verdict instead of aborting the wave)."""
        daemon = member.daemon
        if self.client_id not in daemon.admission.clients():
            daemon.register_client(self.client_id, allowed_selectors=("*",))
        try:
            existing = daemon.records.get(plan.policy)
            if existing is not None and existing.state is PolicyState.ACTIVE:
                return "ACTIVE"  # resume: this kernel survived the crash
            if existing is None or existing.terminal:
                submission = submission_factory(member)
                if submission.name != plan.policy:
                    raise FleetError(
                        f"submission factory produced {submission.name!r} "
                        f"for plan {plan.policy!r}"
                    )
                daemon.submit(self.client_id, submission)
            elif existing.state is not PolicyState.VERIFIED:
                # Live but neither ACTIVE nor VERIFIED: a canary or
                # retirement someone else is mid-flight on — breach it.
                return f"ERROR: record already in flight ({existing.state})"
            record = daemon.rollout(
                plan.policy,
                canary_locks=plan.canary_locks.get(member.name),
                **rollout_kwargs,
            )
            return record.state.name
        except (ControlPlaneError, BPFError) as exc:
            return f"ERROR: {exc}"

    def _bake(self, wave, plan: FleetPlan, rollout: FleetRollout) -> None:
        """Run every kernel patched so far forward ``wave.bake_ns``.

        Bake time is when slow regressions surface: a member's breaker
        or guard may auto-rollback during it, flipping that kernel's
        outcome to ROLLED_BACK before the verdict is taken.  A member
        that cannot be reached for its bake is lost — quarantined, its
        installed policy booked as revert debt — instead of raising out
        of the wave (a deregistered or dead member used to blow up
        here and strand a split fleet)."""
        if not wave.bake_ns:
            return
        reached: Dict[str, FleetMember] = {}
        for kernel in list(rollout.outcomes):
            if rollout.outcomes[kernel].startswith("UNREACHABLE"):
                continue
            try:
                member = self._reach(kernel, "bake", rollout)
            except MemberUnreachable as exc:
                # Book the loss *before* overwriting the outcome: debt
                # is owed only if the policy was live on the member.
                self._member_lost(rollout, kernel, str(exc))
                rollout.outcomes[kernel] = f"UNREACHABLE: {exc}"
                continue
            member.kernel.run(until=member.kernel.now + wave.bake_ns)
            reached[kernel] = member
        for kernel, member in reached.items():
            record = member.daemon.records.get(plan.policy)
            if record is not None:
                rollout.outcomes[kernel] = record.state.name

    # ------------------------------------------------------------------
    # Verdict + halt
    # ------------------------------------------------------------------
    def verdict(
        self,
        plan: FleetPlan,
        outcomes: Dict[str, str],
        pooled: Tuple[Breach, ...] = (),
    ) -> FleetVerdict:
        passed = sorted(k for k, s in outcomes.items() if s == "ACTIVE")
        breached = sorted(k for k, s in outcomes.items() if s != "ACTIVE")
        return FleetVerdict(
            mode=plan.verdict_mode,
            quorum=plan.quorum,
            passed=passed,
            breached=breached,
            pooled=pooled,
        )

    def _pooled_breaches(
        self, wave, plan: FleetPlan, rollout: FleetRollout
    ) -> Tuple[Breach, ...]:
        """Judge the wave on its members' *summed* profiler evidence.

        Each reachable wave member contributes its rollout record's
        baseline and canary reports; :func:`pool_reports` sums the
        per-lock counters (histograms and socket counts included) and
        the pooled guard compares the sums.  Breaches come back
        attributed to the kernels that supplied evidence, and a
        ``pooled-breach`` journal entry records each one before the
        verdict is taken.

        The wave-drift guard rides the same pooled evidence but against
        a different baseline: the *first* wave's pooled canary report
        (``rollout.wave_anchor_report``).  A slow cross-wave regression
        — each wave fine against its own baseline, each a little worse
        than the last — shows up as drift against the anchor and halts
        the fleet before the final cohort; its breaches are journaled as
        ``wave-drift-breach`` and fail the verdict like any pooled
        breach.
        """
        if self.pooled_guard is None and self.wave_drift_guard is None:
            return ()
        baselines, canaries, kernels = [], [], []
        for kernel in wave.kernels:
            if rollout.outcomes.get(kernel, "").startswith("UNREACHABLE"):
                continue
            try:
                member = self._reach(kernel, "pool", rollout)
            except MemberUnreachable:
                continue
            record = member.daemon.records.get(plan.policy)
            if (
                record is None
                or record.baseline_report is None
                or record.canary_report is None
            ):
                continue
            baselines.append(record.baseline_report)
            canaries.append(record.canary_report)
            kernels.append(kernel)
        if not baselines:
            return ()
        pooled_base = pool_reports(baselines)
        pooled_canary = pool_reports(canaries)
        attributed: List[Breach] = []
        if self.pooled_guard is not None:
            verdict = self.pooled_guard.evaluate(pooled_base, pooled_canary)
            if verdict.ready and not verdict.ok:
                attributed.extend(
                    b._replace(kernels=tuple(kernels)) for b in verdict.attributed
                )
                for breach in attributed:
                    self._journal(
                        {
                            "event": "pooled-breach",
                            "rollout": plan.policy,
                            "wave": wave.index,
                            "lock": breach.lock_name,
                            "metric": breach.metric,
                            "baseline": breach.baseline,
                            "observed": breach.observed,
                            "budget": breach.budget,
                            "kernels": list(kernels),
                        }
                    )
        if self.wave_drift_guard is not None:
            if rollout.wave_anchor_report is None:
                rollout.wave_anchor_report = pooled_canary
            else:
                drift = self.wave_drift_guard.evaluate(
                    rollout.wave_anchor_report, pooled_canary
                )
                if drift.ready and not drift.ok:
                    drifted = tuple(
                        b._replace(kernels=tuple(kernels))
                        for b in drift.attributed
                    )
                    for breach in drifted:
                        self._journal(
                            {
                                "event": "wave-drift-breach",
                                "rollout": plan.policy,
                                "wave": wave.index,
                                "lock": breach.lock_name,
                                "metric": breach.metric,
                                "baseline": breach.baseline,
                                "observed": breach.observed,
                                "budget": breach.budget,
                                "kernels": list(kernels),
                            }
                        )
                    attributed.extend(drifted)
        return tuple(attributed)

    def _halt(self, rollout: FleetRollout, cause: str) -> None:
        """Fleet verdict failed: journal the halt, then converge to
        stock.  The halt entry lands *before* any revert so a crash
        mid-revert recovers into "unwind", never "resume"."""
        rollout.halt_cause = cause
        self._journal(
            {"event": "halt", "rollout": rollout.plan.policy, "cause": cause}
        )
        if rollout.txn is not None and self.ledger is not None:
            # A halted rollout abandons its ledger claim (no-op if the
            # txn already aborted on serialization conflict).
            self.ledger.abort(rollout.txn, cause)
        self._revert_patched(rollout, cause)
        rollout.state = FleetRolloutState.HALTED

    def _revert_patched(self, rollout: FleetRollout, cause: str) -> None:
        plan = rollout.plan
        for kernel in sorted(rollout.outcomes):
            if rollout.outcomes[kernel].startswith("UNREACHABLE"):
                # Already lost.  Book (deduped) debt rather than assume
                # the loss path ran: in a recovery unwind the coordinator
                # that witnessed the loss may have died before
                # journaling it, and a drain of a member that turns out
                # to hold nothing is a safe no-op.
                self.add_debt(
                    kernel,
                    plan.policy,
                    rollout.epochs.get(kernel, -1),
                    rollout.outcomes[kernel],
                )
                continue
            try:
                # The member lookup used to sit outside this try block:
                # a member deregistered mid-rollout raised FleetError
                # out of the unwind and stranded a split fleet.
                member = self._reach(kernel, "revert", rollout)
            except MemberUnreachable as exc:
                rollout.revert_failures[kernel] = str(exc)
                self._member_lost(rollout, kernel, str(exc))
                rollout.outcomes[kernel] = f"UNREACHABLE: {exc}"
                continue
            record = member.daemon.records.get(plan.policy)
            if record is None or record.terminal:
                continue
            try:
                stall = fault_point(
                    SITE_FLEET_REVERT,
                    default_exc=FleetError,
                    rollout=plan.policy,
                    kernel=kernel,
                )
                if stall:
                    member.kernel.run(until=member.kernel.now + stall)
                if record.state in (PolicyState.CANARY, PolicyState.ACTIVE):
                    member.daemon.force_rollback(plan.policy, f"fleet halt: {cause}")
                else:
                    # Live but nothing installed (e.g. VERIFIED after a
                    # failed canary install): the kernel is already
                    # stock — retire the record so the name and quota
                    # free up instead of squatting mid-lifecycle.
                    member.daemon.withdraw(record.client_id, plan.policy)
                rollout.reverted.append(kernel)
                rollout.outcomes[kernel] = record.state.name
                self._journal(
                    {"event": "revert", "rollout": plan.policy, "kernel": kernel}
                )
            except (ControlPlaneError, BPFError) as exc:
                # Keep unwinding the rest of the fleet; the journaled
                # halt means a later recover() retries this kernel.
                rollout.revert_failures[kernel] = str(exc)

    # ------------------------------------------------------------------
    # Member loss, quarantine, and revert debt
    # ------------------------------------------------------------------
    def _member_lost(self, rollout: FleetRollout, kernel: str, cause: str) -> None:
        """A member went unreachable mid-rollout: journal the loss,
        quarantine it, and convert anything the rollout had live on it
        into revert debt."""
        self._journal(
            {
                "event": "member-dead",
                "rollout": rollout.plan.policy,
                "kernel": kernel,
                "cause": cause,
            }
        )
        if kernel in self.fleet and not self.fleet.is_quarantined(kernel):
            self.fleet.quarantine(kernel, cause)
            self._journal({"event": "quarantine", "kernel": kernel, "cause": cause})
        if rollout.outcomes.get(kernel) in ("ACTIVE", "CANARY"):
            self.add_debt(
                kernel,
                rollout.plan.policy,
                rollout.epochs.get(kernel, -1),
                cause,
            )

    def add_debt(self, kernel: str, policy: str, epoch: int, cause: str) -> None:
        """Book one revert owed to an unreachable member (deduped on
        ``(kernel, policy)``) and journal it."""
        if any(d["kernel"] == kernel and d["policy"] == policy for d in self.debt):
            return
        self.debt.append(
            {"kernel": kernel, "policy": policy, "epoch": epoch, "cause": cause}
        )
        self._journal(
            {
                "event": "revert-debt",
                "rollout": policy,
                "kernel": kernel,
                "epoch": epoch,
                "cause": cause,
            }
        )

    def quarantine(self, name: str, cause: str = "operator") -> FleetMember:
        """Pull a member out of service and book its live policies as
        revert debt.

        This is the acting half of the health loop — wire it as a
        :class:`~repro.fleet.health.HealthMonitor` ``on_dead`` callback
        and a member the monitor declares DEAD is quarantined with its
        debt journaled, automatically.  Idempotent.
        """
        if self.fleet.is_quarantined(name):
            return self.fleet.member(name)
        member = self.fleet.quarantine(name, cause)
        self._journal({"event": "quarantine", "kernel": name, "cause": cause})
        for record in member.daemon.records.values():
            if record.live:
                self.add_debt(name, record.name, member.epoch, f"quarantined: {cause}")
        return member

    def reinstate(self, name: str) -> FleetMember:
        """Readmit a quarantined member (journaled; epoch fenced
        forward by the manager).  The member's debt stays booked until
        :meth:`drain_debt` or :meth:`recover` clears it."""
        member = self.fleet.reinstate(name)
        self._journal({"event": "reinstate", "kernel": name, "epoch": member.epoch})
        return member

    def drain_debt(self, backoff_ns: Optional[int] = None) -> List[Dict[str, object]]:
        """Retry every outstanding revert whose member is back in
        service; returns the entries drained.

        Each entry gets ``debt_drain_retries`` attempts with exponential
        backoff (simulated time on the member's kernel).  Entries whose
        member is still quarantined or gone stay booked — the journal
        keeps them across coordinator restarts.
        """
        backoff_ns = backoff_ns or self.retry_backoff_ns
        drained: List[Dict[str, object]] = []
        for entry in list(self.debt):
            kernel = str(entry["kernel"])
            policy = str(entry["policy"])
            if kernel not in self.fleet or self.fleet.is_quarantined(kernel):
                continue
            member = self.fleet.member(kernel)
            failure: Optional[Exception] = None
            for attempt in range(1, self.debt_drain_retries + 1):
                try:
                    fault_point(
                        SITE_FLEET_DEBT_DRAIN,
                        default_exc=MemberUnreachable,
                        kernel=kernel,
                        policy=policy,
                    )
                    self._drain_one(member, policy)
                    failure = None
                    break
                except (ControlPlaneError, BPFError) as exc:
                    failure = exc
                    if attempt < self.debt_drain_retries:
                        member.kernel.run(
                            until=member.kernel.now
                            + self.envelope.backoff(attempt, base_ns=backoff_ns)
                        )
            if failure is None:
                self.debt.remove(entry)
                drained.append(entry)
                self._journal(
                    {
                        "event": "debt-drained",
                        "rollout": policy,
                        "kernel": kernel,
                        "epoch": member.epoch,
                    }
                )
        return drained

    def _drain_one(self, member: FleetMember, policy: str) -> None:
        """Force one owed policy back to stock on a reachable member."""
        record = member.daemon.records.get(policy)
        if record is not None and not record.terminal:
            if record.state in (PolicyState.CANARY, PolicyState.ACTIVE):
                member.daemon.force_rollback(policy, "fleet revert debt drained")
            else:
                member.daemon.withdraw(record.client_id, policy)
        # Crash debris: programs named for the policy that no record
        # owns (a daemon that died before journaling the submission
        # rebuilds no record for them).  Unload is idempotent.
        for name in [
            n
            for n in member.concord.policies
            if n == policy or n.startswith(policy + ".")
        ]:
            member.concord.unload_policy(name)

    # ------------------------------------------------------------------
    # Recovery
    # ------------------------------------------------------------------
    def recover(
        self,
        submission_factory: SubmissionFactory,
        restart_members: bool = True,
        **rollout_kwargs,
    ) -> Optional[FleetRollout]:
        """Pick up after a coordinator crash: resume or unwind.

        Every member daemon is restarted and recovered from its own
        journal shard first (per-kernel invariants: unwatched canaries
        rolled back, ACTIVE policies re-attached).  Then the fleet
        journal decides, for the most recent rollout:

        * ``complete`` / no rollout in flight → nothing to do (``None``);
        * a journaled ``halt`` → finish the unwind;
        * otherwise, if every kernel of every *completed* wave came back
          ACTIVE → resume from the first incomplete wave;
        * if any completed-wave kernel did **not** come back ACTIVE
          (including unreachable: quarantined or gone) → the fleet's
          journaled word and the kernels disagree — unwind everything
          rather than run split.

        Only members *in service* are restarted — a quarantined member
        is by definition not reachable for a restart.  Outstanding
        revert debt is rebuilt from the journal (``revert-debt`` entries
        without a later ``debt-drained``) and drained at the end for
        every member that is back in service.

        A member whose journal shard turns out to be **corrupt beyond
        the crash model** (:class:`JournalCorruption` — rot, not a torn
        tail) does not abort fleet recovery: the shard's valid prefix is
        salvaged, the daemon recovered over what survived, and the
        member quarantined with its stranded state booked as revert
        debt (:meth:`_quarantine_corrupt_shard`).  The *fleet* journal
        rotting is handled the same way — salvage, then recover from
        the surviving prefix.
        """
        if self.journal is None:
            raise FleetError("fleet recovery needs a fleet journal")
        if restart_members:
            for member in self.fleet.active_members():
                try:
                    member.restart()
                    if member.journal is not None and len(member.journal):
                        member.daemon.recover()
                except JournalCorruption as exc:
                    self._quarantine_corrupt_shard(member, exc)
        try:
            entries = [e for e in self.journal.entries() if e.get("kind") == "fleet"]
        except JournalCorruption:
            if not hasattr(self.journal, "salvage"):
                raise
            report = self.journal.salvage()
            self._journal(
                {
                    "event": "shard-corrupt",
                    "kernel": "<fleet>",
                    "kept": report.get("kept", 0),
                    "dropped": report.get("dropped", 0),
                }
            )
            entries = [e for e in self.journal.entries() if e.get("kind") == "fleet"]
        self._load_debt(entries)
        result = self._recover_plan(submission_factory, entries, rollout_kwargs)
        self.drain_debt()
        return result

    def _quarantine_corrupt_shard(
        self, member: FleetMember, exc: JournalCorruption
    ) -> None:
        """Quarantine-and-salvage a member whose journal shard rotted.

        Aborting fleet recovery because *one* unreplicated shard has a
        flipped byte would turn local rot into a fleet outage.  Instead:
        the corruption is journaled (with the physical line and path the
        error carries), the shard's valid prefix is salvaged — the
        rotten suffix set aside as ``<path>.corrupt``, evidence not
        erased — the member's daemon is recovered best-effort over what
        survived, and the member is quarantined.  Quarantine books every
        still-live policy as revert debt, and the daemon's own recovery
        sweep unloads programs whose records were lost past the
        corruption point, so stranded state is unwound, never silently
        trusted.
        """
        self._journal(
            {
                "event": "shard-corrupt",
                "kernel": member.name,
                "path": exc.path,
                "line": exc.line,
                "cause": str(exc),
            }
        )
        report: Dict[str, object] = {}
        if member.journal is not None and hasattr(member.journal, "salvage"):
            report = member.journal.salvage()
        try:
            member.restart()
            if member.journal is not None and len(member.journal):
                member.daemon.recover()
        except (ControlPlaneError, JournalError):
            pass  # best-effort: the quarantine below stands regardless
        self.quarantine(
            member.name,
            cause=(
                f"journal shard corrupt: salvaged {report.get('kept', 0)} "
                f"entries, dropped {report.get('dropped', 0)}"
            ),
        )

    def _load_debt(self, entries: List[Dict[str, object]]) -> None:
        """Rebuild the outstanding-debt ledger from the fleet journal,
        merged with anything already booked in memory."""
        outstanding: Dict[Tuple[str, str], Dict[str, object]] = {}
        for entry in entries:
            key = (str(entry.get("kernel")), str(entry.get("rollout")))
            if entry.get("event") == "revert-debt":
                outstanding.setdefault(
                    key,
                    {
                        "kernel": key[0],
                        "policy": key[1],
                        "epoch": int(entry.get("epoch", -1)),
                        "cause": str(entry.get("cause", "journaled")),
                    },
                )
            elif entry.get("event") == "debt-drained":
                outstanding.pop(key, None)
        for entry in self.debt:
            outstanding.setdefault((str(entry["kernel"]), str(entry["policy"])), entry)
        self.debt = list(outstanding.values())

    def _recover_plan(
        self,
        submission_factory: SubmissionFactory,
        entries: List[Dict[str, object]],
        rollout_kwargs: Dict,
    ) -> Optional[FleetRollout]:
        plan_entry = None
        anchor_entry = None
        for entry in entries:
            if entry.get("event") == "plan":
                # The rollout's recovery anchor: the event tail (wave
                # completions, halt, complete) starts here.
                plan_entry = anchor_entry = entry
            elif entry.get("event") == "replan" and plan_entry is not None:
                # A replan carries the full re-waved plan and supersedes
                # the anchor's wave list — but not its position in the
                # journal: wave-done entries before the replan still
                # belong to this rollout.
                plan_entry = entry
        if plan_entry is None:
            return None
        plan = FleetPlan.deserialize(plan_entry["plan"])
        tail = entries[entries.index(anchor_entry) :]
        events = {e.get("event") for e in tail}
        if "complete" in events or "unwound" in events:
            return None

        rollout = FleetRollout(plan)
        if "halt" in events:
            halt = next(e for e in tail if e.get("event") == "halt")
            return self._recover_unwind(rollout, f"resumed halt: {halt.get('cause')}")

        done_waves = sorted(
            int(e["wave"]) for e in tail if e.get("event") == "wave-done"
        )
        for wave in plan.waves:
            if wave.index in done_waves:
                for kernel in wave.kernels:
                    state = self._state_of(kernel, plan.policy)
                    rollout.outcomes[kernel] = state
                    if state != "ACTIVE":
                        return self._recover_unwind(
                            rollout,
                            f"kernel {kernel} of completed wave {wave.index} "
                            f"came back {state}, not ACTIVE",
                        )
        next_wave = (max(done_waves) + 1) if done_waves else 0
        if next_wave >= len(plan.waves):
            # Every wave finished but the complete entry was lost —
            # reconcile the journal and report success.
            rollout.completed_waves = done_waves
            rollout.state = FleetRolloutState.COMPLETE
            self._journal({"event": "complete", "rollout": plan.policy})
            return rollout
        return self.execute(
            plan, submission_factory, start_wave=next_wave, **rollout_kwargs
        )

    def _recover_unwind(self, rollout: FleetRollout, cause: str) -> FleetRollout:
        plan = rollout.plan
        for kernel in plan.kernels():
            rollout.outcomes.setdefault(kernel, self._state_of(kernel, plan.policy))
        self._revert_patched(rollout, cause)
        # force_rollback needs CANARY/ACTIVE; anything else is already
        # stock (never-patched, rejected, or rolled back by the member's
        # own recovery) — the fleet is uniformly stock either way.
        rollout.halt_cause = cause
        rollout.state = FleetRolloutState.UNWOUND
        self._journal({"event": "unwound", "rollout": plan.policy, "cause": cause})
        return rollout

    def _state_of(self, kernel: str, policy: str) -> str:
        try:
            member = self._reach(kernel, "status")
        except MemberUnreachable as exc:
            return f"UNREACHABLE: {exc}"
        record = member.daemon.records.get(policy)
        return record.state.name if record is not None else "ABSENT"

    # ------------------------------------------------------------------
    def _journal(self, entry: Dict[str, object]) -> None:
        if self.journal is None:
            return
        self._seq += 1
        payload = {"kind": "fleet", "seq": self._seq}
        payload.update(entry)
        try:
            self.journal.append(payload)
        except JournalError:
            # Best-effort by design (see module docstring): losing an
            # entry can only downgrade resume into unwind.
            pass
