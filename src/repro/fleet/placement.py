"""Placement: where each target lock instance actually lives.

A rollout planner that orders kernels by a sorted lock-name prefix
knows nothing about risk: two fleets with identical lock names can have
wildly different blast radii.  The :class:`PlacementMap` records, per
matched lock instance, the *observed* placement — which kernel it is
registered on, which socket its acquisitions are dominated by, and a
contention class — learned the same way the canary engine judges SLOs:
from profiler measurements, not configuration.

Learning runs two instruments per member over one measurement window:

* a :class:`~repro.concord.profiler.ProfileSession` over the matched
  locks (attempts/contention/wait aggregates → contention class);
* a one-program *socket probe* on the ``lock_acquired`` hook counting
  acquisitions per ``(lock, socket)`` → dominant socket.

Both are the framework's own machinery — loading the probe goes through
verify/pin/attach like any policy, so placement learning inherits every
safety property (and every fault site) of the pipeline it feeds.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, NamedTuple, Optional

from ..bpf.maps import HashMap
from ..concord.policy import PolicySpec
from ..concord.profiler import ProfileSession
from ..locks.base import HOOK_LOCK_ACQUIRED

__all__ = ["LockPlacement", "PlacementMap", "PlacementRefresher"]

#: Socket-probe key packing: ``lock_id * _SOCKET_STRIDE + socket``.
_SOCKET_STRIDE = 64

_PROBE_SOURCE = """
def fleet_probe(ctx):
    sockets.add(ctx.lock_id * 64 + ctx.socket, 1)
"""

#: Contention-class weights used for blast-radius scoring.
_CLASS_WEIGHT = {"hot": 4, "warm": 2, "cold": 1}


class LockPlacement(NamedTuple):
    """Observed placement of one lock instance."""

    kernel: str
    lock_name: str
    #: dominant socket by acquisition count (ties break low; -1 when the
    #: window saw no acquisitions at all)
    socket: int
    #: contention class: "hot" / "warm" / "cold"
    contention: str
    acquired: int
    contended: int
    avg_wait_ns: float

    @property
    def weight(self) -> int:
        """Blast-radius contribution of this lock."""
        return _CLASS_WEIGHT[self.contention]


class PlacementMap:
    """Fleet-wide ``(kernel, lock) -> placement`` directory."""

    _seq = 0

    def __init__(
        self,
        placements: Iterable[LockPlacement],
        learned_at_ns: Optional[int] = None,
    ) -> None:
        self.placements: List[LockPlacement] = list(placements)
        #: When the learn window closed (max member clock at the end of
        #: measurement); ``None`` for hand-built or deserialized maps,
        #: which are therefore always considered stale.
        self.learned_at_ns = learned_at_ns
        self._by_kernel: Dict[str, List[LockPlacement]] = {}
        for placement in self.placements:
            self._by_kernel.setdefault(placement.kernel, []).append(placement)

    # ------------------------------------------------------------------
    # Learning
    # ------------------------------------------------------------------
    @classmethod
    def learn(
        cls,
        fleet,
        selector: str,
        window_ns: int = 200_000,
        hot_ratio: float = 0.40,
        warm_ratio: float = 0.05,
    ) -> "PlacementMap":
        """Measure every member's matching locks for ``window_ns``.

        ``hot_ratio`` / ``warm_ratio`` classify by contention ratio
        (contended acquisitions over attempts); a lock idle for the
        whole window is "cold" on socket ``-1``.
        """
        placements: List[LockPlacement] = []
        members = (
            fleet.active_members() if hasattr(fleet, "active_members") else fleet.members()
        )
        learned_at = 0
        for member in members:
            placements.extend(
                cls._learn_member(member, selector, window_ns, hot_ratio, warm_ratio)
            )
            learned_at = max(learned_at, member.kernel.now)
        return cls(placements, learned_at_ns=learned_at)

    @classmethod
    def _learn_member(
        cls, member, selector: str, window_ns: int, hot_ratio: float, warm_ratio: float
    ) -> List[LockPlacement]:
        locks = member.select_locks(selector)
        if not locks:
            return []
        concord = member.concord
        kernel = member.kernel
        cls._seq += 1
        probe_map = HashMap(f"fleet.probe{cls._seq}.sockets", max_entries=65536)
        probe_spec = PolicySpec(
            name=f"fleet.probe{cls._seq}.{member.name}",
            hook=HOOK_LOCK_ACQUIRED,
            source=_PROBE_SOURCE,
            maps={"sockets": probe_map},
            lock_selector="*",
        )
        lock_ids = {name: kernel.lock_id_by_name(name) for name in locks}
        session = ProfileSession(concord, locks)
        try:
            concord.load_policy(probe_spec, targets=locks)
            try:
                kernel.run(until=kernel.now + window_ns)
            finally:
                concord.unload_policy(probe_spec.name)
        finally:
            report = session.stop()

        placements = []
        nr_sockets = kernel.topology.sockets
        for name in locks:
            profile = report.by_name(name)
            attempts = profile.attempts if profile else 0
            contended = profile.contended if profile else 0
            acquired = profile.acquired if profile else 0
            avg_wait = profile.avg_wait_ns if profile else 0.0
            base = lock_ids[name] * _SOCKET_STRIDE
            by_socket = [
                probe_map.lookup(base + socket) or 0 for socket in range(nr_sockets)
            ]
            if any(by_socket):
                socket = max(range(nr_sockets), key=lambda s: (by_socket[s], -s))
            else:
                socket = -1
            ratio = contended / attempts if attempts else 0.0
            if attempts and ratio >= hot_ratio:
                contention = "hot"
            elif attempts and ratio >= warm_ratio:
                contention = "warm"
            else:
                contention = "cold"
            placements.append(
                LockPlacement(
                    kernel=member.name,
                    lock_name=name,
                    socket=socket,
                    contention=contention,
                    acquired=acquired,
                    contended=contended,
                    avg_wait_ns=avg_wait,
                )
            )
        return placements

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def is_stale(self, now_ns: int, max_age_ns: int) -> bool:
        """True when the learn window closed more than ``max_age_ns``
        before ``now_ns`` (pass the clock of whichever member you are
        about to act on — fleet members tick independently).  A map
        with no recorded learn time is always stale."""
        if self.learned_at_ns is None:
            return True
        return now_ns - self.learned_at_ns > max_age_ns

    def kernels(self) -> List[str]:
        return sorted(self._by_kernel)

    def for_kernel(self, kernel: str) -> List[LockPlacement]:
        return list(self._by_kernel.get(kernel, ()))

    def locks(self, kernel: str) -> List[str]:
        return sorted(p.lock_name for p in self._by_kernel.get(kernel, ()))

    def blast_radius(self, kernel: str) -> int:
        """Weighted size of what a bad policy would hurt on ``kernel``:
        hot locks count 4, warm 2, cold 1."""
        return sum(p.weight for p in self._by_kernel.get(kernel, ()))

    def by_lock(self, kernel: str, lock_name: str) -> Optional[LockPlacement]:
        for placement in self._by_kernel.get(kernel, ()):
            if placement.lock_name == lock_name:
                return placement
        return None

    def drift(self, other: "PlacementMap") -> float:
        """Weighted fraction of placements that changed between maps.

        A ``(kernel, lock)`` entry counts as drifted when its contention
        class or dominant socket differs between the two maps, or when
        it exists in only one of them; each drifted entry contributes
        the heavier of its two weights (a lock that went hot matters
        more than one that went cold).  Returns 0.0 for two empty maps,
        1.0 for fully disjoint ones.
        """
        mine = {(p.kernel, p.lock_name): p for p in self.placements}
        theirs = {(p.kernel, p.lock_name): p for p in other.placements}
        total = 0
        drifted = 0
        for key in mine.keys() | theirs.keys():
            a, b = mine.get(key), theirs.get(key)
            weight = max(p.weight for p in (a, b) if p is not None)
            total += weight
            if (
                a is None
                or b is None
                or a.contention != b.contention
                or a.socket != b.socket
            ):
                drifted += weight
        return drifted / total if total else 0.0

    # ------------------------------------------------------------------
    def serialize(self) -> List[Dict[str, object]]:
        return [
            {
                "kernel": p.kernel,
                "lock": p.lock_name,
                "socket": p.socket,
                "contention": p.contention,
                "acquired": p.acquired,
                "contended": p.contended,
                "avg_wait_ns": round(p.avg_wait_ns, 1),
            }
            for p in self.placements
        ]

    @classmethod
    def deserialize(cls, entries: Iterable[Dict[str, object]]) -> "PlacementMap":
        return cls(
            LockPlacement(
                kernel=str(e["kernel"]),
                lock_name=str(e["lock"]),
                socket=int(e["socket"]),
                contention=str(e["contention"]),
                acquired=int(e.get("acquired", 0)),
                contended=int(e.get("contended", 0)),
                avg_wait_ns=float(e.get("avg_wait_ns", 0.0)),
            )
            for e in entries
        )

    def describe(self) -> str:
        header = f"{'kernel':<10} {'lock':<26} {'socket':>6} {'class':>6} {'acq':>8} {'avg wait':>10}"
        rows = [header, "-" * len(header)]
        for p in sorted(self.placements, key=lambda p: (p.kernel, p.lock_name)):
            rows.append(
                f"{p.kernel:<10} {p.lock_name:<26} {p.socket:>6} "
                f"{p.contention:>6} {p.acquired:>8} {p.avg_wait_ns:>8.0f}ns"
            )
        return "\n".join(rows)

    def __len__(self) -> int:
        return len(self.placements)

    def __repr__(self) -> str:
        return f"PlacementMap({len(self.placements)} locks on {len(self._by_kernel)} kernels)"


class PlacementRefresher:
    """Drift-triggered re-learning with a hysteresis band.

    Each :meth:`maybe_refresh` call re-measures the fleet and compares
    the probe map against the current one.  The map is **adopted** only
    when drift crosses ``adopt_above`` — and only once per excursion:
    after an adoption the refresher disarms, and re-arms when drift
    settles back below ``settle_below``.  The band is what keeps a noisy
    measurement window from flapping wave ordering: drift oscillating
    inside ``(settle_below, adopt_above)`` adopts nothing, and even a
    window that keeps re-crossing the adopt threshold replaces the map
    at most once until the fleet genuinely settles.

    Args:
        fleet: the membership directory to re-measure.
        selector: the lock selector the current map was learned over.
        current: the map in force (updated in place on adoption).
        window_ns: measurement window per refresh probe.
        adopt_above: weighted drift fraction at which a probe map is
            adopted (while armed).
        settle_below: drift fraction below which the refresher re-arms.
        hot_ratio / warm_ratio: forwarded to :meth:`PlacementMap.learn`.
    """

    def __init__(
        self,
        fleet,
        selector: str,
        current: PlacementMap,
        window_ns: int = 200_000,
        adopt_above: float = 0.25,
        settle_below: float = 0.10,
        hot_ratio: float = 0.40,
        warm_ratio: float = 0.05,
    ) -> None:
        if not 0.0 <= settle_below <= adopt_above <= 1.0:
            raise ValueError(
                "hysteresis band needs 0 <= settle_below <= adopt_above <= 1, "
                f"got {settle_below}/{adopt_above}"
            )
        self.fleet = fleet
        self.selector = selector
        self.current = current
        self.window_ns = window_ns
        self.adopt_above = adopt_above
        self.settle_below = settle_below
        self.hot_ratio = hot_ratio
        self.warm_ratio = warm_ratio
        self.armed = True
        self.last_drift: Optional[float] = None
        self.refreshes = 0
        self.adoptions = 0

    def maybe_refresh(self) -> "tuple[PlacementMap, bool]":
        """Probe the fleet; returns ``(map_in_force, adopted)``.

        ``map_in_force`` is the freshly adopted map when drift crossed
        the adopt threshold while armed, else the current map unchanged.
        """
        self.refreshes += 1
        probe = PlacementMap.learn(
            self.fleet,
            self.selector,
            window_ns=self.window_ns,
            hot_ratio=self.hot_ratio,
            warm_ratio=self.warm_ratio,
        )
        drift = self.current.drift(probe)
        self.last_drift = drift
        if drift <= self.settle_below:
            self.armed = True
        if self.armed and drift >= self.adopt_above:
            self.current = probe
            self.armed = False
            self.adoptions += 1
            return probe, True
        return self.current, False

    def __repr__(self) -> str:
        state = "armed" if self.armed else "disarmed"
        return (
            f"PlacementRefresher({self.selector!r}, {state}, "
            f"last drift {self.last_drift}, {self.adoptions} adoptions)"
        )
