"""Typed failures of the simulated network layer.

Two families, deliberately separate:

* :class:`NetError` and its children are *transport* facts — a message
  that never made it.  They carry no policy; the layer that attempted
  the delivery decides what an undeliverable message means (the
  coordinator converts them to ``MemberUnreachable``, a replica group
  marks the destination site partitioned).
* :class:`RpcExhausted` is an *envelope* verdict — a whole retried call
  that gave up, with the reason classified so callers and journals can
  tell a partitioned member (``unreachable``), a fenced-out writer
  (``fenced``), detected rot (``corrupt``), and a blown time budget
  (``deadline-exceeded``) apart.
"""

from __future__ import annotations

from typing import Optional

__all__ = [
    "CLASSIFICATIONS",
    "LinkDown",
    "MessageDropped",
    "NetError",
    "RpcError",
    "RpcExhausted",
]


class NetError(Exception):
    """Base of the fabric's transport failures."""


class LinkDown(NetError):
    """The directed link is partitioned (operator cut, schedule event,
    or an injected ``net.partition.flip``): nothing sent over it is
    delivered until the partition heals."""


class MessageDropped(NetError):
    """This one message was lost (the link's drop model or an injected
    ``net.link.deliver`` failure); the link itself is still up, so a
    retry may well get through."""


class RpcError(Exception):
    """Base of the RPC envelope's failures."""


#: The envelope's exhaustion vocabulary, in the order journals report it.
CLASSIFICATIONS = ("unreachable", "fenced", "corrupt", "deadline-exceeded")


class RpcExhausted(RpcError):
    """A retried call gave up, with the give-up reason classified.

    Attributes:
        classification: one of :data:`CLASSIFICATIONS`.
        op: the operation label the caller supplied.
        attempts: attempts actually made before giving up.
        elapsed_ns: simulated time the whole envelope consumed.
        cause: the last underlying exception (``None`` only for a
            deadline that expired before any failure was seen).
    """

    def __init__(
        self,
        classification: str,
        op: str = "rpc",
        attempts: int = 0,
        elapsed_ns: int = 0,
        cause: Optional[BaseException] = None,
    ) -> None:
        if classification not in CLASSIFICATIONS:
            raise ValueError(f"unknown rpc classification {classification!r}")
        self.classification = classification
        self.op = op
        self.attempts = attempts
        self.elapsed_ns = elapsed_ns
        self.cause = cause
        detail = f": {cause}" if cause is not None else ""
        super().__init__(
            f"rpc {op!r} {classification} after {attempts} attempt(s) / "
            f"{elapsed_ns}ns{detail}"
        )
