"""The deadline-aware RPC envelope.

The coordinator's original retry loop backed off in lockstep
(``base * 2**(attempt-1)``) and gave up on attempts alone.  Both are
wrong under real partitions: lockstep retries from many members
synchronize into thundering herds, and an attempts-only budget lets a
member that stalls just under the per-call timeout stretch a wave
unboundedly.  :class:`RpcEnvelope` owns the whole retry policy:

* **seeded jitter** — each backoff adds a uniform draw from the
  envelope's own RNG, deterministic given the seed (chaos runs stay
  replayable) but desynchronized across envelopes/attempts;
* **per-call timeout** — ``timeout_ns`` bounds one attempt's observed
  delay (fabric latency + injected stalls); the caller enforces it at
  the delivery site and converts an overrun into its transport error;
* **total deadline** — ``deadline_ns`` caps the *whole* envelope in
  simulated time, backoffs included; a call that would sleep past the
  deadline is clipped, and exhaustion by time is classified
  ``deadline-exceeded``, distinct from ``unreachable``;
* **classification** — every give-up raises
  :class:`~repro.netsim.errors.RpcExhausted` with the reason
  classified (``unreachable`` / ``fenced`` / ``corrupt`` /
  ``deadline-exceeded``) so the journal records *why* a member was
  lost, not just that it was.
"""

from __future__ import annotations

from random import Random
from typing import Callable, Optional, Tuple, Type, TypeVar

from .errors import RpcExhausted

__all__ = ["RpcEnvelope"]

T = TypeVar("T")


class RpcEnvelope:
    """Retry policy for one class of calls (constructed once, reused).

    Args:
        retries: retries on top of the first attempt.
        backoff_ns: exponential backoff base (attempt ``n`` waits
            ``backoff_ns * 2**(n-1)`` plus jitter).
        jitter_ns: upper bound of the uniform jitter added to every
            backoff; ``None`` derives ``backoff_ns // 4``, ``0``
            disables jitter (and then the RNG is never touched).
        timeout_ns: per-attempt delay budget, enforced by the caller at
            its delivery site (see :meth:`timed_out`).
        deadline_ns: total simulated-time budget for the whole envelope;
            ``None`` means attempts-only, the legacy behaviour.
        seed: drives the jitter draws — deterministic per envelope.
    """

    def __init__(
        self,
        retries: int = 1,
        backoff_ns: int = 20_000,
        jitter_ns: Optional[int] = None,
        timeout_ns: Optional[int] = None,
        deadline_ns: Optional[int] = None,
        seed: int = 0,
    ) -> None:
        self.retries = retries
        self.backoff_ns = backoff_ns
        self.jitter_ns = backoff_ns // 4 if jitter_ns is None else jitter_ns
        self.timeout_ns = timeout_ns
        self.deadline_ns = deadline_ns
        self.seed = seed
        self._rng = Random(seed)

    # ------------------------------------------------------------------
    def backoff(self, attempt: int, base_ns: Optional[int] = None) -> int:
        """The wait before retry ``attempt + 1``: exponential in the
        attempt number, plus one seeded jitter draw."""
        wait = (base_ns or self.backoff_ns) * (2 ** (attempt - 1))
        if self.jitter_ns:
            wait += self._rng.randint(0, self.jitter_ns)
        return wait

    def timed_out(self, delay_ns: int) -> bool:
        """Whether one attempt's observed delay blows the per-call
        budget (never, when no timeout is configured)."""
        return self.timeout_ns is not None and delay_ns > self.timeout_ns

    # ------------------------------------------------------------------
    def call(
        self,
        fn: Callable[[int], T],
        *,
        clock: Callable[[], int],
        wait: Callable[[int], None],
        op: str = "rpc",
        retry_on: Tuple[Type[BaseException], ...] = (Exception,),
        fail_fast: Tuple[Type[BaseException], ...] = (),
        corrupt_on: Tuple[Type[BaseException], ...] = (),
        give_up: Optional[Callable[[BaseException], bool]] = None,
    ) -> T:
        """Run ``fn(attempt)`` under the envelope.

        ``clock``/``wait`` are the caller's simulated time: backing off
        costs simulated ns, not host time.  ``fail_fast`` exceptions
        (epoch fences) propagate unwrapped and unretried — retrying
        cannot un-move an epoch.  ``corrupt_on`` exceptions give up
        immediately with classification ``corrupt`` — rot is not
        transient.  ``give_up(exc)`` returning True (e.g. the member was
        deregistered mid-call) stops retrying with classification
        ``unreachable``.  Attempts or deadline exhausted raise
        :class:`RpcExhausted` classified ``unreachable`` or
        ``deadline-exceeded`` respectively.
        """
        start = clock()
        deadline = start + self.deadline_ns if self.deadline_ns is not None else None
        last: Optional[BaseException] = None
        attempts = 0
        for attempt in range(1, self.retries + 2):
            attempts = attempt
            try:
                return fn(attempt)
            except fail_fast:
                raise
            except corrupt_on as exc:
                raise RpcExhausted(
                    "corrupt", op, attempts, clock() - start, exc
                ) from exc
            except retry_on as exc:
                last = exc
                if give_up is not None and give_up(exc):
                    break
                if deadline is not None and clock() >= deadline:
                    raise RpcExhausted(
                        "deadline-exceeded", op, attempts, clock() - start, exc
                    ) from exc
                if attempt > self.retries:
                    break
                pause = self.backoff(attempt)
                if deadline is not None:
                    pause = min(pause, max(1, deadline - clock()))
                if pause > 0:
                    wait(pause)
        assert last is not None
        raise RpcExhausted(
            "unreachable", op, attempts, clock() - start, last
        ) from last

    def __repr__(self) -> str:
        deadline = (
            f", deadline={self.deadline_ns}ns" if self.deadline_ns is not None else ""
        )
        timeout = (
            f", timeout={self.timeout_ns}ns" if self.timeout_ns is not None else ""
        )
        return (
            f"RpcEnvelope({self.retries} retries, backoff {self.backoff_ns}ns "
            f"+ jitter<={self.jitter_ns}ns{timeout}{deadline}, seed {self.seed})"
        )
