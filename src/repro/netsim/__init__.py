"""Deterministic simulated networking for the fleet.

Until this package, every cross-member call in the fleet — coordinator
→ member operations, health probes, a replica group's quorum appends —
was a direct in-process call.  Faults could make any one call fail, but
only *independently*; correlated failures (a rack partition, an
asymmetric link where A hears B but B doesn't hear A) had no way to
exist, so the "no split fleet" invariant had never met an adversary
that could actually split the network.

* :mod:`.fabric` — :class:`Fabric`: named endpoints, directed links
  with latency/jitter/drop/duplicate/reorder models,
  ``partition(groups)`` / ``heal()`` (symmetric and asymmetric), timed
  chaos partitions via the ``net.partition.flip`` / ``net.link.deliver``
  fault sites.  A freshly built fabric is the identity network, which
  is what keeps existing scenarios byte-identical.
* :mod:`.schedule` — :class:`PartitionSchedule`: seeded, serializable
  partition/heal event sequences applied as simulated time passes,
  replayable like :mod:`repro.traffic` traces.
* :mod:`.envelope` — :class:`RpcEnvelope`: the coordinator's retry
  policy with seeded backoff jitter, a per-call timeout, a total
  simulated-time deadline, and classified exhaustion
  (``unreachable`` / ``fenced`` / ``corrupt`` / ``deadline-exceeded``).
* :mod:`.errors` — the transport (:class:`NetError`) and envelope
  (:class:`RpcExhausted`) failure vocabulary.
"""

from .envelope import RpcEnvelope
from .errors import (
    CLASSIFICATIONS,
    LinkDown,
    MessageDropped,
    NetError,
    RpcError,
    RpcExhausted,
)
from .fabric import Fabric, Link, LinkModel
from .schedule import PartitionEvent, PartitionSchedule, sample_partition_schedule

__all__ = [
    "CLASSIFICATIONS",
    "Fabric",
    "Link",
    "LinkDown",
    "LinkModel",
    "MessageDropped",
    "NetError",
    "PartitionEvent",
    "PartitionSchedule",
    "RpcEnvelope",
    "RpcError",
    "RpcExhausted",
    "sample_partition_schedule",
]
