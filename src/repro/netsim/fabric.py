"""The simulated network fabric: named endpoints, modelled links.

A :class:`Fabric` is the wire every cross-member message in the fleet
crosses: coordinator → member calls, health probes, and a replica
group's appends/reads/catch-ups all ask the fabric for a delivery and
either get back a latency (simulated ns the caller charges to the
destination's clock) or a :class:`~repro.netsim.errors.NetError`.

Links are *directed* and lazily created, so a freshly constructed
``Fabric()`` is the identity network — every endpoint connected to
every other at zero latency, no drops, no reordering.  That default is
load-bearing: components take an optional fabric and behave
byte-identically with a flat one, because a flat fabric draws no
randomness and adds no delay.  Partitions, latency models, chaos
faults, and schedules only change behaviour once someone configures
them.

**Partitions.**  :meth:`Fabric.partition` cuts the links between named
groups; with ``asymmetric=True`` the first group still *hears* the
others (their messages to it are delivered) but nothing it sends
crosses out — the classic half-open failure where a deposed leader
keeps receiving acknowledgements it can no longer earn.
:meth:`Fabric.heal` restores every link.

**Time.**  The fabric has no clock of its own; it tracks the high-water
mark of the ``now_ns`` values callers pass (each simulated kernel keeps
its own clock) and uses it to apply the attached
:class:`~repro.netsim.schedule.PartitionSchedule`'s events and to expire
injected timed partitions (``net.partition.flip`` stalls).

**Chaos.**  Every delivery consults two fault sites: a fail-rule at
``net.partition.flip`` raises :class:`LinkDown` and a *stall*-rule
there partitions the link for the stall's duration of simulated time
(self-healing — the adversary cannot strand the fleet forever); at
``net.link.deliver`` a fail-rule drops the one message and a stall-rule
adds latency to it.
"""

from __future__ import annotations

from random import Random
from typing import Dict, Iterable, List, NamedTuple, Optional, Sequence, Tuple

from ..faults import SITE_NET_LINK_DELIVER, SITE_NET_PARTITION_FLIP, fault_point
from .errors import LinkDown, MessageDropped, NetError

__all__ = ["Fabric", "Link", "LinkModel"]


class LinkModel(NamedTuple):
    """Per-link delivery model.  The default is a perfect wire.

    ``latency_ns`` is charged on every delivery; ``jitter_ns`` adds a
    uniform draw on top.  ``drop`` loses the message outright
    (:class:`MessageDropped`).  ``duplicate`` delivers a spurious second
    copy — counted by the fabric; the RPC layers above are at-least-once
    and idempotent, so a duplicate costs nothing but is observable.
    ``reorder`` delays the message behind its successors by
    ``reorder_ns`` extra (or one more latency when unset), the visible
    effect reordering has on a request/response wire.
    """

    latency_ns: int = 0
    jitter_ns: int = 0
    drop: float = 0.0
    duplicate: float = 0.0
    reorder: float = 0.0
    reorder_ns: int = 0


class Link:
    """One directed ``src -> dst`` edge and its state."""

    __slots__ = ("src", "dst", "model", "up", "down_until_ns")

    def __init__(self, src: str, dst: str, model: LinkModel) -> None:
        self.src = src
        self.dst = dst
        self.model = model
        self.up = True
        #: A timed (injected) partition: the link is dark until the
        #: fabric's clock passes this mark, then self-heals.
        self.down_until_ns = 0

    def describe(self) -> str:
        state = "up" if self.up else "DOWN"
        return f"{self.src}->{self.dst}: {state} {self.model}"

    def __repr__(self) -> str:
        return f"Link({self.describe()})"


class Fabric:
    """A mesh of named endpoints with per-link delivery models.

    Args:
        seed: drives every stochastic knob (jitter, drop, duplicate,
            reorder) — same seed, same call sequence, same outcomes.  A
            fabric whose models have no stochastic knobs never touches
            the RNG, so attaching one to an existing scenario perturbs
            nothing.
        default_model: the model lazily-created links start with.
        schedule: optional :class:`~repro.netsim.schedule.\
PartitionSchedule` applied as observed simulated time passes
            (:meth:`advance`).
    """

    def __init__(
        self,
        seed: int = 0,
        default_model: LinkModel = LinkModel(),
        schedule=None,
    ) -> None:
        self._rng = Random(seed)
        self.default_model = default_model
        self.endpoints: List[str] = []
        self._links: Dict[Tuple[str, str], Link] = {}
        self.schedule = schedule
        self._next_event = 0
        #: High-water mark of the ``now_ns`` values deliveries carried.
        self.clock_ns = 0
        # Observability counters.
        self.delivered = 0
        self.dropped = 0
        self.duplicated = 0
        self.reordered = 0
        self.rejected = 0  # deliveries refused by a partitioned link
        self.flips = 0  # injected timed partitions
        #: Schedule events applied so far (for assertions/replay audits).
        self.applied: List[object] = []

    # ------------------------------------------------------------------
    # Topology
    # ------------------------------------------------------------------
    def add_endpoint(self, name: str) -> str:
        if name not in self.endpoints:
            self.endpoints.append(name)
        return name

    def link(self, src: str, dst: str) -> Link:
        """The directed link, lazily created with the default model."""
        if src == dst:
            raise NetError(f"no self-link: {src!r}")
        self.add_endpoint(src)
        self.add_endpoint(dst)
        key = (src, dst)
        found = self._links.get(key)
        if found is None:
            found = self._links[key] = Link(src, dst, self.default_model)
        return found

    def set_model(
        self,
        model: LinkModel,
        src: Optional[str] = None,
        dst: Optional[str] = None,
    ) -> None:
        """Install ``model`` on matching links (and on future ones when
        neither end is named: it becomes the default)."""
        if src is None and dst is None:
            self.default_model = model
            for link in self._links.values():
                link.model = model
            return
        for link in self._links.values():
            if (src is None or link.src == src) and (dst is None or link.dst == dst):
                link.model = model
        if src is not None and dst is not None:
            self.link(src, dst).model = model

    # ------------------------------------------------------------------
    # Partitions
    # ------------------------------------------------------------------
    def cut(self, src: str, dst: str, symmetric: bool = False) -> None:
        """Take the directed link down (both directions when
        ``symmetric``)."""
        self.link(src, dst).up = False
        if symmetric:
            self.link(dst, src).up = False

    def restore(self, src: str, dst: str, symmetric: bool = False) -> None:
        link = self.link(src, dst)
        link.up = True
        link.down_until_ns = 0
        if symmetric:
            self.restore(dst, src)

    def partition(
        self,
        groups: Sequence[Iterable[str]],
        asymmetric: bool = False,
    ) -> None:
        """Split the named endpoints into isolated groups.

        Links *within* a group stay up; links *between* groups go down.
        Endpoints in no group keep full connectivity.  With
        ``asymmetric=True``, ``groups[0]`` still hears the other groups
        (their links into it stay up) but nothing it sends crosses out
        — "A hears B, B doesn't hear A" with A = ``groups[0]``.
        """
        sides = [list(g) for g in groups]
        if len(sides) < 2:
            raise NetError("a partition needs at least two groups")
        for i, left in enumerate(sides):
            for j, right in enumerate(sides):
                if i == j:
                    continue
                for src in left:
                    for dst in right:
                        if src == dst:
                            continue
                        if asymmetric and j == 0:
                            # Traffic *into* groups[0] survives: it
                            # hears everyone, nobody hears it.
                            continue
                        self.cut(src, dst)

    def heal(self) -> None:
        """Restore every link (scheduled, operator, and timed cuts)."""
        for link in self._links.values():
            link.up = True
            link.down_until_ns = 0

    def reachable(self, src: str, dst: str) -> bool:
        link = self.link(src, dst)
        return link.up and self.clock_ns >= link.down_until_ns

    # ------------------------------------------------------------------
    # Time + schedule
    # ------------------------------------------------------------------
    def advance(self, now_ns: int) -> None:
        """Note that simulated time reached ``now_ns`` somewhere, and
        apply any schedule events that are now due.  Monotonic: stale
        clocks (another member lagging behind) never rewind it."""
        if now_ns > self.clock_ns:
            self.clock_ns = now_ns
        if self.schedule is None:
            return
        events = self.schedule.events
        while self._next_event < len(events):
            event = events[self._next_event]
            if event.at_ns > self.clock_ns:
                break
            self._next_event += 1
            self.schedule.apply(self, event)
            self.applied.append(event)

    # ------------------------------------------------------------------
    # Delivery
    # ------------------------------------------------------------------
    def deliver(
        self,
        src: str,
        dst: str,
        op: Optional[str] = None,
        now_ns: Optional[int] = None,
    ) -> int:
        """Attempt one ``src -> dst`` message; returns the latency (ns)
        the caller should charge, or raises a :class:`NetError`.

        ``now_ns`` (the sender's or destination's simulated clock) feeds
        :meth:`advance`, so schedules and timed partitions progress with
        the traffic that observes them.
        """
        link = self.link(src, dst)
        if now_ns is not None:
            self.advance(now_ns)
        # An injected timed partition: a stall-rule here takes this link
        # dark for the stall's duration; a fail-rule rejects just this
        # message as already-partitioned.
        flip = fault_point(
            SITE_NET_PARTITION_FLIP,
            default_exc=LinkDown,
            src=src,
            dst=dst,
            op=op,
        )
        if flip:
            link.down_until_ns = max(link.down_until_ns, self.clock_ns + flip)
            self.flips += 1
        if not link.up or self.clock_ns < link.down_until_ns:
            self.rejected += 1
            raise LinkDown(
                f"link {src}->{dst} is partitioned"
                + (
                    f" until t={link.down_until_ns}ns"
                    if link.up and link.down_until_ns
                    else ""
                )
            )
        # Per-message chaos: fail drops this message, stall delays it.
        extra = fault_point(
            SITE_NET_LINK_DELIVER,
            default_exc=MessageDropped,
            src=src,
            dst=dst,
            op=op,
        )
        model = link.model
        if model.drop and self._rng.random() < model.drop:
            self.dropped += 1
            raise MessageDropped(f"message {src}->{dst} ({op or 'msg'}) dropped")
        latency = model.latency_ns
        if model.jitter_ns:
            latency += self._rng.randint(0, model.jitter_ns)
        if model.duplicate and self._rng.random() < model.duplicate:
            self.duplicated += 1
        if model.reorder and self._rng.random() < model.reorder:
            self.reordered += 1
            latency += model.reorder_ns or model.latency_ns
        self.delivered += 1
        return latency + extra

    # ------------------------------------------------------------------
    def describe(self) -> str:
        down = sorted(
            f"{l.src}->{l.dst}"
            for l in self._links.values()
            if not l.up or self.clock_ns < l.down_until_ns
        )
        rows = [
            f"fabric: {len(self.endpoints)} endpoints, "
            f"{len(self._links)} links ({len(down)} down), "
            f"t={self.clock_ns}ns",
            f"  delivered {self.delivered}, dropped {self.dropped}, "
            f"duplicated {self.duplicated}, reordered {self.reordered}, "
            f"rejected {self.rejected}",
        ]
        if down:
            rows.append(f"  down: {', '.join(down)}")
        return "\n".join(rows)

    def __repr__(self) -> str:
        return (
            f"Fabric({len(self.endpoints)} endpoints, "
            f"{self.delivered} delivered, {self.rejected} rejected)"
        )
