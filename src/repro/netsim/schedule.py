"""Seeded, replayable partition schedules.

A :class:`PartitionSchedule` is to network failures what a
:class:`~repro.traffic.Trace` is to load: a deterministic, serializable
sequence of events over simulated time, generated from a seed so a
chaos run that splits the fleet at an awkward moment reproduces
bit-for-bit.  The fabric applies due events as traffic observes time
passing (:meth:`~repro.netsim.fabric.Fabric.advance`).

Sampled schedules are *survivable by construction*: every partition is
eventually healed (the last event is always a heal), so the invariants
a chaos test asserts — post-heal convergence, zero stranded debt —
are reachable for every seed.
"""

from __future__ import annotations

from random import Random
from typing import Dict, List, NamedTuple, Sequence, Tuple

from .errors import NetError

__all__ = ["PartitionEvent", "PartitionSchedule", "sample_partition_schedule"]


class PartitionEvent(NamedTuple):
    """One link-state flip at a point in simulated time."""

    at_ns: int
    action: str  # "partition" | "heal"
    groups: Tuple[Tuple[str, ...], ...] = ()
    asymmetric: bool = False

    def describe(self) -> str:
        if self.action == "heal":
            return f"t={self.at_ns}ns heal"
        sides = " | ".join(",".join(g) for g in self.groups)
        kind = "asymmetric" if self.asymmetric else "symmetric"
        return f"t={self.at_ns}ns {kind} partition [{sides}]"


class PartitionSchedule:
    """An ordered list of :class:`PartitionEvent`\\ s."""

    def __init__(self, events: Sequence[PartitionEvent], name: str = "schedule") -> None:
        for event in events:
            if event.action not in ("partition", "heal"):
                raise NetError(f"unknown schedule action {event.action!r}")
            if event.action == "partition" and len(event.groups) < 2:
                raise NetError("a partition event needs at least two groups")
        self.events: List[PartitionEvent] = sorted(events, key=lambda e: e.at_ns)
        self.name = name

    def __len__(self) -> int:
        return len(self.events)

    def apply(self, fabric, event: PartitionEvent) -> None:
        if event.action == "heal":
            fabric.heal()
        else:
            fabric.partition(event.groups, asymmetric=event.asymmetric)

    @property
    def ends_healed(self) -> bool:
        return bool(self.events) and self.events[-1].action == "heal"

    # ------------------------------------------------------------------
    # Replay: serialize <-> deserialize round-trips exactly.
    # ------------------------------------------------------------------
    def serialize(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "events": [
                {
                    "at_ns": e.at_ns,
                    "action": e.action,
                    "groups": [list(g) for g in e.groups],
                    "asymmetric": e.asymmetric,
                }
                for e in self.events
            ],
        }

    @classmethod
    def deserialize(cls, payload: Dict[str, object]) -> "PartitionSchedule":
        events = [
            PartitionEvent(
                at_ns=int(e["at_ns"]),
                action=str(e["action"]),
                groups=tuple(tuple(g) for g in e.get("groups", ())),
                asymmetric=bool(e.get("asymmetric", False)),
            )
            for e in payload.get("events", ())
        ]
        return cls(events, name=str(payload.get("name", "schedule")))

    def describe(self) -> str:
        rows = [f"partition schedule {self.name!r}: {len(self.events)} events"]
        rows.extend(f"  {event.describe()}" for event in self.events)
        return "\n".join(rows)

    def __repr__(self) -> str:
        return f"PartitionSchedule({self.name!r}, {len(self.events)} events)"


def sample_partition_schedule(
    seed: int,
    endpoints: Sequence[str],
    total_ns: int,
    max_splits: int = 2,
) -> PartitionSchedule:
    """Draw a survivable schedule: up to ``max_splits`` minority splits
    over ``total_ns``, each healed before the next, always ending
    healed.

    The cut-off group is a strict minority of the endpoints, so a
    quorum of any replica group laid out across them stays reachable —
    sampled chaos degrades service, it cannot make convergence
    impossible.
    """
    if len(endpoints) < 2:
        raise NetError("sampling a schedule needs at least two endpoints")
    rng = Random(seed)
    names = sorted(endpoints)
    events: List[PartitionEvent] = []
    t = 0
    for _ in range(rng.randint(1, max(1, max_splits))):
        t += rng.randint(max(1, total_ns // 8), max(2, total_ns // 3))
        minority_size = rng.randint(1, max(1, (len(names) - 1) // 2))
        minority = rng.sample(names, minority_size)
        majority = [n for n in names if n not in minority]
        asymmetric = rng.random() < 0.4
        events.append(
            PartitionEvent(
                at_ns=t,
                action="partition",
                groups=(tuple(minority), tuple(majority)),
                asymmetric=asymmetric,
            )
        )
        t += rng.randint(max(1, total_ns // 8), max(2, total_ns // 3))
        events.append(PartitionEvent(at_ns=t, action="heal"))
    return PartitionSchedule(events, name=f"partition-{seed}")
