"""Command-line tools: exhibit regeneration (:mod:`.figures`) and
control-plane scenarios (:mod:`.concordd`)."""

from . import concordd, figures

__all__ = ["concordd", "figures"]
