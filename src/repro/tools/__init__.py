"""Command-line tools: exhibit regeneration (:mod:`.figures`)."""

from . import figures

__all__ = ["figures"]
