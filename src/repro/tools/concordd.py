"""The ``concordd`` CLI: scripted control-plane rollout scenarios.

Usage::

    python -m repro.tools.concordd rollout
    python -m repro.tools.concordd rollout --locks 8 --seed 3 --audit

The ``rollout`` scenario is the acceptance path for the control plane:
two clients share one kernel running a contended shard workload;
*alice* submits a **bad NUMA policy** (anti-NUMA waiter grouping plus an
expensive per-acquisition accounting program — Table 1's "increase
critical section" hazard), *bob* submits the paper's **good NUMA
policy**.  Both roll out through the canary engine; the SLO guard must
catch alice's policy mid-benchmark and roll it back, while bob's reaches
ACTIVE fleet-wide.  Exit status 0 means exactly that happened.
"""

from __future__ import annotations

import argparse
import sys
from typing import List

from ..concord import Concord
from ..concord.policies import make_numa_policy
from ..concord.policy import PolicySpec
from ..controlplane import Concordd, PolicyState, PolicySubmission, SLOGuard
from ..kernel import Kernel
from ..locks import ShflLock
from ..locks.base import HOOK_CMP_NODE, HOOK_LOCK_ACQUIRED
from ..sim import Topology, ops
from ..userspace import PolicyClient

__all__ = ["main", "build_parser", "bad_numa_submission", "run_rollout_scenario"]

#: Anti-NUMA grouping: prefer waiters from the *other* socket — exactly
#: backwards from ShflLock's point, so handoffs bounce the cache line
#: across the interconnect.
ANTI_NUMA_SOURCE = """
def anti_numa(ctx):
    return ctx.curr_socket != ctx.shuffler_socket
"""

#: A per-acquisition "NUMA accounting" program fat enough to matter:
#: runs with the lock held (Table 1: increase critical section).
NUMA_AUDIT_SOURCE = """
def numa_audit(ctx):
    acc = 0
    for i in range(60):
        acc = acc + ctx.socket
        acc = acc ^ i
    return 0
"""


def bad_numa_submission(lock_selector: str, name: str = "bad-numa") -> PolicySubmission:
    """The scenario's misbehaving policy bundle."""
    return PolicySubmission(
        specs=(
            PolicySpec(
                name=name,
                hook=HOOK_CMP_NODE,
                source=ANTI_NUMA_SOURCE,
                lock_selector=lock_selector,
            ),
            PolicySpec(
                name=f"{name}.audit",
                hook=HOOK_LOCK_ACQUIRED,
                source=NUMA_AUDIT_SOURCE,
                lock_selector=lock_selector,
            ),
        ),
    )


def _spawn_shard_workload(kernel, stop_at: int, tasks_per_lock: int, cs_ns: int) -> List:
    tasks = []
    cpu = 0
    for name in kernel.locks.select_names("svc.*.lock"):
        site = kernel.locks.get(name)
        for _ in range(tasks_per_lock):

            def worker(task, site=site):
                task.stats["ops"] = 0
                while task.engine.now < stop_at:
                    yield from site.acquire(task)
                    yield ops.Delay(cs_ns)
                    yield from site.release(task)
                    task.stats["ops"] += 1
                    yield ops.Delay(120)

            tasks.append(kernel.spawn(worker, cpu=cpu % kernel.topology.nr_cpus))
            cpu += 1
    return tasks


def run_rollout_scenario(args) -> int:
    kernel = Kernel(
        Topology(sockets=args.sockets, cores_per_socket=args.cores), seed=args.seed
    )
    for index in range(args.locks):
        kernel.add_lock(
            f"svc.shard{index}.lock", ShflLock(kernel.engine, name=f"shard{index}")
        )
    concord = Concord(kernel)
    daemon = Concordd(
        concord,
        guard=SLOGuard(max_avg_wait_regression=args.max_regression),
        canary_fraction=0.5,
    )
    alice = PolicyClient.connect(daemon, "alice", allowed_selectors=("svc.*",))
    bob = PolicyClient.connect(daemon, "bob", allowed_selectors=("svc.*",))

    stop_at = kernel.now + args.duration_ns
    tasks = _spawn_shard_workload(kernel, stop_at, args.tasks_per_lock, args.cs_ns)

    window = args.duration_ns // 8
    alice.submit(bad_numa_submission("svc.*.lock"))
    bad = alice.rollout(
        "bad-numa",
        baseline_ns=window,
        canary_ns=2 * window,
        check_every_ns=window // 4,
    )
    bob.submit(
        PolicySubmission(
            spec=make_numa_policy(lock_selector="svc.*.lock", name="numa-good")
        )
    )
    good = bob.rollout(
        "numa-good",
        baseline_ns=window,
        canary_ns=2 * window,
        check_every_ns=window // 4,
    )
    kernel.run()  # drain the workload

    print(f"bad policy  : {bad.state.name:<12} {bad.verdict.describe()}")
    print(f"good policy : {good.state.name:<12} {good.verdict.describe()}")
    stalled = [t for t in tasks if t.stats.get("ops", 0) == 0]
    print(
        f"workload    : {len(tasks)} tasks, "
        f"{sum(t.stats.get('ops', 0) for t in tasks)} ops, "
        f"{len(stalled)} stalled"
    )
    if args.audit:
        print("\naudit log:")
        print(daemon.audit.format())

    ok = (
        bad.state is PolicyState.ROLLED_BACK
        and good.state is PolicyState.ACTIVE
        and not stalled
    )
    if not ok:
        print("scenario FAILED: expected bad-numa ROLLED_BACK + numa-good ACTIVE", file=sys.stderr)
    return 0 if ok else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.tools.concordd",
        description="Run scripted concordd control-plane scenarios.",
    )
    sub = parser.add_subparsers(dest="scenario", required=True)
    rollout = sub.add_parser(
        "rollout", help="bad policy canaries and rolls back; good policy goes ACTIVE"
    )
    rollout.add_argument("--sockets", type=int, default=2)
    rollout.add_argument("--cores", type=int, default=8, help="cores per socket")
    rollout.add_argument("--locks", type=int, default=4, help="shard locks to register")
    rollout.add_argument("--tasks-per-lock", type=int, default=4)
    rollout.add_argument("--cs-ns", type=int, default=300, help="critical-section length")
    rollout.add_argument(
        "--duration-ms",
        dest="duration_ms",
        type=float,
        default=4.0,
        help="simulated workload duration in milliseconds",
    )
    rollout.add_argument(
        "--max-regression",
        type=float,
        default=0.20,
        help="SLO guard avg-wait regression budget (default: the paper's 20%%)",
    )
    rollout.add_argument("--seed", type=int, default=7)
    rollout.add_argument("--audit", action="store_true", help="print the full audit log")
    rollout.set_defaults(runner=run_rollout_scenario)
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    if args.duration_ms <= 0:
        print("error: --duration-ms must be positive", file=sys.stderr)
        return 2
    args.duration_ns = int(args.duration_ms * 1e6)
    return args.runner(args)


if __name__ == "__main__":
    raise SystemExit(main())
